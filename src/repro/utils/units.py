"""Byte / FLOP / time unit constants, formatting and parsing.

The paper mixes decimal units for bandwidth (GB/s = 1e9 B/s) with the usual
loose usage for capacities.  We standardise on:

* decimal (SI) constants ``KB``/``MB``/``GB``/``TB`` — used for bandwidth and
  capacity numbers quoted from the paper (Fig. 2b, Sec. 4);
* binary constants ``KIB``/``MIB``/``GIB``/``TIB`` — used for allocator math
  where power-of-two alignment matters (Fig. 6b fragments memory into
  "2 GB contiguous chunks", which we treat as 2 GiB blocks).
"""

from __future__ import annotations

import math
import re

# --- decimal (SI) byte units -------------------------------------------------
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# --- binary byte units -------------------------------------------------------
KIB = 2**10
MIB = 2**20
GIB = 2**30
TIB = 2**40

# --- FLOP units ---------------------------------------------------------------
GFLOP = 10**9
TFLOP = 10**12
PFLOP = 10**15

_BYTE_SUFFIXES = [
    ("TiB", TIB),
    ("GiB", GIB),
    ("MiB", MIB),
    ("KiB", KIB),
    ("TB", TB),
    ("GB", GB),
    ("MB", MB),
    ("KB", KB),
    ("B", 1),
]


def format_bytes(n: float, *, binary: bool = False, precision: int = 2) -> str:
    """Render a byte count with the largest sensible unit.

    >>> format_bytes(1.83e12)
    '1.83 TB'
    >>> format_bytes(2 * GIB, binary=True)
    '2.00 GiB'
    """
    if n < 0:
        return "-" + format_bytes(-n, binary=binary, precision=precision)
    units = (
        [("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)]
        if binary
        else [("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)]
    )
    for suffix, scale in units:
        if n >= scale:
            return f"{n / scale:.{precision}f} {suffix}"
    return f"{n:.0f} B"


def parse_bytes(text: str) -> int:
    """Parse strings like ``"1.5 TB"``, ``"2GiB"``, ``"512 MB"`` to bytes.

    Raises ``ValueError`` on unknown suffixes so configuration typos fail
    loudly rather than silently allocating the wrong capacity.
    """
    m = re.fullmatch(r"\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]+)?\s*", text)
    if not m:
        raise ValueError(f"cannot parse byte quantity: {text!r}")
    value = float(m.group(1))
    suffix = m.group(2) or "B"
    for known, scale in _BYTE_SUFFIXES:
        if suffix.lower() == known.lower():
            return int(round(value * scale))
    raise ValueError(f"unknown byte suffix {suffix!r} in {text!r}")


def format_count(n: float, *, precision: int = 2) -> str:
    """Render a parameter count the way the paper does (B/T suffixes).

    >>> format_count(1.01e12)
    '1.01T'
    >>> format_count(175e9)
    '175.00B'
    """
    if n < 0:
        return "-" + format_count(-n, precision=precision)
    for suffix, scale in [("T", 1e12), ("B", 1e9), ("M", 1e6), ("K", 1e3)]:
        if n >= scale:
            return f"{n / scale:.{precision}f}{suffix}"
    return f"{n:.0f}"


def format_flops(n: float, *, precision: int = 1) -> str:
    """Render a FLOP/s rate.

    >>> format_flops(49e12)
    '49.0 TFlops'
    """
    for suffix, scale in [("PFlops", PFLOP), ("TFlops", TFLOP), ("GFlops", GFLOP)]:
        if n >= scale:
            return f"{n / scale:.{precision}f} {suffix}"
    return f"{n:.0f} Flops"


def format_time(seconds: float, *, precision: int = 2) -> str:
    """Render a duration with an adaptive unit.

    >>> format_time(0.0032)
    '3.20 ms'
    """
    if seconds != seconds or math.isinf(seconds):  # NaN / inf guard
        return str(seconds)
    if seconds < 0:
        return "-" + format_time(-seconds, precision=precision)
    if seconds >= 3600:
        return f"{seconds / 3600:.{precision}f} h"
    if seconds >= 60:
        return f"{seconds / 60:.{precision}f} min"
    if seconds >= 1:
        return f"{seconds:.{precision}f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.{precision}f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.{precision}f} us"
    return f"{seconds * 1e9:.{precision}f} ns"
