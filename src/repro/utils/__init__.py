"""Shared utilities: unit arithmetic, table rendering, deterministic RNG.

These helpers are deliberately dependency-free so every other subpackage can
import them without cycles.
"""

from repro.utils.units import (
    KB,
    MB,
    GB,
    TB,
    KIB,
    MIB,
    GIB,
    TIB,
    GFLOP,
    TFLOP,
    PFLOP,
    format_bytes,
    format_count,
    format_flops,
    format_time,
    parse_bytes,
)
from repro.utils.tables import Table, ascii_bar_chart, ascii_line_chart
from repro.utils.rng import seeded_rng, spawn_rngs

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "GFLOP",
    "TFLOP",
    "PFLOP",
    "format_bytes",
    "format_count",
    "format_flops",
    "format_time",
    "parse_bytes",
    "Table",
    "ascii_bar_chart",
    "ascii_line_chart",
    "seeded_rng",
    "spawn_rngs",
]
