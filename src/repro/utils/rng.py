"""Deterministic RNG plumbing.

Every stochastic component in the functional layer (weight init, dropout,
synthetic data) takes an explicit ``numpy.random.Generator``.  These helpers
create them reproducibly and derive independent child streams so that, e.g.,
each simulated data-parallel rank draws the same weights but different data.
"""

from __future__ import annotations

import numpy as np


def seeded_rng(seed: int = 0) -> np.random.Generator:
    """A fresh PCG64 generator for ``seed``.

    Central chokepoint so a future switch of bit generator is one-line.
    """
    return np.random.default_rng(np.random.PCG64(seed))


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` which guarantees non-overlapping streams —
    important when simulated ranks each need their own data shard RNG.
    """
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
