"""Plain-text table and chart rendering for benchmark reports.

The benchmark harness regenerates the paper's tables and figures as text:
tables render as aligned ASCII grids, figures as horizontal bar charts or
small multi-series line charts.  Keeping this in-library (rather than in each
bench script) makes the reports uniform and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """Accumulate rows, then render an aligned ASCII table.

    >>> t = Table(["model", "TFlops/GPU"], title="Fig. 5a")
    >>> t.add_row(["0.5T", 42.1])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str = ""
    float_fmt: str = "{:.2f}"
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append(row)

    def _fmt(self, v: object) -> str:
        if isinstance(v, float):
            return self.float_fmt.format(v)
        return str(v)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str = "",
    width: int = 50,
    value_fmt: str = "{:.2f}",
) -> str:
    """Render a horizontal bar chart, one bar per label.

    Bars are scaled to the maximum value; zero/negative values render as an
    empty bar so "ran out of memory" entries remain visible in comparisons.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vmax = max((v for v in values if v > 0), default=1.0)
    label_w = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        n = int(round(width * max(value, 0.0) / vmax))
        bar = "#" * n
        lines.append(f"{label.ljust(label_w)} | {bar} {value_fmt.format(value)}")
    return "\n".join(lines)


def ascii_line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    height: int = 16,
    width: int = 64,
    y_fmt: str = "{:.2f}",
) -> str:
    """Render multiple y-series against shared x values on a character grid.

    Each series gets a marker character; collisions render as ``*``.  Used by
    the Figure 3 / Figure 5 benches to show curve shape in the terminal.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "ox+@%&=~"
    all_y = [y for ys in series.values() for y in ys]
    ymin, ymax = min(all_y), max(all_y)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(x), max(x)
    if xmax == xmin:
        xmax = xmin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for xv, yv in zip(x, ys):
            col = int(round((xv - xmin) / (xmax - xmin) * (width - 1)))
            row = height - 1 - int(round((yv - ymin) / (ymax - ymin) * (height - 1)))
            grid[row][col] = "*" if grid[row][col] not in (" ", marker) else marker

    lines = [title] if title else []
    lines.append(f"y: {y_fmt.format(ymax)}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    lines.append(f"y: {y_fmt.format(ymin)}   x: {xmin:g} .. {xmax:g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)
