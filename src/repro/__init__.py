"""ZeRO-Infinity reproduction.

A from-scratch Python implementation of *ZeRO-Infinity: Breaking the GPU
Memory Wall for Extreme Scale Deep Learning* (Rajbhandari et al., SC 2021),
including the substrates the paper depends on: a hook-capable module
framework over numpy, simulated multi-rank collectives, an asynchronous
NVMe offload stack, mixed-precision Adam, the Megatron/pipeline/3D
baselines, the paper's analytic memory and bandwidth models, and a
discrete-event performance simulator of V100 DGX-2 clusters.

Quickstart::

    import numpy as np
    from repro import (
        GPTModel, TransformerConfig, ZeroConfig, ZeroInfinityEngine,
        OffloadConfig, OffloadDevice,
    )

    cfg = TransformerConfig(num_layers=2, hidden_dim=64, num_heads=4,
                            vocab_size=256, max_seq=32)
    zcfg = ZeroConfig(
        world_size=4,
        offload=OffloadConfig(param_device=OffloadDevice.NVME,
                              optimizer_device=OffloadDevice.NVME),
        loss_scale=1.0,
    )
    engine = ZeroInfinityEngine(zcfg, model_factory=lambda: GPTModel(cfg))
    # engine.train_step([(ids_r0, tgt_r0), ..., (ids_r3, tgt_r3)])
"""

from repro.nn import (
    GPTModel,
    TransformerConfig,
    TransformerBlock,
    Linear,
    Module,
    Parameter,
)
from repro.core import (
    OffloadConfig,
    OffloadDevice,
    Strategy,
    TiledLinear,
    ZeroConfig,
    ZeroInfinityEngine,
    ZeroStage,
    max_model_size,
)
from repro.hardware import dgx2_cluster, dgx2_node

__version__ = "1.0.0"

__all__ = [
    "GPTModel",
    "TransformerConfig",
    "TransformerBlock",
    "Linear",
    "Module",
    "Parameter",
    "OffloadConfig",
    "OffloadDevice",
    "Strategy",
    "TiledLinear",
    "ZeroConfig",
    "ZeroInfinityEngine",
    "ZeroStage",
    "max_model_size",
    "dgx2_cluster",
    "dgx2_node",
    "__version__",
]
