"""Baselines the paper compares against.

* :mod:`repro.baselines.ddp` — classic data parallelism (torch-DDP
  equivalent): functional N-replica trainer used as the equivalence oracle;
* :mod:`repro.baselines.megatron` — Megatron-LM tensor slicing: functional
  column/row-parallel linears + the per-block communication cost model;
* :mod:`repro.baselines.pipeline` — pipeline parallelism: schedule/bubble
  model (GPipe-style);
* :mod:`repro.baselines.threed` — 3D parallelism: the composition of all
  three, with memory-per-GPU and step-time models used by Figs. 1 and 5.
"""

from repro.baselines.ddp import DDPTrainer
from repro.baselines.mp_ddp import MultiprocessDDP
from repro.baselines.megatron import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    megatron_comm_bytes_per_block,
)
from repro.baselines.pipeline import PipelineSchedule, pipeline_bubble_fraction
from repro.baselines.threed import ThreeDConfig, ThreeDModel, best_threed_config

__all__ = [
    "DDPTrainer",
    "MultiprocessDDP",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLP",
    "megatron_comm_bytes_per_block",
    "PipelineSchedule",
    "pipeline_bubble_fraction",
    "PipelineSchedule",
    "ThreeDConfig",
    "ThreeDModel",
    "best_threed_config",
]
