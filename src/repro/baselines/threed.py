"""3D parallelism: model (tensor) x pipeline x data (Sec. 2, the SOTA baseline).

Combines the Megatron communication model, the pipeline bubble model and
data-parallel gradient allreduce into per-GPU memory and step-time models.
Used by the Fig. 1 / Fig. 5 / Fig. 6a benches as "the relevant
state-of-the-art" comparator.  3D parallelism keeps all model states in GPU
memory — its scale ceiling — but avoids parameter movement entirely, so at
sizes where it fits it is highly efficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.bandwidth_model import DEFAULT_PEAK_TP
from repro.analytics.memory_model import (
    activation_checkpoint_bytes,
    awm_bytes,
    mswm_bytes,
)
from repro.baselines.megatron import megatron_comm_bytes_per_block
from repro.baselines.pipeline import pipeline_bubble_fraction
from repro.hardware.topology import ClusterTopology


@dataclass(frozen=True)
class ThreeDConfig:
    """A (mp, pp, dp) factorisation of the cluster."""

    mp: int  # tensor-slicing degree (within a node)
    pp: int  # pipeline stages
    dp: int  # data-parallel degree

    def __post_init__(self) -> None:
        if self.mp <= 0 or self.pp <= 0 or self.dp <= 0:
            raise ValueError("mp, pp, dp must be positive")

    @property
    def num_gpus(self) -> int:
        return self.mp * self.pp * self.dp


@dataclass
class ThreeDStepTime:
    compute: float
    mp_comm: float
    dp_comm: float
    bubble: float
    total: float
    tflops_per_gpu: float
    fits: bool
    limiting_factor: str = ""


class ThreeDModel:
    """Memory and step-time model for 3D parallelism on a cluster."""

    def __init__(
        self,
        cluster: ClusterTopology,
        config: ThreeDConfig,
        *,
        peak_tp: float = DEFAULT_PEAK_TP,
    ) -> None:
        if config.num_gpus != cluster.num_gpus:
            raise ValueError(
                f"config covers {config.num_gpus} GPUs, cluster has"
                f" {cluster.num_gpus}"
            )
        if config.mp > cluster.node.gpus_per_node:
            raise ValueError("tensor slicing must stay within a node")
        self.cluster = cluster
        self.config = config
        self.peak_tp = peak_tp

    # --- memory --------------------------------------------------------------
    def gpu_bytes_per_param(self) -> float:
        """Model-state bytes per parameter per GPU: 20 / (mp*pp*dp)."""
        return 20.0 / self.config.num_gpus

    def fits(
        self,
        params: int,
        *,
        hidden_dim: int,
        num_layers: int,
        attn_heads: int,
        bsz_per_gpu: int,
        seq: int = 1024,
        ci: int = 1,
    ) -> tuple[bool, str]:
        c = self.config
        if num_layers < c.pp:
            return False, "fewer layers than pipeline stages"
        gpu_cap = self.cluster.node.gpu.memory.capacity_bytes
        state = 20 * params / c.num_gpus
        # tensor slicing divides both the largest operator and the block
        # activations across the mp group (Megatron's sliced activations)
        working = (
            mswm_bytes(hidden_dim)
            + awm_bytes(
                bsz=bsz_per_gpu,
                seq=seq,
                hidden_dim=hidden_dim,
                attn_heads=attn_heads,
                ci=ci,
            )
        ) / c.mp
        # each pipeline stage holds checkpoints for its nl/pp layers across
        # the ~pp microbatches in flight (1F1B steady state): the pp factors
        # cancel, leaving the full depth divided by the mp slicing
        ckpt = (
            activation_checkpoint_bytes(
                bsz=bsz_per_gpu,
                seq=seq,
                hidden_dim=hidden_dim,
                num_layers=num_layers,
                ci=ci,
            )
            / c.mp
        )
        needed = state + working + ckpt
        if needed > gpu_cap:
            return False, "gpu-memory"
        return True, ""

    # --- time ----------------------------------------------------------------
    def step_time(
        self,
        params: int,
        *,
        hidden_dim: int,
        num_layers: int,
        attn_heads: int,
        bsz_per_gpu: int,
        seq: int = 1024,
        microbatches: int | None = None,
        ci: int = 1,
    ) -> ThreeDStepTime:
        c = self.config
        ok, why = self.fits(
            params,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            attn_heads=attn_heads,
            bsz_per_gpu=bsz_per_gpu,
            seq=seq,
            ci=ci,
        )
        if not ok:
            return ThreeDStepTime(0, 0, 0, 0, float("inf"), 0.0, False, why)
        m = microbatches if microbatches is not None else max(4 * c.pp, 1)
        # per-GPU compute: fwd(2) + bwd(4) + recompute(2) FLOPs per token,
        # over this GPU's parameter slice, on the per-GPU token stream
        flops = 8.0 * bsz_per_gpu * seq * params / (c.mp * c.pp)
        compute = flops / self.peak_tp
        # tensor-slicing allreduces over NVLink (mp is intra-node)
        nv = self.cluster.node.intra_node_link.bandwidth
        per_block_fwd = megatron_comm_bytes_per_block(
            bsz=bsz_per_gpu, seq=seq, hidden_dim=hidden_dim
        )
        blocks_per_gpu = num_layers / c.pp
        ring = 2.0 * (c.mp - 1) / max(c.mp, 1)
        mp_comm = (
            3.0 * per_block_fwd * blocks_per_gpu * ring / nv if c.mp > 1 else 0.0
        )  # fwd + bwd + recompute
        # data-parallel gradient allreduce over the fabric
        link = (
            self.cluster.inter_node_link.bandwidth
            if self.cluster.num_nodes > 1
            else nv
        )
        grad_bytes = 2.0 * params / (c.mp * c.pp)
        dp_comm = 2.0 * (c.dp - 1) / c.dp * grad_bytes / link if c.dp > 1 else 0.0
        busy = compute + mp_comm + dp_comm
        bubble_frac = pipeline_bubble_fraction(c.pp, m) if c.pp > 1 else 0.0
        total = busy / (1.0 - bubble_frac)
        bubble = total - busy
        # useful FLOPs exclude recomputation (the paper reports model FLOPs)
        useful = 6.0 * bsz_per_gpu * seq * params / (c.mp * c.pp)
        return ThreeDStepTime(
            compute=compute,
            mp_comm=mp_comm,
            dp_comm=dp_comm,
            bubble=bubble,
            total=total,
            tflops_per_gpu=useful / total / 1e12,
            fits=True,
        )


def best_threed_config(
    cluster: ClusterTopology,
    params: int,
    *,
    hidden_dim: int,
    num_layers: int,
    attn_heads: int,
    bsz_per_gpu: int,
    seq: int = 1024,
) -> tuple[ThreeDConfig | None, ThreeDStepTime | None]:
    """Search (mp, pp, dp) factorisations; return the fastest fitting one."""
    n = cluster.num_gpus
    best: tuple[ThreeDConfig, ThreeDStepTime] | None = None
    mp_options = [
        m
        for m in (1, 2, 4, 8, 16)
        if m <= cluster.node.gpus_per_node and n % m == 0
    ]
    for mp in mp_options:
        rest = n // mp
        pp = 1
        while pp <= rest:
            if rest % pp == 0:
                dp = rest // pp
                cfg = ThreeDConfig(mp=mp, pp=pp, dp=dp)
                model = ThreeDModel(cluster, cfg)
                t = model.step_time(
                    params,
                    hidden_dim=hidden_dim,
                    num_layers=num_layers,
                    attn_heads=attn_heads,
                    bsz_per_gpu=bsz_per_gpu,
                    seq=seq,
                )
                if t.fits and (best is None or t.total < best[1].total):
                    best = (cfg, t)
            pp *= 2
    if best is None:
        return None, None
    return best
