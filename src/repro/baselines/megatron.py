"""Megatron-LM tensor slicing (the model-parallel baseline, Sec. 2).

Functional column- and row-parallel linears over simulated tensor-parallel
ranks, plus the per-block communication cost model used by the 3D-parallelism
baseline.  In Megatron's scheme a transformer block's MLP is

    Y = RowParallel(W2) @ gelu( ColumnParallel(W1) @ X )

where the column-parallel layer splits output features across ``mp`` ranks
(no communication in forward; allreduce of the input gradient in backward)
and the row-parallel layer splits input features (allreduce of the output in
forward; none in backward).  Each block therefore performs two activation
allreduces in forward and two in backward — the ``4 * bsz*seq*hd`` volume
:func:`megatron_comm_bytes_per_block` charges.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

# The Megatron baseline deliberately models raw per-slice collectives to
# contrast with the ProcessGroup-mediated ZeRO path.
from repro.comm import collectives as C  # lint: allow-raw-collectives
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.utils.rng import seeded_rng


class ColumnParallelLinear(Module):
    """Weight ``[out, in]`` split along *out* across ``mp`` ranks.

    Forward needs no communication (each rank computes its output slice);
    the slices are conceptually concatenated.  ``gather_output=True``
    concatenates explicitly (used when the next op is not row-parallel).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        mp: int,
        *,
        bias: bool = True,
        gather_output: bool = False,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        if out_features % mp:
            raise ValueError(f"out_features {out_features} not divisible by mp {mp}")
        self.mp = mp
        self.gather_output = gather_output
        self.out_features = out_features
        rng = rng if rng is not None else seeded_rng(0)
        self._shard_names = []
        for r in range(mp):
            name = f"shard{r}"
            setattr(
                self,
                name,
                Linear(in_features, out_features // mp, bias=bias, rng=rng, dtype=dtype),
            )
            self._shard_names.append(name)

    @classmethod
    def from_linear(cls, linear: Linear, mp: int, **kw) -> "ColumnParallelLinear":
        obj = cls(
            linear.in_features,
            linear.out_features,
            mp,
            bias=linear.has_bias,
            dtype=linear.weight.data.dtype,
            **kw,
        )
        size = linear.out_features // mp
        for r, name in enumerate(obj._shard_names):
            shard: Linear = obj._modules[name]
            shard.weight.data[...] = linear.weight.data[r * size : (r + 1) * size]
            if linear.has_bias:
                shard.bias.data[...] = linear.bias.data[r * size : (r + 1) * size]
        return obj

    def forward(self, x: np.ndarray) -> list[np.ndarray] | np.ndarray:
        outs = [self._modules[n](x) for n in self._shard_names]
        if self.gather_output:
            return np.concatenate(outs, axis=-1)
        return outs

    def _backward(self, grad_out) -> np.ndarray:
        if self.gather_output:
            grads = np.split(grad_out, self.mp, axis=-1)
        else:
            grads = grad_out
        # each rank computes an input gradient; the true grad is their sum
        # (the backward allreduce of Megatron's f operator)
        partials = [
            self._modules[n].backward(g) for n, g in zip(self._shard_names, grads)
        ]
        return C.allreduce(partials, op="sum")[0]


class RowParallelLinear(Module):
    """Weight ``[out, in]`` split along *in* across ``mp`` ranks.

    Each rank consumes its input slice; the partial outputs are allreduced
    (summed) in forward — Megatron's g operator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        mp: int,
        *,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        if in_features % mp:
            raise ValueError(f"in_features {in_features} not divisible by mp {mp}")
        self.mp = mp
        self.in_features = in_features
        rng = rng if rng is not None else seeded_rng(0)
        self._shard_names = []
        for r in range(mp):
            # bias added once, on the last shard
            name = f"shard{r}"
            setattr(
                self,
                name,
                Linear(
                    in_features // mp,
                    out_features,
                    bias=bias and r == mp - 1,
                    rng=rng,
                    dtype=dtype,
                ),
            )
            self._shard_names.append(name)

    @classmethod
    def from_linear(cls, linear: Linear, mp: int, **kw) -> "RowParallelLinear":
        obj = cls(
            linear.in_features,
            linear.out_features,
            mp,
            bias=linear.has_bias,
            dtype=linear.weight.data.dtype,
            **kw,
        )
        size = linear.in_features // mp
        for r, name in enumerate(obj._shard_names):
            shard: Linear = obj._modules[name]
            shard.weight.data[...] = linear.weight.data[:, r * size : (r + 1) * size]
            if shard.has_bias and linear.has_bias:
                shard.bias.data[...] = linear.bias.data
        return obj

    def forward(self, xs: list[np.ndarray] | np.ndarray) -> np.ndarray:
        if isinstance(xs, np.ndarray):
            xs = np.split(xs, self.mp, axis=-1)
        partials = [self._modules[n](x) for n, x in zip(self._shard_names, xs)]
        return C.allreduce(partials, op="sum")[0]  # forward allreduce

    def _backward(self, grad_out: np.ndarray) -> list[np.ndarray]:
        return [self._modules[n].backward(grad_out) for n in self._shard_names]


class TensorParallelMLP(Module):
    """Megatron's MLP: column-parallel (hd,4hd) -> GELU -> row-parallel."""

    def __init__(
        self,
        hidden_dim: int,
        mp: int,
        *,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else seeded_rng(0)
        self.mp = mp
        self.fc_in = ColumnParallelLinear(
            hidden_dim, 4 * hidden_dim, mp, rng=rng, dtype=dtype
        )
        self.fc_out = RowParallelLinear(
            4 * hidden_dim, hidden_dim, mp, rng=rng, dtype=dtype
        )
        self._gelu_caches: list = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        slices = self.fc_in(x)
        acts = []
        self._gelu_caches = []
        for s in slices:
            y, cache = F.gelu_fwd(s)
            acts.append(y)
            self._gelu_caches.append(cache)
        return self.fc_out(acts)

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_slices = self.fc_out.backward(grad_out)
        grad_acts = [
            F.gelu_bwd(g, c) for g, c in zip(grad_slices, self._gelu_caches)
        ]
        self._gelu_caches = []
        return self.fc_in.backward(grad_acts)


def megatron_comm_bytes_per_block(
    *, bsz: int, seq: int, hidden_dim: int, itemsize: int = 2
) -> int:
    """Activation allreduce volume per transformer block per direction.

    Two allreduces in forward (attention g + MLP g) and two in backward,
    each over a ``[bsz, seq, hd]`` activation: 4 allreduces/block/iteration
    direction pair; this returns the bytes for the 2 forward allreduces
    (double it for a full fwd+bwd).
    """
    return 2 * bsz * seq * hidden_dim * itemsize
