"""Pipeline parallelism (GPipe-style) schedule and bubble model.

Pipeline parallelism splits the layer stack into ``pp`` stages; a batch is
split into ``m`` microbatches streamed through the stages.  The classic
bubble (idle) fraction of the synchronous schedule is

    bubble = (pp - 1) / (m + pp - 1)

:class:`PipelineSchedule` also produces the explicit stage/time grid so the
simulator can charge realistic per-stage times, and checks the load-balance
constraint that makes 3D parallelism hard to apply to irregular models
(Sec. 2: "models with complex dependency graphs are difficult to be
expressed into load-balanced pipeline stages").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def pipeline_bubble_fraction(pp: int, microbatches: int) -> float:
    """Idle fraction of the synchronous (GPipe) pipeline schedule."""
    if pp <= 0 or microbatches <= 0:
        raise ValueError("pp and microbatches must be positive")
    return (pp - 1) / (microbatches + pp - 1)


@dataclass(frozen=True)
class PipelineSchedule:
    """A synchronous pipeline over ``pp`` stages and ``m`` microbatches."""

    pp: int
    microbatches: int
    stage_time: float  # seconds per microbatch per stage (fwd+bwd)

    def __post_init__(self) -> None:
        if self.pp <= 0 or self.microbatches <= 0:
            raise ValueError("pp and microbatches must be positive")
        if self.stage_time <= 0:
            raise ValueError("stage_time must be positive")

    @property
    def bubble_fraction(self) -> float:
        return pipeline_bubble_fraction(self.pp, self.microbatches)

    @property
    def total_time(self) -> float:
        """Makespan of the schedule: (m + pp - 1) stage slots."""
        return (self.microbatches + self.pp - 1) * self.stage_time

    @property
    def ideal_time(self) -> float:
        """Perfectly parallel time (no bubble)."""
        return self.microbatches * self.stage_time

    @property
    def efficiency(self) -> float:
        return self.ideal_time / self.total_time

    def stage_grid(self) -> list[list[int]]:
        """``grid[t][s]`` = microbatch on stage ``s`` at slot ``t`` (-1 idle)."""
        slots = self.microbatches + self.pp - 1
        grid = []
        for t in range(slots):
            row = []
            for s in range(self.pp):
                mb = t - s
                row.append(mb if 0 <= mb < self.microbatches else -1)
            grid.append(row)
        return grid


def balanced_stage_split(layer_costs: Sequence[float], pp: int) -> list[list[int]]:
    """Split layers into ``pp`` contiguous stages minimising the max stage cost.

    Exact DP partition (the classic linear-partition problem).  Returns the
    per-stage layer-index lists.  Raises when there are fewer layers than
    stages — the refactoring constraint 3D parallelism imposes.
    """
    n = len(layer_costs)
    if pp <= 0:
        raise ValueError("pp must be positive")
    if n < pp:
        raise ValueError(f"cannot split {n} layers into {pp} pipeline stages")
    prefix = [0.0]
    for c in layer_costs:
        if c < 0:
            raise ValueError("layer costs must be non-negative")
        prefix.append(prefix[-1] + c)

    # dp[k][i] = minimal max-stage-cost splitting first i layers into k stages
    INF = float("inf")
    dp = [[INF] * (n + 1) for _ in range(pp + 1)]
    cut = [[0] * (n + 1) for _ in range(pp + 1)]
    dp[0][0] = 0.0
    for k in range(1, pp + 1):
        for i in range(k, n + 1):
            for j in range(k - 1, i):
                cost = max(dp[k - 1][j], prefix[i] - prefix[j])
                if cost < dp[k][i]:
                    dp[k][i] = cost
                    cut[k][i] = j
    stages: list[list[int]] = []
    i = n
    for k in range(pp, 0, -1):
        j = cut[k][i]
        stages.append(list(range(j, i)))
        i = j
    stages.reverse()
    return stages
