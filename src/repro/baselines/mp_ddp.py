"""Real multi-process data parallelism (true OS-level ranks).

Everything else in this repository simulates data-parallel ranks inside one
process.  This module runs them as actual OS processes — each worker holds
its own model replica, computes forward/backward on its own microbatch, and
exchanges gradients with the coordinator over pipes — demonstrating that
the functional layer's numerics are process-separable (nothing relies on
shared Python state), the property a real MPI/NCCL deployment would need.

The topology is coordinator-mediated (gather gradients -> average ->
broadcast updated parameters), which moves the same bytes as an allreduce
with a different schedule; numerics match :class:`DDPTrainer` exactly and
the tests assert it.

Workers are daemonic fork children with explicit request/response framing
and timeouts, so a crashed worker fails the step loudly instead of hanging.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Optional, Sequence

import numpy as np


def _worker_main(factory_builder, seed_payload, conn) -> None:
    """Child process: build the replica, then serve step requests."""
    model = factory_builder()
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "step":
                _, batch = msg
                loss = model(*batch)
                model.backward(1.0)
                grads = {
                    name: p.grad for name, p in model.named_parameters()
                }
                conn.send(("grads", float(loss), grads))
            elif kind == "update":
                _, new_state = msg
                params = dict(model.named_parameters())
                for name, value in new_state.items():
                    params[name].data = value
                    params[name].grad = None
                conn.send(("ok",))
            elif kind == "state":
                conn.send(
                    (
                        "state",
                        {
                            name: p.data.copy()
                            for name, p in model.named_parameters()
                        },
                    )
                )
            elif kind == "stop":
                conn.send(("bye",))
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown request {kind!r}"))
    except EOFError:  # coordinator went away
        return


class MultiprocessDDP:
    """Data-parallel training across real OS processes.

    Parameters
    ----------
    model_factory:
        Top-level (picklable) callable returning identically initialised
        replicas.  Must be importable from the child (no lambdas).
    world_size:
        Number of worker processes.
    timeout:
        Seconds to wait for any single worker response before failing.
    """

    def __init__(
        self,
        model_factory: Callable,
        world_size: int,
        *,
        lr: float = 1e-3,
        timeout: float = 60.0,
        start_method: Optional[str] = None,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.world = world_size
        self.timeout = timeout
        self.lr = lr
        method = start_method or ("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        ctx = mp.get_context(method)
        self._conns = []
        self._procs = []
        for rank in range(world_size):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(model_factory, rank, child),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        # the coordinator holds the master copy + optimizer
        from repro.optim.adam import Adam

        self._master = model_factory()
        self._opt = Adam(self._master.parameters(), lr=lr)
        self._closed = False

    # --- protocol helpers ---------------------------------------------------
    def _recv(self, rank: int):
        conn = self._conns[rank]
        if not conn.poll(self.timeout):
            raise TimeoutError(
                f"worker {rank} did not respond within {self.timeout}s"
                f" (alive={self._procs[rank].is_alive()})"
            )
        return conn.recv()

    # --- training ----------------------------------------------------------
    def train_step(self, batches: Sequence[tuple[np.ndarray, ...]]) -> list[float]:
        if self._closed:
            raise RuntimeError("trainer is closed")
        if len(batches) != self.world:
            raise ValueError(f"got {len(batches)} batches for world {self.world}")
        for rank, batch in enumerate(batches):
            self._conns[rank].send(("step", batch))
        losses: list[float] = []
        grad_sums: dict[str, np.ndarray] = {}
        for rank in range(self.world):
            kind, loss, grads = self._recv(rank)
            assert kind == "grads"
            losses.append(loss)
            for name, g in grads.items():
                if g is None:
                    continue
                acc = grad_sums.get(name)
                grad_sums[name] = g.astype(np.float32) if acc is None else acc + g
        # average (DDP semantics) and step the master optimizer
        params = dict(self._master.named_parameters())
        for name, total in grad_sums.items():
            params[name].grad = (total / self.world).astype(
                params[name].data.dtype
            )
        self._opt.step()
        self._opt.zero_grad()
        # broadcast the updated weights
        new_state = {name: p.data for name, p in self._master.named_parameters()}
        for rank in range(self.world):
            self._conns[rank].send(("update", new_state))
        for rank in range(self.world):
            kind, = self._recv(rank)
            assert kind == "ok"
        return losses

    def state_dict(self, rank: int = 0) -> dict[str, np.ndarray]:
        """Fetch a worker's live weights (to verify synchronization)."""
        self._conns[rank].send(("state",))
        kind, state = self._recv(rank)
        assert kind == "state"
        return state

    def master_state(self) -> dict[str, np.ndarray]:
        return {n: p.data.copy() for n, p in self._master.named_parameters()}

    # --- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - crash path
                proc.terminate()
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "MultiprocessDDP":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
