"""Classic data-parallel training (the torch-DDP baseline, Sec. 8.1).

``DDPTrainer`` keeps a full model replica per simulated rank, feeds each its
own microbatch, allreduces (averages) gradients and applies an identical
fp32-master Adam step on every replica — the memory-redundant layout ZeRO
removes.  It is both a Fig. 6a scale baseline and the numerical oracle the
ZeRO engine equivalence tests train against.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.comm.group import ProcessGroup
from repro.nn.module import Module
from repro.optim.adam import Adam


class DDPTrainer:
    """N identically initialised replicas with averaged gradients."""

    def __init__(
        self,
        model_factory: Callable[[], Module],
        world_size: int,
        *,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.world_size = world_size
        self.comm = ProcessGroup(world_size)
        # Each factory call must produce identical weights (same seed), as
        # torch-DDP guarantees by broadcasting rank 0's weights.
        self.replicas = [model_factory() for _ in range(world_size)]
        ref = [p.data for p in self.replicas[0].parameters()]
        for replica in self.replicas[1:]:
            for p, r in zip(replica.parameters(), ref):
                if p.data.shape != r.shape:
                    raise ValueError(
                        "model_factory produced replicas with different shapes"
                    )
                p.data = r.copy()  # enforce identical init
        self.optimizers = [
            Adam(
                m.parameters(),
                lr=lr,
                beta1=beta1,
                beta2=beta2,
                eps=eps,
                weight_decay=weight_decay,
            )
            for m in self.replicas
        ]

    def train_step(
        self, batches: Sequence[tuple[np.ndarray, ...]]
    ) -> list[float]:
        """One step: per-rank fwd/bwd, gradient allreduce (mean), Adam.

        Each batch is an argument tuple for the model's forward — two
        entries for LM (ids, targets), three for MLM (ids, targets, mask).
        """
        if len(batches) != self.world_size:
            raise ValueError(
                f"got {len(batches)} batches for world {self.world_size}"
            )
        losses = []
        for model, batch in zip(self.replicas, batches):
            loss = model(*batch)
            model.backward(1.0)
            losses.append(float(loss))
        # allreduce gradients parameter-by-parameter across replicas
        param_lists = [m.parameters() for m in self.replicas]
        for group in zip(*param_lists):
            grads = [p.grad for p in group]
            if any(g is None for g in grads):
                if all(g is None for g in grads):
                    continue
                raise RuntimeError("inconsistent gradient availability across ranks")
            reduced = self.comm.allreduce(grads, op="mean")
            for p, g in zip(group, reduced):
                p.grad = g
        for opt in self.optimizers:
            opt.step()
            opt.zero_grad()
        return losses

    def state_dict(self, rank: int = 0) -> dict[str, np.ndarray]:
        return {
            name: p.data.copy()
            for name, p in self.replicas[rank].named_parameters()
        }

    def replicas_in_sync(self, *, atol: float = 0.0) -> bool:
        """All replicas hold identical weights (DDP invariant)."""
        ref = self.state_dict(0)
        for rank in range(1, self.world_size):
            for name, value in self.state_dict(rank).items():
                if not np.allclose(ref[name], value, atol=atol, rtol=0):
                    return False
        return True
