"""Pluggable collective backends behind :class:`~repro.comm.group.ProcessGroup`.

The process group is a *facade*: it fingerprints, accounts, and then asks a
:class:`CommBackend` to actually move the bytes.  Two implementations ship:

* :class:`LoopBackend` — the original single-process execution model.  All
  ranks live in one interpreter, collectives are the pure functions of
  :mod:`repro.comm.collectives` over per-rank buffer lists, and the engine
  runs rank turns sequentially.  This backend is the **bit-exact oracle**
  every other backend is tested against.
* :class:`~repro.comm.mp_backend.MultiprocBackend` — one OS process per
  rank, payloads exchanged through ``multiprocessing.shared_memory`` with a
  double-buffered ring and fingerprint-carrying barriers (see
  ``docs/parallelism.md``).  Launched via
  :func:`repro.comm.launcher.run_multiproc`.

Backend-level failures map onto the engine's recovery tiers deliberately:

* :class:`CommPeerAbort` subclasses :class:`OSError`, so a peer aborting a
  step for replay lands in the engine's step-replay handler like any other
  recoverable device fault;
* :class:`CommTimeout` / :class:`CommDivergence` subclass
  :class:`RuntimeError` — a missing peer or a diverged collective sequence
  is not replayable, so they propagate as terminal.
"""

from __future__ import annotations

import abc
import zlib
from typing import Sequence

import numpy as np

from repro.comm import collectives as C

#: Backend names a driver may select (``--backend`` on the CLI).
BACKEND_NAMES: tuple[str, ...] = ("loop", "mp")


class CommError(RuntimeError):
    """Terminal communication failure (not replayable)."""


class CommDivergence(CommError):
    """Cross-process fingerprint mismatch: ranks issued different collectives."""


class CommTimeout(CommError):
    """A rendezvous barrier broke with no abort flag: peer missing/deadlocked."""


class CommPeerAbort(OSError):
    """A peer aborted the current step for replay (recoverable, retried)."""


class CommBackend(abc.ABC):
    """Executes collectives for a :class:`~repro.comm.group.ProcessGroup`.

    The *list collectives* (``broadcast`` … ``alltoall``) keep the
    functional contract of :mod:`repro.comm.collectives`: one buffer per
    rank in, one result per rank out.  Backends whose ranks are separate
    processes additionally implement the cross-process primitives
    (:meth:`exchange`, :meth:`step_sync`, abort/recover) and report which
    simulated rank is local via :meth:`is_local` / :attr:`all_local`.

    Every backend maintains a running CRC32 *fingerprint digest* over the
    collective sequence (fed by the process group's checker fingerprints);
    process-parallel backends carry the digest in their rendezvous headers
    and raise :class:`CommDivergence` when ranks disagree.
    """

    name: str = "abstract"

    def __init__(self, world_size: int) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.world_size = world_size
        self._digest = 0

    # --- locality ---------------------------------------------------------------
    @property
    def rank(self) -> int:
        """The simulated rank this backend instance computes for."""
        return 0

    @property
    def all_local(self) -> bool:
        """True when every simulated rank runs in this process."""
        return True

    def is_local(self, rank: int) -> bool:
        """Does this process run ``rank``'s forward/backward?"""
        return True

    # --- fingerprint digest ------------------------------------------------------
    def note_fingerprint(
        self, op: str, dtypes: Sequence[str], numels: Sequence[int]
    ) -> None:
        """Fold one collective's (op, dtypes, numels) into the running CRC."""
        blob = ";".join([op, *dtypes, *map(str, numels)]).encode()
        self._digest = zlib.crc32(blob, self._digest)

    @property
    def fingerprint_digest(self) -> int:
        return self._digest

    # --- cross-process primitives (no-ops for in-process backends) ---------------
    def exchange(self, payload: np.ndarray) -> list[np.ndarray]:
        """All-gather one rank-local payload across rank *processes*.

        Returns one array per rank, each reshaped like ``payload``.  Only
        meaningful when ``not all_local``; the loop backend never needs it
        because every rank's data is already in-process.
        """
        raise NotImplementedError(f"{self.name} backend has no exchange")

    def step_sync(self) -> None:
        """Per-step rendezvous barrier carrying the fingerprint digest."""

    def signal_abort(self, terminal: bool = False) -> None:
        """Tell peers this rank is abandoning the in-flight step."""

    def recover_after_abort(self) -> None:
        """Rendezvous with peers after an aborted step, before the replay."""

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    # --- list collectives ---------------------------------------------------------
    @abc.abstractmethod
    def broadcast(
        self, buffers: Sequence[np.ndarray | None], root: int = 0
    ) -> list[np.ndarray]: ...

    @abc.abstractmethod
    def allgather(self, shards: Sequence[np.ndarray]) -> list[np.ndarray]: ...

    @abc.abstractmethod
    def allgather_into(
        self, shards: Sequence[np.ndarray], out: np.ndarray
    ) -> list[np.ndarray]: ...

    @abc.abstractmethod
    def reduce_scatter(
        self, buffers: Sequence[np.ndarray], *, op: str = "sum"
    ) -> list[np.ndarray]: ...

    @abc.abstractmethod
    def reduce_scatter_into(
        self, buffers: Sequence[np.ndarray], out: np.ndarray, *, op: str = "sum"
    ) -> list[np.ndarray]: ...

    @abc.abstractmethod
    def allreduce(
        self, buffers: Sequence[np.ndarray], *, op: str = "sum"
    ) -> list[np.ndarray]: ...

    @abc.abstractmethod
    def gather(
        self, shards: Sequence[np.ndarray], root: int = 0
    ) -> list[np.ndarray | None]: ...

    @abc.abstractmethod
    def scatter(
        self, full: np.ndarray, world: int, root: int = 0
    ) -> list[np.ndarray]: ...

    @abc.abstractmethod
    def alltoall(
        self, matrix: Sequence[Sequence[np.ndarray]]
    ) -> list[list[np.ndarray]]: ...


class LoopBackend(CommBackend):
    """The original in-process execution model: verbatim functional collectives.

    Delegates every list collective to :mod:`repro.comm.collectives`
    unchanged — this backend *is* the pre-refactor behaviour and serves as
    the bit-exact oracle for the equivalence tests.
    """

    name = "loop"

    def broadcast(
        self, buffers: Sequence[np.ndarray | None], root: int = 0
    ) -> list[np.ndarray]:
        return C.broadcast(buffers, root)

    def allgather(self, shards: Sequence[np.ndarray]) -> list[np.ndarray]:
        return C.allgather(shards)

    def allgather_into(
        self, shards: Sequence[np.ndarray], out: np.ndarray
    ) -> list[np.ndarray]:
        return C.allgather_into(shards, out)

    def reduce_scatter(
        self, buffers: Sequence[np.ndarray], *, op: str = "sum"
    ) -> list[np.ndarray]:
        return C.reduce_scatter(buffers, op=op)

    def reduce_scatter_into(
        self, buffers: Sequence[np.ndarray], out: np.ndarray, *, op: str = "sum"
    ) -> list[np.ndarray]:
        return C.reduce_scatter_into(buffers, out, op=op)

    def allreduce(
        self, buffers: Sequence[np.ndarray], *, op: str = "sum"
    ) -> list[np.ndarray]:
        return C.allreduce(buffers, op=op)

    def gather(
        self, shards: Sequence[np.ndarray], root: int = 0
    ) -> list[np.ndarray | None]:
        return C.gather(shards, root)

    def scatter(
        self, full: np.ndarray, world: int, root: int = 0
    ) -> list[np.ndarray]:
        return C.scatter(full, world, root)

    def alltoall(
        self, matrix: Sequence[Sequence[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        return C.alltoall(matrix)


def make_backend(name: str, world_size: int) -> CommBackend:
    """Construct an in-process-capable backend by name.

    ``"mp"`` ranks live in separate processes, so a
    :class:`~repro.comm.mp_backend.MultiprocBackend` can only be built by
    :func:`repro.comm.launcher.run_multiproc` (which owns the shared
    segment and the rank processes) — asking for it here is an error that
    points the caller at the launcher.
    """
    if name == "loop":
        return LoopBackend(world_size)
    if name == "mp":
        raise ValueError(
            "the 'mp' backend runs one process per rank; launch it with"
            " repro.comm.launcher.run_multiproc(world_size, worker_fn)"
        )
    raise ValueError(f"unknown backend {name!r}; choose from {BACKEND_NAMES}")
