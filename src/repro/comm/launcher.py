"""Launch-and-rendezvous for the multiprocessing backend.

:func:`run_multiproc` is the single entry point: it creates the shared
segment and rendezvous barrier (:class:`MpSession`), forks one process
per rank, runs ``fn(backend)`` in each with a rank-local
:class:`~repro.comm.mp_backend.MultiprocBackend`, and collects one result
per rank — plus per-rank tracer shards when ``trace=True``, ready for
:func:`repro.obs.export.write_merged_chrome_trace`.

``fork`` is used deliberately (Linux-only repo): children inherit the
shared-memory mapping, the barrier, and the worker closure directly, so
nothing needs pickling on the way in (results ride back over a pipe and
must be picklable).  The parent should be thread-quiet at launch time —
close any engine (and its aio worker threads) before calling.

Cleanup guarantees (the chaos-run contract):

* the segment is unlinked by a ``with``/``finally`` in
  :func:`run_multiproc` on every path, including worker crashes;
* :class:`MpSession` registers an ``atexit`` backstop in the parent (it
  no-ops in forked children, which share the hook but not ownership);
* a rank killed mid-step (SIGKILL, OOM) is detected by the parent's
  monitor loop, the remaining ranks are terminated, and the segment is
  unlinked before :class:`MpWorkerFailed` propagates — so crashed runs
  never leak ``/dev/shm`` segments (pinned by a regression test).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.comm.mp_backend import MultiprocBackend
from repro.comm.shm import SharedRing


class MpWorkerFailed(RuntimeError):
    """A rank process died or reported an error; the run was torn down."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"rank {rank}: {detail}")
        self.rank = rank
        self.detail = detail


class MpSession:
    """Owns the shared segment + barrier for one multiprocess launch."""

    def __init__(
        self,
        world_size: int,
        *,
        slot_capacity: int = 1 << 20,
        timeout: float = 120.0,
    ) -> None:
        self.world_size = world_size
        self.timeout = timeout
        self.ctx = multiprocessing.get_context("fork")
        self.ring = SharedRing(world_size, slot_capacity=slot_capacity)
        self.barrier = self.ctx.Barrier(world_size)
        self._owner_pid = os.getpid()
        self._closed = False
        atexit.register(self.cleanup)

    def cleanup(self) -> None:
        """Unlink the segment (idempotent; owner process only).

        Forked children inherit the parent's atexit hook; the pid guard
        keeps a child's exit from unlinking the segment under its
        siblings.
        """
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        atexit.unregister(self.cleanup)
        self.ring.destroy()

    def __enter__(self) -> "MpSession":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


@dataclass
class TraceShard:
    """One rank's tracer output, mergeable into a single Chrome trace."""

    rank: int
    records: list
    lanes: dict[int, str]
    dropped: int


@dataclass
class MpRunResult:
    """Per-rank worker return values (and trace shards when requested)."""

    results: list[Any]
    shards: Optional[list[TraceShard]] = None


def _worker(session: MpSession, rank: int, fn, conn, trace: bool) -> None:
    backend = MultiprocBackend(session, rank)
    try:
        if trace:
            from repro.obs import use_tracer

            with use_tracer() as tracer:
                value = fn(backend)
            shard = TraceShard(
                rank, tracer.records(), tracer.lane_names(), tracer.dropped
            )
        else:
            value = fn(backend)
            shard = None
        conn.send(("ok", value, shard))
    except BaseException as err:  # noqa: BLE001 - forwarded to the parent
        # break peers out of any rendezvous before reporting: a sibling
        # stuck in a barrier would otherwise wait out the full timeout
        backend.signal_abort(terminal=True)
        try:
            conn.send(
                ("err", f"{type(err).__name__}: {err}", traceback.format_exc())
            )
        except (OSError, ValueError):
            pass  # parent already gone or result unpicklable; exit code tells
    finally:
        conn.close()


def run_multiproc(
    world_size: int,
    fn: Callable[[MultiprocBackend], Any],
    *,
    trace: bool = False,
    timeout: float = 120.0,
    slot_capacity: int = 1 << 20,
) -> MpRunResult:
    """Run ``fn(backend)`` in one forked process per rank; gather results.

    ``fn`` receives the rank-local backend and its return value (which
    must be picklable) is collected per rank.  Any rank error or death
    tears the launch down (terminate + unlink) and raises
    :class:`MpWorkerFailed`.
    """
    with MpSession(
        world_size, slot_capacity=slot_capacity, timeout=timeout
    ) as session:
        procs = []
        conns = []
        for rank in range(world_size):
            parent_conn, child_conn = session.ctx.Pipe(duplex=False)
            proc = session.ctx.Process(
                target=_worker,
                args=(session, rank, fn, child_conn, trace),
                daemon=True,
                name=f"repro-mp-rank{rank}",
            )
            procs.append(proc)
            conns.append(parent_conn)
        try:
            for proc in procs:
                proc.start()
            replies: list[Any] = [None] * world_size
            pending = set(range(world_size))
            while pending:
                for rank in sorted(pending):
                    if conns[rank].poll(0.05):
                        replies[rank] = conns[rank].recv()
                        pending.discard(rank)
                for rank in sorted(pending):
                    if not procs[rank].is_alive():
                        # exited without reporting — drain any message that
                        # raced the exit before declaring the rank dead
                        if conns[rank].poll(0.5):
                            replies[rank] = conns[rank].recv()
                            pending.discard(rank)
                            continue
                        raise MpWorkerFailed(
                            rank,
                            f"process died without reporting"
                            f" (exitcode {procs[rank].exitcode})",
                        )
            for rank, reply in enumerate(replies):
                if reply[0] == "err":
                    raise MpWorkerFailed(
                        rank, f"{reply[1]}\n--- worker traceback ---\n{reply[2]}"
                    )
            for proc in procs:
                proc.join(timeout=10.0)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for conn in conns:
                conn.close()
    results = [reply[1] for reply in replies]
    shards = [reply[2] for reply in replies] if trace else None
    return MpRunResult(results=results, shards=shards)
