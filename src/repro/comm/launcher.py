"""Launch-and-rendezvous for the multiprocessing backend.

:func:`run_multiproc` is the single entry point: it creates the shared
segment and rendezvous barrier (:class:`MpSession`), forks one process
per rank, runs ``fn(backend)`` in each with a rank-local
:class:`~repro.comm.mp_backend.MultiprocBackend`, and collects one result
per rank — plus per-rank tracer shards when ``trace=True``, ready for
:func:`repro.obs.export.write_merged_chrome_trace`.

``fork`` is used deliberately (Linux-only repo): children inherit the
shared-memory mapping, the barrier, and the worker closure directly, so
nothing needs pickling on the way in (results ride back over a pipe and
must be picklable).  The parent should be thread-quiet at launch time —
close any engine (and its aio worker threads) before calling.

With ``live=`` set, the session also creates a
:class:`~repro.comm.shm.TelemetryRing` beside the data ring: every
worker installs a per-rank :class:`~repro.obs.live.LivePlane` (heartbeats
and samples go through the ring) plus a crash flight recorder, and the
parent's monitor loop doubles as the aggregator — polling the ring into
a :class:`~repro.obs.live.ClusterView`, running the health watchdog, and
invoking the optional ``on_view`` callback (the ``--live`` dashboard).
A worker that dies on an unhandled exception dumps its flight-recorder
shard into ``live.postmortem_dir`` before reporting, and the parent
completes the bundle with a manifest when the run is torn down.

Cleanup guarantees (the chaos-run contract):

* the segment is unlinked by a ``with``/``finally`` in
  :func:`run_multiproc` on every path, including worker crashes;
* :class:`MpSession` registers an ``atexit`` backstop in the parent (it
  no-ops in forked children, which share the hook but not ownership);
* a rank killed mid-step (SIGKILL, OOM) is detected by the parent's
  monitor loop, the remaining ranks are terminated, and the segment is
  unlinked before :class:`MpWorkerFailed` propagates — so crashed runs
  never leak ``/dev/shm`` segments (pinned by a regression test).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.comm.mp_backend import MultiprocBackend
from repro.comm.shm import SharedRing, TelemetryRing


class MpWorkerFailed(RuntimeError):
    """A rank process died or reported an error; the run was torn down."""

    def __init__(self, rank: int, detail: str) -> None:
        super().__init__(f"rank {rank}: {detail}")
        self.rank = rank
        self.detail = detail


class MpSession:
    """Owns the shared segment + barrier for one multiprocess launch."""

    def __init__(
        self,
        world_size: int,
        *,
        slot_capacity: int = 1 << 20,
        timeout: float = 120.0,
        telemetry_capacity: int = 0,
    ) -> None:
        self.world_size = world_size
        self.timeout = timeout
        self.ctx = multiprocessing.get_context("fork")
        self.ring = SharedRing(world_size, slot_capacity=slot_capacity)
        self.telemetry: Optional[TelemetryRing] = (
            TelemetryRing(world_size, slot_capacity=telemetry_capacity)
            if telemetry_capacity
            else None
        )
        self.barrier = self.ctx.Barrier(world_size)
        self._owner_pid = os.getpid()
        self._closed = False
        atexit.register(self.cleanup)

    def cleanup(self) -> None:
        """Unlink the segments (idempotent; owner process only).

        Forked children inherit the parent's atexit hook; the pid guard
        keeps a child's exit from unlinking the segment under its
        siblings.
        """
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        atexit.unregister(self.cleanup)
        self.ring.destroy()
        if self.telemetry is not None:
            self.telemetry.destroy()

    def __enter__(self) -> "MpSession":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


@dataclass
class TraceShard:
    """One rank's tracer output, mergeable into a single Chrome trace.

    ``epoch_ns`` is the rank tracer's monotonic-clock origin, exchanged
    at the result-collection rendezvous so the merged exporter can align
    per-process timelines.
    """

    rank: int
    records: list
    lanes: dict[int, str]
    dropped: int
    epoch_ns: int = 0


@dataclass
class MpRunResult:
    """Per-rank worker return values (and trace shards when requested)."""

    results: list[Any]
    shards: Optional[list[TraceShard]] = None


def _worker(
    session: MpSession, rank: int, fn, conn, trace: bool, live_cfg
) -> None:
    backend = MultiprocBackend(session, rank)
    plane = None
    tracer = None
    if live_cfg is not None and session.telemetry is not None:
        from repro.obs.flightrec import FlightRecorder, install_flightrec
        from repro.obs.live import LivePlane, ShmTransport, install_live

        recorder = FlightRecorder(capacity=live_cfg.flight_capacity)
        plane = LivePlane(
            world=session.world_size,
            rank=rank,
            config=live_cfg,
            transport=ShmTransport(session.telemetry),
            recorder=recorder,
        )
        install_live(plane)
        install_flightrec(recorder)
    try:
        if trace:
            from repro.obs import use_tracer

            with use_tracer() as tracer:
                if plane is not None:
                    plane.tracer = tracer
                value = fn(backend)
            shard = TraceShard(
                rank,
                tracer.records(),
                tracer.lane_names(),
                tracer.dropped,
                tracer.epoch_ns,
            )
        else:
            value = fn(backend)
            shard = None
        if plane is not None:
            plane.close()
        conn.send(("ok", value, shard))
    except BaseException as err:  # noqa: BLE001 - forwarded to the parent
        # break peers out of any rendezvous before reporting: a sibling
        # stuck in a barrier would otherwise wait out the full timeout
        backend.signal_abort(terminal=True)
        if plane is not None:
            try:
                plane.on_terminal(f"{type(err).__name__}: {err}")
                plane.close()
            except Exception:
                pass  # the postmortem must never mask the real failure
        try:
            conn.send(
                ("err", f"{type(err).__name__}: {err}", traceback.format_exc())
            )
        except (OSError, ValueError):
            pass  # parent already gone or result unpicklable; exit code tells
    finally:
        conn.close()


def run_multiproc(
    world_size: int,
    fn: Callable[[MultiprocBackend], Any],
    *,
    trace: bool = False,
    timeout: float = 120.0,
    slot_capacity: int = 1 << 20,
    live=None,
    on_view: Optional[Callable[[Any], None]] = None,
    view_interval: float = 0.5,
) -> MpRunResult:
    """Run ``fn(backend)`` in one forked process per rank; gather results.

    ``fn`` receives the rank-local backend and its return value (which
    must be picklable) is collected per rank.  Any rank error or death
    tears the launch down (terminate + unlink) and raises
    :class:`MpWorkerFailed`.

    ``live`` enables the telemetry plane: pass ``True`` for defaults or a
    :class:`~repro.obs.live.LiveConfig`.  ``on_view`` is then called with
    a fresh :class:`~repro.obs.live.ClusterView` roughly every
    ``view_interval`` seconds from the parent's monitor loop.
    """
    live_cfg = None
    if live:
        from repro.obs.live import LiveConfig

        live_cfg = live if isinstance(live, LiveConfig) else LiveConfig()
    with MpSession(
        world_size,
        slot_capacity=slot_capacity,
        timeout=timeout,
        telemetry_capacity=live_cfg.slot_capacity if live_cfg else 0,
    ) as session:
        aggregator = None
        if live_cfg is not None:
            from repro.obs.live import LivePlane, ShmTransport

            aggregator = LivePlane(
                world=world_size,
                config=live_cfg,
                transport=ShmTransport(session.telemetry),
            )
        procs = []
        conns = []
        for rank in range(world_size):
            parent_conn, child_conn = session.ctx.Pipe(duplex=False)
            proc = session.ctx.Process(
                target=_worker,
                args=(session, rank, fn, child_conn, trace, live_cfg),
                daemon=True,
                name=f"repro-mp-rank{rank}",
            )
            procs.append(proc)
            conns.append(parent_conn)
        last_view = 0.0
        final_view = None
        try:
            for proc in procs:
                proc.start()
            replies: list[Any] = [None] * world_size
            pending = set(range(world_size))
            while pending:
                if aggregator is not None:
                    now = time.monotonic()
                    if now - last_view >= view_interval:
                        last_view = now
                        final_view = aggregator.view(now)
                        if on_view is not None:
                            on_view(final_view)
                for rank in sorted(pending):
                    if conns[rank].poll(0.05):
                        replies[rank] = conns[rank].recv()
                        pending.discard(rank)
                for rank in sorted(pending):
                    if not procs[rank].is_alive():
                        # exited without reporting — drain any message that
                        # raced the exit before declaring the rank dead
                        if conns[rank].poll(0.5):
                            replies[rank] = conns[rank].recv()
                            pending.discard(rank)
                            continue
                        _finish_postmortem(
                            live_cfg,
                            world_size,
                            f"rank {rank} died without reporting",
                        )
                        raise MpWorkerFailed(
                            rank,
                            f"process died without reporting"
                            f" (exitcode {procs[rank].exitcode})",
                        )
            if aggregator is not None:
                # one guaranteed final poll: short runs can finish inside
                # the first view_interval, and the last published samples
                # (step_end state of every rank) are still in the ring
                final_view = aggregator.view(time.monotonic())
                if on_view is not None:
                    on_view(final_view)
            for rank, reply in enumerate(replies):
                if reply[0] == "err":
                    _finish_postmortem(live_cfg, world_size, reply[1])
                    raise MpWorkerFailed(
                        rank, f"{reply[1]}\n--- worker traceback ---\n{reply[2]}"
                    )
            for proc in procs:
                proc.join(timeout=10.0)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            for conn in conns:
                conn.close()
    results = [reply[1] for reply in replies]
    shards = [reply[2] for reply in replies] if trace else None
    return MpRunResult(results=results, shards=shards)


def _finish_postmortem(live_cfg, world_size: int, reason: str) -> None:
    """Parent-side bundle completion: write the manifest over worker shards."""
    if live_cfg is None or not live_cfg.postmortem_dir:
        return
    from repro.obs.flightrec import write_postmortem_manifest

    try:
        write_postmortem_manifest(
            live_cfg.postmortem_dir, reason, world=world_size
        )
    except OSError:
        pass  # never mask the original failure with bundle I/O errors
