"""Shared-memory transport for the multiprocessing backend.

One :class:`SharedRing` per launch: a single
``multiprocessing.shared_memory`` segment holding a small control block
plus a **double-buffered ring** of per-rank slots.  Layout (all header
words are little-endian int64):

::

    +-----------------------------------------------------------+
    | control block                                             |
    |   [0] magic          0x5A45524F ("ZERO")                  |
    |   [1] epoch          bumped by rank 0 on recovery         |
    |   [2 .. 2+w)         abort flags   (0 none / 1 replay /   |
    |                                     2 terminal)           |
    |   [2+w .. 2+2w)      recovery acks (target epoch per rank)|
    +-----------------------------------------------------------+
    | buffer 0: slot[rank 0] | slot[rank 1] | ... | slot[w-1]   |
    | buffer 1: slot[rank 0] | slot[rank 1] | ... | slot[w-1]   |
    +-----------------------------------------------------------+

    slot := [seq, crc, nbytes, pad] int64 header + capacity payload bytes

Chunk ``k`` of an exchange is published to buffer ``k % 2``; one barrier
wait separates publish from read.  Two buffers are exactly sufficient:
chunk ``k+2`` reuses chunk ``k``'s buffer, but it is only written after
barrier ``k+1`` — by which point every peer has finished reading chunk
``k`` (reads happen strictly between barrier ``k`` and barrier ``k+1``).

All numpy views over the segment are created *transiently* per accessor
call so :meth:`destroy` can close the mapping without dangling buffer
exports.  Visibility relies on the barrier's semaphore (a full memory
barrier) between publish and read; the recovery path polls with short
sleeps, which is fine for a rare, failure-only code path.

The parent process creates the segment (children inherit the mapping via
``fork``) and owns its lifetime: :meth:`destroy` is idempotent and hooked
into ``atexit`` plus every launcher error path, so crashed or killed runs
never leak ``/dev/shm/repro_mp_*`` segments.
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory

import numpy as np

#: ``/dev/shm`` name prefix — the leak regression test globs for this.
SEGMENT_PREFIX = "repro_mp_"

MAGIC = 0x5A45524F  # "ZERO"

ABORT_NONE = 0
ABORT_REPLAY = 1
ABORT_TERMINAL = 2

_HEADER_WORDS = 4  # seq, crc, nbytes, pad
_WORD = 8


class SharedRing:
    """The control block + double-buffered per-rank slots of one segment."""

    def __init__(self, world_size: int, *, slot_capacity: int = 1 << 20) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if slot_capacity <= 0:
            raise ValueError("slot_capacity must be positive")
        self.world_size = world_size
        self.slot_capacity = int(slot_capacity)
        self._ctrl_words = 2 + 2 * world_size
        self._slot_stride = _HEADER_WORDS * _WORD + self.slot_capacity
        total = self._ctrl_words * _WORD + 2 * world_size * self._slot_stride
        self.name = SEGMENT_PREFIX + secrets.token_hex(8)
        self.shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=total
        )
        self.shm.buf[:total] = b"\x00" * total
        ctrl = self._ctrl()
        ctrl[0] = MAGIC
        self._destroyed = False

    # --- transient views ---------------------------------------------------------
    def _ctrl(self) -> np.ndarray:
        return np.frombuffer(self.shm.buf, np.int64, count=self._ctrl_words)

    def _slot_off(self, buf: int, rank: int) -> int:
        return (
            self._ctrl_words * _WORD
            + (buf * self.world_size + rank) * self._slot_stride
        )

    def _slot_header(self, buf: int, rank: int) -> np.ndarray:
        return np.frombuffer(
            self.shm.buf,
            np.int64,
            count=_HEADER_WORDS,
            offset=self._slot_off(buf, rank),
        )

    def _slot_data(self, buf: int, rank: int, nbytes: int) -> np.ndarray:
        return np.frombuffer(
            self.shm.buf,
            np.uint8,
            count=nbytes,
            offset=self._slot_off(buf, rank) + _HEADER_WORDS * _WORD,
        )

    # --- slot protocol -----------------------------------------------------------
    def publish(
        self, buf: int, rank: int, *, seq: int, crc: int, data: np.ndarray | None
    ) -> None:
        """Write one chunk (header + payload) into this rank's slot."""
        nbytes = 0 if data is None else int(data.nbytes)
        if nbytes > self.slot_capacity:
            raise ValueError(
                f"chunk of {nbytes} bytes exceeds slot capacity"
                f" {self.slot_capacity}"
            )
        if nbytes:
            self._slot_data(buf, rank, nbytes)[:] = data
        header = self._slot_header(buf, rank)
        header[0] = seq
        header[1] = crc
        header[2] = nbytes

    def read_header(self, buf: int, rank: int) -> tuple[int, int, int]:
        """``(seq, crc, nbytes)`` of the chunk published in a peer's slot."""
        header = self._slot_header(buf, rank)
        return int(header[0]), int(header[1]), int(header[2])

    def read_data(self, buf: int, rank: int, out: np.ndarray) -> None:
        """Copy a peer's published payload into ``out`` (uint8 view)."""
        out[:] = self._slot_data(buf, rank, int(out.nbytes))

    # --- abort / recovery flags ----------------------------------------------------
    def set_abort(self, rank: int, kind: int) -> None:
        ctrl = self._ctrl()
        # never downgrade: a terminal flag must survive a later replay flag
        ctrl[2 + rank] = max(int(ctrl[2 + rank]), kind)

    def abort_kinds(self) -> list[int]:
        ctrl = self._ctrl()
        return [int(ctrl[2 + r]) for r in range(self.world_size)]

    def clear_aborts(self) -> None:
        ctrl = self._ctrl()
        ctrl[2 : 2 + self.world_size] = 0

    def ack_recovery(self, rank: int, target_epoch: int) -> None:
        ctrl = self._ctrl()
        ctrl[2 + self.world_size + rank] = target_epoch

    def all_recovered(self, target_epoch: int) -> bool:
        ctrl = self._ctrl()
        acks = ctrl[2 + self.world_size : 2 + 2 * self.world_size]
        return bool((acks >= target_epoch).all())

    @property
    def epoch(self) -> int:
        return int(self._ctrl()[1])

    def set_epoch(self, epoch: int) -> None:
        self._ctrl()[1] = epoch

    # --- lifecycle -----------------------------------------------------------------
    def destroy(self) -> None:
        """Close the mapping and unlink the segment (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self.shm.close()
        except BufferError:
            # a live numpy view pins the mapping; unlink anyway — the
            # kernel frees the segment once the last mapping dies
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


_TEL_HEADER_WORDS = 2  # seq, nbytes


class TelemetryRing:
    """Lock-free single-writer-per-slot telemetry segment beside the data ring.

    One seqlock slot per rank: ``[seq, nbytes]`` int64 header followed by
    ``slot_capacity`` payload bytes.  The owning rank is the only writer of
    its slot; any process may read any slot at any time.

    Writer protocol (:meth:`put_sample`): bump ``seq`` to odd (write in
    progress), copy the payload, bump ``seq`` to even.  Reader protocol
    (:meth:`read_sample`): load ``seq``; if odd, the slot is mid-write —
    retry; copy the payload; re-load ``seq`` and retry if it changed.
    Readers never block writers and writers never wait, so a wedged
    aggregator cannot stall a rank and a wedged rank cannot stall the
    watchdog — which is the whole point of the health plane.

    Only ``repro.obs.live`` may call :meth:`put_sample`; the
    ``telemetry-ring-write`` lint rule enforces this.
    """

    def __init__(self, world_size: int, *, slot_capacity: int = 4096) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if slot_capacity <= 0:
            raise ValueError("slot_capacity must be positive")
        self.world_size = world_size
        self.slot_capacity = int(slot_capacity)
        self._slot_stride = _TEL_HEADER_WORDS * _WORD + self.slot_capacity
        total = world_size * self._slot_stride
        self.name = SEGMENT_PREFIX + "tel_" + secrets.token_hex(8)
        self.shm = shared_memory.SharedMemory(
            name=self.name, create=True, size=total
        )
        self.shm.buf[:total] = b"\x00" * total
        self._destroyed = False

    def _header(self, rank: int) -> np.ndarray:
        return np.frombuffer(
            self.shm.buf,
            np.int64,
            count=_TEL_HEADER_WORDS,
            offset=rank * self._slot_stride,
        )

    def _payload(self, rank: int, nbytes: int) -> np.ndarray:
        return np.frombuffer(
            self.shm.buf,
            np.uint8,
            count=nbytes,
            offset=rank * self._slot_stride + _TEL_HEADER_WORDS * _WORD,
        )

    def put_sample(self, rank: int, payload: bytes) -> None:
        """Publish ``payload`` into this rank's slot (single-writer seqlock)."""
        nbytes = len(payload)
        if nbytes > self.slot_capacity:
            raise ValueError(
                f"sample of {nbytes} bytes exceeds telemetry slot capacity"
                f" {self.slot_capacity}"
            )
        header = self._header(rank)
        header[0] = int(header[0]) | 1  # odd: write in progress
        self._payload(rank, nbytes)[:] = np.frombuffer(payload, np.uint8)
        header[1] = nbytes
        header[0] = (int(header[0]) | 1) + 1  # even: published

    def read_sample(self, rank: int) -> bytes | None:
        """Copy the latest published payload of ``rank`` (``None`` if empty)."""
        header = self._header(rank)
        for _ in range(64):
            seq0 = int(header[0])
            if seq0 == 0:
                return None
            if seq0 & 1:
                continue  # mid-write
            nbytes = int(header[1])
            data = bytes(self._payload(rank, nbytes))
            if int(header[0]) == seq0:
                return data
        return None  # writer kept racing us; caller treats it as "no news"

    def read_all(self) -> list[bytes | None]:
        return [self.read_sample(r) for r in range(self.world_size)]

    def destroy(self) -> None:
        """Close the mapping and unlink the segment (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self.shm.close()
        except BufferError:
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
