"""Simulated data-parallel communication.

Collectives execute functionally over per-rank numpy buffers in a single
process (loop-over-ranks), so their numerics are real and testable; a
:class:`CommStats` ledger records the data-movement volume of every call so
tests and benches can verify the paper's volume arithmetic (e.g. broadcast
and allgather move the same bytes — Sec. 6.1).  Alpha-beta cost models for
the same collectives live in :mod:`repro.comm.cost` and feed the performance
simulator.
"""

from repro.comm.backend import (
    BACKEND_NAMES,
    CommBackend,
    CommDivergence,
    CommError,
    CommPeerAbort,
    CommTimeout,
    LoopBackend,
    make_backend,
)
from repro.comm.group import CommStats, ProcessGroup
from repro.comm.launcher import (
    MpRunResult,
    MpSession,
    MpWorkerFailed,
    TraceShard,
    run_multiproc,
)
from repro.comm.mp_backend import MultiprocBackend
from repro.comm.collectives import (  # lint: allow-raw-collective-import
    allgather,
    allgather_into,
    allreduce,
    alltoall,
    broadcast,
    gather,
    readonly_slice,
    reduce_scatter,
    reduce_scatter_into,
    scatter,
)
from repro.comm.cost import (
    CollectiveCostModel,
    HierarchicalCostModel,
    ring_allgather_time,
    ring_reduce_scatter_time,
)

__all__ = [
    "BACKEND_NAMES",
    "CommBackend",
    "CommDivergence",
    "CommError",
    "CommPeerAbort",
    "CommStats",
    "CommTimeout",
    "LoopBackend",
    "MpRunResult",
    "MpSession",
    "MpWorkerFailed",
    "MultiprocBackend",
    "ProcessGroup",
    "TraceShard",
    "make_backend",
    "run_multiproc",
    "allgather",
    "allgather_into",
    "allreduce",
    "alltoall",
    "broadcast",
    "gather",
    "readonly_slice",
    "reduce_scatter",
    "reduce_scatter_into",
    "scatter",
    "CollectiveCostModel",
    "HierarchicalCostModel",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
]
