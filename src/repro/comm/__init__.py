"""Simulated data-parallel communication.

Collectives execute functionally over per-rank numpy buffers in a single
process (loop-over-ranks), so their numerics are real and testable; a
:class:`CommStats` ledger records the data-movement volume of every call so
tests and benches can verify the paper's volume arithmetic (e.g. broadcast
and allgather move the same bytes — Sec. 6.1).  Alpha-beta cost models for
the same collectives live in :mod:`repro.comm.cost` and feed the performance
simulator.
"""

from repro.comm.group import CommStats, ProcessGroup
from repro.comm.collectives import (
    allgather,
    allgather_into,
    allreduce,
    alltoall,
    broadcast,
    gather,
    readonly_slice,
    reduce_scatter,
    reduce_scatter_into,
    scatter,
)
from repro.comm.cost import (
    CollectiveCostModel,
    HierarchicalCostModel,
    ring_allgather_time,
    ring_reduce_scatter_time,
)

__all__ = [
    "CommStats",
    "ProcessGroup",
    "allgather",
    "allgather_into",
    "allreduce",
    "alltoall",
    "broadcast",
    "gather",
    "readonly_slice",
    "reduce_scatter",
    "reduce_scatter_into",
    "scatter",
    "CollectiveCostModel",
    "HierarchicalCostModel",
    "ring_allgather_time",
    "ring_reduce_scatter_time",
]
