"""One-process-per-rank backend over shared memory.

Execution model — **replicated-state SPMD**: every rank process holds the
*full* simulation state (all ranks' parameter shards, optimizer state,
RNG streams), deterministically identical across processes, and computes
only its own rank's forward/backward.  The only data that crosses process
boundaries is

* per-parameter full gradients at harvest time (:meth:`exchange`), and
* per-step losses plus the step-boundary rendezvous (:meth:`step_sync`).

After an exchange every process holds the same world-sized gradient list
the loop backend would have assembled in-process, so reductions, bucket
flushes and optimizer updates run *replicated and deterministic* — which
is what makes the backend bit-identical to the loop oracle while the
expensive forward/backward runs in parallel.

The list collectives are inherited from :class:`LoopBackend` verbatim:
their inputs are replicated (or completed by a prior exchange), so
executing them locally in every process is both correct and exactly what
keeps ``CommStats`` identical between backends.  Exchange/rendezvous
traffic is deliberately kept in backend-private counters, **not**
``CommStats`` — it is transport, not a collective the simulated algorithm
issued.

Failure protocol (see ``docs/parallelism.md``): an aborting rank sets its
abort flag in the ring control block and breaks the barrier; peers waiting
in a rendezvous observe the broken barrier, classify via the flags
(replay → :class:`CommPeerAbort`, terminal → :class:`CommError`, no flag →
:class:`CommTimeout`), and the engine's step-replay tier drives everyone
through :meth:`recover_after_abort` — an epoch-bump rendezvous that resets
the barrier and the exchange sequence before the bit-identical replay.
"""

from __future__ import annotations

import time
from threading import BrokenBarrierError
from typing import Sequence

import numpy as np

from repro.comm.backend import (
    CommDivergence,
    CommError,
    CommPeerAbort,
    CommTimeout,
    LoopBackend,
)
from repro.comm.shm import ABORT_REPLAY, ABORT_TERMINAL, SharedRing
from repro.obs.perfscope import stall_span
from repro.obs.tracer import trace_span

_POLL_S = 0.001


class MultiprocBackend(LoopBackend):
    """Rank-``rank`` endpoint of a :class:`~repro.comm.launcher.MpSession`."""

    name = "mp"

    def __init__(self, session, rank: int) -> None:
        super().__init__(session.world_size)
        if not 0 <= rank < session.world_size:
            raise ValueError(f"rank {rank} out of range")
        self.session = session
        self._rank = rank
        self._seq = 0  # exchange chunk counter, reset on recovery
        self._epoch = 0
        # transport-private accounting (NOT CommStats — see module docstring)
        self.exchanges = 0
        self.exchange_bytes = 0  # payload bytes this rank published
        self.step_syncs = 0
        self.barrier_waits = 0
        self.wait_s = 0.0  # time blocked in rendezvous barriers
        self.peer_aborts_seen = 0

    # --- locality ---------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def all_local(self) -> bool:
        return False

    def is_local(self, rank: int) -> bool:
        return rank == self._rank

    # --- rendezvous --------------------------------------------------------------
    def _barrier_wait(self) -> None:
        t0 = time.perf_counter()
        try:
            with stall_span("exchange_wait", owner=f"rank{self._rank}"):
                self.session.barrier.wait(timeout=self.session.timeout)
        except BrokenBarrierError:
            self._raise_broken()
        finally:
            self.wait_s += time.perf_counter() - t0
            self.barrier_waits += 1

    def _raise_broken(self) -> None:
        kinds = self.session.ring.abort_kinds()
        self.peer_aborts_seen += 1
        if ABORT_TERMINAL in kinds:
            raise CommError(
                f"peer rank(s) {[r for r, k in enumerate(kinds) if k]} "
                f"terminated mid-step; aborting rank {self._rank}"
            )
        if ABORT_REPLAY in kinds:
            raise CommPeerAbort(
                f"peer rank(s) {[r for r, k in enumerate(kinds) if k]} "
                f"aborted the step for replay"
            )
        raise CommTimeout(
            f"rank {self._rank}: rendezvous barrier broke with no abort flag"
            f" after {self.session.timeout}s — a peer is missing or the"
            f" collective sequences deadlocked"
        )

    # --- exchange ----------------------------------------------------------------
    def exchange(self, payload: np.ndarray) -> list[np.ndarray]:
        """All-gather ``payload`` across rank processes through the ring.

        The payload is split into slot-capacity chunks; chunk ``k`` is
        published to ring buffer ``k % 2`` and one barrier wait separates
        publish from read (double-buffering makes the reuse safe — see
        :mod:`repro.comm.shm`).  Every chunk header carries the exchange
        sequence number and the running fingerprint digest; a peer whose
        header disagrees has issued a different collective sequence and
        the exchange raises :class:`CommDivergence` instead of silently
        corrupting gradients.
        """
        arr = np.ascontiguousarray(payload)
        flat = arr.reshape(-1)
        nbytes = int(flat.nbytes)
        world = self.world_size
        ring = self.session.ring
        self.note_fingerprint("exchange", [str(flat.dtype)], [int(flat.size)])
        out = [np.empty(flat.size, dtype=flat.dtype) for _ in range(world)]
        src = flat.view(np.uint8) if nbytes else None
        dst = [o.view(np.uint8) for o in out] if nbytes else []
        with trace_span(
            "mp:exchange", cat="comm", bytes=nbytes, world=world, seq=self._seq
        ):
            sent = 0
            while True:
                n = min(ring.slot_capacity, nbytes - sent)
                buf = self._seq % 2
                ring.publish(
                    buf,
                    self._rank,
                    seq=self._seq,
                    crc=self._digest,
                    data=src[sent : sent + n] if n else None,
                )
                self._barrier_wait()
                for r in range(world):
                    seq, crc, got = ring.read_header(buf, r)
                    if seq != self._seq or got != n:
                        raise CommDivergence(
                            f"rank {r} published chunk (seq={seq}, {got}B)"
                            f" while rank {self._rank} expected"
                            f" (seq={self._seq}, {n}B): exchange streams"
                            f" diverged"
                        )
                    if crc != self._digest:
                        raise CommDivergence(
                            f"collective fingerprint mismatch at exchange"
                            f" seq {self._seq}: rank {r} digest {crc:#x} !="
                            f" rank {self._rank} digest {self._digest:#x}"
                            f" — ranks issued different collective sequences"
                        )
                    if n:
                        ring.read_data(buf, r, dst[r][sent : sent + n])
                self._seq += 1
                sent += n
                if sent >= nbytes:
                    break
        self.exchanges += 1
        self.exchange_bytes += nbytes
        return [o.reshape(arr.shape) for o in out]

    _EMPTY = np.empty(0, dtype=np.uint8)

    def step_sync(self) -> None:
        """Step-boundary rendezvous: a zero-payload, digest-carrying round."""
        self.note_fingerprint("step_sync", [], [])
        self.exchange(self._EMPTY)
        self.step_syncs += 1

    # --- abort / recovery ----------------------------------------------------------
    def signal_abort(self, terminal: bool = False) -> None:
        """Flag the abort in shared memory and break peers out of waits."""
        from repro.obs.flightrec import get_flightrec  # lazy: import cycle

        fr = get_flightrec()
        if fr is not None:
            fr.record(
                "abort",
                "signal_abort",
                rank=self._rank,
                volatile=True,
                terminal=terminal,
                seq=self._seq,
                digest=self._digest,
            )
        self.session.ring.set_abort(
            self._rank, ABORT_TERMINAL if terminal else ABORT_REPLAY
        )
        self.session.barrier.abort()

    def recover_after_abort(self) -> None:
        """Rendezvous after an aborted step: epoch bump + barrier reset.

        Every rank acknowledges the target epoch; rank 0 waits for all
        acks, resets the broken barrier, clears the abort flags, then
        publishes the new epoch, which the other ranks poll for.  The
        exchange sequence restarts from 0 so the replay's chunk stream
        lines up across processes.

        The fingerprint digest also resets: ranks abort at *different*
        points of the failed step (the faulting rank mid-compute, its
        peers mid-rendezvous), so their partial-attempt digests have
        legitimately diverged — carrying them into the replay would
        flag the bit-identical replay as divergence.
        """
        ring = self.session.ring
        target = self._epoch + 1
        deadline = time.perf_counter() + self.session.timeout
        ring.ack_recovery(self._rank, target)
        if self._rank == 0:
            with stall_span("recovery_wait", owner="rank0"):
                while not ring.all_recovered(target):
                    if time.perf_counter() > deadline:
                        raise CommTimeout(
                            f"recovery rendezvous for epoch {target} timed"
                            f" out: acks {ring.abort_kinds()}"
                        )
                    time.sleep(_POLL_S)
            self.session.barrier.reset()
            ring.clear_aborts()
            ring.set_epoch(target)
        else:
            with stall_span("recovery_wait", owner=f"rank{self._rank}"):
                while ring.epoch < target:
                    if time.perf_counter() > deadline:
                        raise CommTimeout(
                            f"rank {self._rank} timed out waiting for epoch"
                            f" {target} (rank 0 never completed recovery)"
                        )
                    time.sleep(_POLL_S)
        self._epoch = target
        self._seq = 0
        self._digest = 0
        from repro.obs.flightrec import get_flightrec  # lazy: import cycle

        fr = get_flightrec()
        if fr is not None:
            fr.record(
                "retry", "recovered", rank=self._rank, volatile=True, epoch=target
            )

    def transport_stats(self) -> dict[str, float]:
        """Backend-private transport counters (for benches and reports)."""
        return {
            "exchanges": self.exchanges,
            "exchange_bytes": self.exchange_bytes,
            "step_syncs": self.step_syncs,
            "barrier_waits": self.barrier_waits,
            "wait_s": self.wait_s,
            "peer_aborts_seen": self.peer_aborts_seen,
        }
