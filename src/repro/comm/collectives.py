"""Functional collectives over per-rank numpy buffers.

Each function takes (and returns) a list indexed by rank and computes the
exact result the corresponding MPI/NCCL collective would produce.  They are
pure (inputs are never mutated) and shape-checked, because partition bugs in
ZeRO engines almost always surface as silent shape/ordering mistakes here.

Following the mpi4py convention for buffer collectives, inputs must be numpy
arrays; ragged shard sizes are allowed where the real collectives allow them
(``allgather`` of unequal shards mirrors ``Allgatherv``).

Every collective records a ``cat="comm"`` span (op, world size, payload
bytes) on the global tracer, so traced runs show exactly which transfers
overlap which compute — a no-op attribute check when tracing is off.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs.tracer import trace_span


def _check_world(buffers: Sequence[np.ndarray]) -> int:
    if not buffers:
        raise ValueError("collective needs at least one rank")
    return len(buffers)


def broadcast(buffers: Sequence[np.ndarray | None], root: int) -> list[np.ndarray]:
    """Every rank receives a read-only view of one copy of the root's buffer.

    One private copy is taken (so later writes to the root's buffer do not
    retroactively change what was broadcast) and all ranks share read-only
    views of it — O(1) copies instead of O(world).  Callers that need a
    mutable result copy their view, exactly as after a real broadcast into
    symmetric memory.
    """
    world = len(buffers)
    if not 0 <= root < world:
        raise ValueError(f"root {root} out of range for world {world}")
    src = buffers[root]
    if src is None:
        raise ValueError("root buffer must not be None")
    with trace_span("comm:broadcast", cat="comm", world=world, bytes=int(src.nbytes)):
        full = np.ascontiguousarray(src).reshape(-1).copy()
        view = readonly_slice(full, 0, full.size).reshape(src.shape)
        return [view for _ in range(world)]


def allgather(shards: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Every rank receives the rank-order concatenation of all shards.

    Shards may be unequal length (Allgatherv semantics); each is flattened.
    The concatenation is materialised **once** and every rank receives a
    read-only view of it (no per-rank ``full.copy()`` — O(world) redundant
    memcpy saved); callers that need a mutable result copy their view.
    """
    world = _check_world(shards)
    payload = sum(int(np.asarray(s).nbytes) for s in shards)
    with trace_span("comm:allgather", cat="comm", world=world, bytes=payload):
        full = np.concatenate([np.asarray(s).reshape(-1) for s in shards])
        view = readonly_slice(full, 0, full.size)
        return [view for _ in range(world)]


def readonly_slice(owner: np.ndarray, start: int, count: int) -> np.ndarray:
    """A zero-copy read-only view of ``owner[start:start+count]``.

    A plain ``view.flags.writeable = False`` is not enough: numpy collapses
    view chains, so ``view[lo:hi].base`` is the original *writable* owner
    and ``shard.base[...] = x`` silently mutates shared memory.  Building
    the view over a read-only ``memoryview`` instead makes the whole base
    chain immutable — writes through ``.base`` raise ``TypeError`` and
    ``flags.writeable = True`` is refused by numpy — while the view still
    aliases ``owner`` (``np.shares_memory`` holds and owner updates remain
    visible), which is exactly the symmetric-memory discipline a zero-copy
    collective imposes.
    """
    if not owner.flags.c_contiguous:
        raise ValueError("readonly_slice requires a C-contiguous owner buffer")
    return np.frombuffer(
        memoryview(owner).toreadonly(),
        dtype=owner.dtype,
        count=count,
        offset=start * owner.itemsize,
    )


def allgather_into(
    shards: Sequence[np.ndarray], out: np.ndarray
) -> list[np.ndarray]:
    """Zero-copy allgather: concatenate shards into a caller-owned buffer.

    Unlike :func:`allgather`, which materialises one full copy per rank,
    the rank-order concatenation is written once into ``out`` (a flat,
    reusable buffer of at least the total shard size) and every rank
    receives a read-only view of the same memory.  In the single-process
    simulation all ranks genuinely share the buffer; callers that need a
    private mutable copy must take one — exactly the discipline a real
    symmetric-memory collective imposes.
    """
    world = _check_world(shards)
    flats = [np.asarray(s).reshape(-1) for s in shards]
    total = sum(f.size for f in flats)
    if out.ndim != 1 or out.size < total or not out.flags.c_contiguous:
        raise ValueError(
            f"allgather_into needs a flat contiguous out buffer of >="
            f" {total} elements, got shape {out.shape}"
        )
    payload = sum(int(f.nbytes) for f in flats)
    with trace_span("comm:allgather", cat="comm", world=world, bytes=payload):
        offset = 0
        base_ptr = out.__array_interface__["data"][0]
        itemsize = out.itemsize
        for f in flats:
            # NCCL-style in-place allgather: a shard that already *is* the
            # right slice of ``out`` (sendbuf == recvbuf + offset) is not
            # copied — callers may assemble shards directly in the buffer
            if not (
                f.dtype == out.dtype
                and f.__array_interface__["data"][0]
                == base_ptr + offset * itemsize
            ):
                out[offset : offset + f.size] = f
            offset += f.size
        view = readonly_slice(out, 0, total)
        return [view for _ in range(world)]


def reduce_scatter_into(
    buffers: Sequence[np.ndarray],
    out: np.ndarray,
    *,
    op: str = "sum",
    accum_dtype=np.float32,
) -> list[np.ndarray]:
    """Zero-copy reduce-scatter into a caller-owned buffer.

    The elementwise reduction of ``buffers`` is written once into ``out``
    (flat, same total size) and rank ``r`` receives a read-only view of its
    shard ``out[r*n/p : (r+1)*n/p]`` — no fresh allocation per rank, so a
    fixed-capacity gradient bucket can reuse the same output buffer for
    every flush.
    """
    world = _check_world(buffers)
    flats = [np.asarray(b).reshape(-1) for b in buffers]
    n = flats[0].size
    for f in flats:
        if f.size != n:
            raise ValueError("reduce_scatter buffers must share a size")
    if n % world:
        raise ValueError(f"reduce_scatter needs size % world == 0: {n} % {world}")
    if op not in ("sum", "mean"):
        raise ValueError(f"unsupported reduction op {op!r}")
    if out.ndim != 1 or out.size < n or not out.flags.c_contiguous:
        raise ValueError(
            f"reduce_scatter_into needs a flat contiguous out buffer of >="
            f" {n} elements, got shape {out.shape}"
        )
    payload = sum(int(f.nbytes) for f in flats)
    with trace_span(
        "comm:reduce_scatter", cat="comm", world=world, bytes=payload, op=op
    ):
        acc = np.zeros(n, dtype=accum_dtype)
        for f in flats:
            acc += f.astype(accum_dtype, copy=False)
        if op == "mean":
            acc /= world
        out[:n] = acc.astype(out.dtype, copy=False)
        shard = n // world
        return [
            readonly_slice(out, r * shard, shard) for r in range(world)
        ]


def gather(shards: Sequence[np.ndarray], root: int) -> list[np.ndarray | None]:
    """Root receives the concatenation; other ranks receive ``None``."""
    world = _check_world(shards)
    if not 0 <= root < world:
        raise ValueError(f"root {root} out of range for world {world}")
    payload = sum(int(np.asarray(s).nbytes) for s in shards)
    with trace_span("comm:gather", cat="comm", world=world, bytes=payload):
        full = np.concatenate([np.asarray(s).reshape(-1) for s in shards])
        return [full if r == root else None for r in range(world)]


def scatter(full: np.ndarray, world: int, root: int = 0) -> list[np.ndarray]:
    """Split the root's buffer into ``world`` equal shards, one per rank."""
    flat = np.asarray(full).reshape(-1)
    if flat.size % world:
        raise ValueError(
            f"scatter requires size divisible by world: {flat.size} % {world}"
        )
    shard = flat.size // world
    with trace_span("comm:scatter", cat="comm", world=world, bytes=int(flat.nbytes)):
        return [flat[r * shard : (r + 1) * shard].copy() for r in range(world)]


def allreduce(
    buffers: Sequence[np.ndarray], *, op: str = "sum", accum_dtype=np.float32
) -> list[np.ndarray]:
    """Every rank receives the elementwise reduction of all buffers.

    Reduction accumulates in ``accum_dtype`` then casts back — matching
    NCCL's behaviour for fp16 allreduce where accumulation error would
    otherwise destroy convergence.
    """
    world = _check_world(buffers)
    shape = buffers[0].shape
    for b in buffers:
        if b.shape != shape:
            raise ValueError("allreduce buffers must share a shape")
    if op not in ("sum", "mean", "max"):
        raise ValueError(f"unsupported reduction op {op!r}")
    payload = sum(int(b.nbytes) for b in buffers)
    with trace_span("comm:allreduce", cat="comm", world=world, bytes=payload, op=op):
        if op == "max":
            acc = np.maximum.reduce(
                [b.astype(accum_dtype, copy=False) for b in buffers]
            )
        else:
            acc = np.zeros(shape, dtype=accum_dtype)
            for b in buffers:
                acc += b.astype(accum_dtype, copy=False)
            if op == "mean":
                acc /= world
        out_dtype = buffers[0].dtype
        return [acc.astype(out_dtype) for _ in range(world)]


def reduce_scatter(
    buffers: Sequence[np.ndarray], *, op: str = "sum", accum_dtype=np.float32
) -> list[np.ndarray]:
    """Rank ``r`` receives shard ``r`` of the elementwise reduction.

    Buffers are flattened; their length must divide evenly by the world
    size (callers pad with :func:`repro.tensor.flat.pad_to_multiple`).
    """
    world = _check_world(buffers)
    flats = [np.asarray(b).reshape(-1) for b in buffers]
    n = flats[0].size
    for f in flats:
        if f.size != n:
            raise ValueError("reduce_scatter buffers must share a size")
    if n % world:
        raise ValueError(f"reduce_scatter needs size % world == 0: {n} % {world}")
    if op not in ("sum", "mean"):
        raise ValueError(f"unsupported reduction op {op!r}")
    payload = sum(int(f.nbytes) for f in flats)
    with trace_span(
        "comm:reduce_scatter", cat="comm", world=world, bytes=payload, op=op
    ):
        acc = np.zeros(n, dtype=accum_dtype)
        for f in flats:
            acc += f.astype(accum_dtype, copy=False)
        if op == "mean":
            acc /= world
        shard = n // world
        out_dtype = flats[0].dtype
        return [
            acc[r * shard : (r + 1) * shard].astype(out_dtype)
            for r in range(world)
        ]


def alltoall(matrix: Sequence[Sequence[np.ndarray]]) -> list[list[np.ndarray]]:
    """``out[j][i] = in[i][j]``: rank i sends ``matrix[i][j]`` to rank j."""
    world = len(matrix)
    for row in matrix:
        if len(row) != world:
            raise ValueError("alltoall requires a square send matrix")
    payload = sum(
        int(np.asarray(cell).nbytes) for row in matrix for cell in row
    )
    with trace_span("comm:alltoall", cat="comm", world=world, bytes=payload):
        return [
            [np.asarray(matrix[i][j]).copy() for i in range(world)]
            for j in range(world)
        ]
