"""Process-group facade with data-movement accounting.

:class:`ProcessGroup` wraps the functional collectives and records, per
collective type, how many bytes crossed device boundaries.  Volume accounting
follows the standard ring-algorithm convention used by the paper's Sec. 6.1
argument (broadcast and allgather move the same volume): for a payload of
``n`` bytes over ``p`` ranks,

* broadcast / allgather / reduce-scatter move ``(p-1)/p * n`` per rank,
* allreduce moves ``2(p-1)/p * n`` per rank (reduce-scatter + allgather).

This facade is also where the checker observes communication (the
functional layer stays unfingerprinted so ad-hoc numerics helpers do not
pollute the per-rank sequences): when a ``CheckContext`` with the
``collectives`` pass is installed, every call appends a per-rank
fingerprint that :meth:`ProcessGroup.barrier` (and engine step boundaries)
cross-check for would-be deadlocks; when ``zerosan`` is on, the zero-copy
``*_into`` variants register their shared output buffer so writes through
an outstanding view are caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.check.runtime import CheckContext, get_checker
from repro.comm import collectives as C
from repro.obs.metrics import get_registry


@dataclass
class CommStats:
    """Byte and call counters per collective, across the whole group.

    Each record also feeds the global metrics registry
    (``comm.bytes.<op>`` / ``comm.calls.<op>``), so per-collective byte
    volumes show up in the telemetry snapshot alongside NVMe and prefetch
    counters without threading a registry through every caller.
    """

    bytes_by_op: dict[str, int] = field(default_factory=dict)
    calls_by_op: dict[str, int] = field(default_factory=dict)

    #: bytes-per-collective histogram bounds: geometric 1-2-5 up to 1 TB,
    #: so both a bias gather and a full bucket flush land in a real bucket.
    PAYLOAD_BOUNDS = tuple(m * 10**e for e in range(0, 13) for m in (1, 2, 5))

    def record(self, op: str, nbytes: int) -> None:
        self.bytes_by_op[op] = self.bytes_by_op.get(op, 0) + int(nbytes)
        self.calls_by_op[op] = self.calls_by_op.get(op, 0) + 1
        registry = get_registry()
        registry.counter(f"comm.bytes.{op}").inc(int(nbytes))
        registry.counter(f"comm.calls.{op}").inc()
        registry.histogram("comm.payload_bytes", self.PAYLOAD_BOUNDS).observe(
            int(nbytes)
        )

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_op.values())

    @property
    def total_calls(self) -> int:
        return sum(self.calls_by_op.values())

    def reset(self) -> None:
        self.bytes_by_op.clear()
        self.calls_by_op.clear()


class ProcessGroup:
    """A simulated communicator over ``world_size`` in-process ranks."""

    def __init__(
        self, world_size: int, *, check: Optional[CheckContext] = None
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.world_size = world_size
        self.stats = CommStats()
        self._check = check if check is not None else get_checker()
        self._check_gid: Optional[int] = None
        ck = self._check
        if ck is not None and ck.collectives is not None:
            self._check_gid = ck.collectives.register_group(world_size)

    def _per_rank_ring_volume(self, payload_bytes: int) -> int:
        p = self.world_size
        return int(payload_bytes * (p - 1) / p)

    # --- checker hooks ----------------------------------------------------------
    def _fingerprint(self, op: str, payloads: Sequence[np.ndarray]) -> None:
        """Record one collective's per-rank fingerprints (before executing,
        as a real collective would already be committed once issued)."""
        ck = self._check
        if ck is None or ck.collectives is None:
            return
        ck.collectives.record(
            self._check_gid,
            op,
            [str(np.asarray(p).dtype) for p in payloads],
            [int(np.asarray(p).size) for p in payloads],
        )

    def _share(self, owner: np.ndarray, views: Sequence[np.ndarray]) -> None:
        """A zero-copy collective reused ``owner``: void outstanding shares
        of it, then register the new ones."""
        ck = self._check
        if ck is None or ck.zerosan is None:
            return
        ck.zerosan.reclaim(owner)
        ck.zerosan.register_shared(owner, views)

    # --- collectives -----------------------------------------------------------
    def broadcast(
        self, buffers: Sequence[np.ndarray | None], root: int = 0
    ) -> list[np.ndarray]:
        if self._check is not None and buffers[root] is not None:
            self._fingerprint("broadcast", [buffers[root]] * self.world_size)
        out = C.broadcast(buffers, root)
        self.stats.record(
            "broadcast", self._per_rank_ring_volume(out[0].nbytes) * self.world_size
        )
        return out

    def allgather(self, shards: Sequence[np.ndarray]) -> list[np.ndarray]:
        if self._check is not None:
            self._fingerprint("allgather", shards)
        out = C.allgather(shards)
        self.stats.record(
            "allgather", self._per_rank_ring_volume(out[0].nbytes) * self.world_size
        )
        return out

    def allgather_into(
        self, shards: Sequence[np.ndarray], out: np.ndarray
    ) -> list[np.ndarray]:
        """Allgather into a caller-owned reusable buffer (read-only views)."""
        if self._check is not None:
            self._fingerprint("allgather", shards)
        views = C.allgather_into(shards, out)
        if self._check is not None:
            self._share(out, views)
        self.stats.record(
            "allgather",
            self._per_rank_ring_volume(views[0].nbytes) * self.world_size,
        )
        return views

    def reduce_scatter(
        self, buffers: Sequence[np.ndarray], *, op: str = "sum"
    ) -> list[np.ndarray]:
        if self._check is not None:
            self._fingerprint("reduce_scatter", buffers)
        out = C.reduce_scatter(buffers, op=op)
        self.stats.record(
            "reduce_scatter",
            self._per_rank_ring_volume(buffers[0].nbytes) * self.world_size,
        )
        return out

    def reduce_scatter_into(
        self, buffers: Sequence[np.ndarray], out: np.ndarray, *, op: str = "sum"
    ) -> list[np.ndarray]:
        """Reduce-scatter into a caller-owned reusable buffer."""
        if self._check is not None:
            self._fingerprint("reduce_scatter", buffers)
        views = C.reduce_scatter_into(buffers, out, op=op)
        if self._check is not None:
            self._share(out, views)
        self.stats.record(
            "reduce_scatter",
            self._per_rank_ring_volume(buffers[0].nbytes) * self.world_size,
        )
        return views

    def allreduce(
        self, buffers: Sequence[np.ndarray], *, op: str = "sum"
    ) -> list[np.ndarray]:
        if self._check is not None:
            self._fingerprint("allreduce", buffers)
        out = C.allreduce(buffers, op=op)
        self.stats.record(
            "allreduce",
            2 * self._per_rank_ring_volume(buffers[0].nbytes) * self.world_size,
        )
        return out

    def gather(
        self, shards: Sequence[np.ndarray], root: int = 0
    ) -> list[np.ndarray | None]:
        if self._check is not None:
            self._fingerprint("gather", shards)
        out = C.gather(shards, root)
        payload = sum(int(np.asarray(s).nbytes) for s in shards)
        self.stats.record("gather", payload)
        return out

    def scatter(self, full: np.ndarray, root: int = 0) -> list[np.ndarray]:
        if self._check is not None:
            self._fingerprint("scatter", [full] * self.world_size)
        out = C.scatter(full, self.world_size, root)
        self.stats.record("scatter", int(np.asarray(full).nbytes))
        return out

    def barrier(self) -> None:
        """No-op in a single-process simulation; kept for API parity.

        With the collective-ordering checker installed this is a real
        synchronization point: the per-rank fingerprint sequences are
        cross-checked and divergence reported as the deadlock it would be.
        """
        ck = self._check
        if ck is not None and ck.collectives is not None:
            ck.collectives.cross_check(self._check_gid)
        self.stats.record("barrier", 0)
