"""Process-group facade with data-movement accounting.

:class:`ProcessGroup` wraps a pluggable :class:`~repro.comm.backend.CommBackend`
and records, per collective type, how many bytes crossed device boundaries.
Volume accounting follows the standard ring-algorithm convention used by the
paper's Sec. 6.1 argument (broadcast and allgather move the same volume): for
a payload of ``n`` bytes over ``p`` ranks,

* broadcast / allgather / reduce-scatter move ``(p-1)/p * n`` per rank,
* allreduce moves ``2(p-1)/p * n`` per rank (reduce-scatter + allgather).

This facade is also where the checker observes communication (the
functional layer stays unfingerprinted so ad-hoc numerics helpers do not
pollute the per-rank sequences): when a ``CheckContext`` with the
``collectives`` pass is installed, every call appends a per-rank
fingerprint that :meth:`ProcessGroup.barrier` (and engine step boundaries)
cross-check for would-be deadlocks; when ``zerosan`` is on, the zero-copy
``*_into`` variants register their shared output buffer so writes through
an outstanding view are caught.  Every fingerprint is also folded into the
backend's running CRC digest, which process-parallel backends carry in
their rendezvous headers for **cross-process** divergence detection.

Turn capture/echo (process-parallel mode): in the loop backend the engine
runs every rank's forward/backward turn, so gather-path collectives are
issued ``world`` times per module; a rank process runs only its own turn.
The engine therefore captures the local turn's gather-path accounting
(:meth:`begin_turn_capture` / :meth:`end_turn_capture`) and *echoes* it
once per non-local turn (:meth:`echo_turns`) — fingerprints, CRC digest
and ``CommStats`` stay bit-identical to the loop oracle by construction,
because the replicated model issues the identical per-turn sequence in
every process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.check.runtime import CheckContext, get_checker
from repro.check.static.record import get_static_recorder
from repro.comm.backend import CommBackend, LoopBackend
from repro.obs.metrics import get_registry

#: One captured gather-path collective: (op, dtypes, numels, stat_bytes).
TurnJournal = list[tuple[str, list[str], list[int], int]]


@dataclass
class CommStats:
    """Byte and call counters per collective, across the whole group.

    Each record also feeds the global metrics registry
    (``comm.bytes.<op>`` / ``comm.calls.<op>``), so per-collective byte
    volumes show up in the telemetry snapshot alongside NVMe and prefetch
    counters without threading a registry through every caller.
    """

    bytes_by_op: dict[str, int] = field(default_factory=dict)
    calls_by_op: dict[str, int] = field(default_factory=dict)

    #: bytes-per-collective histogram bounds: geometric 1-2-5 up to 1 TB,
    #: so both a bias gather and a full bucket flush land in a real bucket.
    PAYLOAD_BOUNDS = tuple(m * 10**e for e in range(0, 13) for m in (1, 2, 5))

    def record(self, op: str, nbytes: int) -> None:
        self.bytes_by_op[op] = self.bytes_by_op.get(op, 0) + int(nbytes)
        self.calls_by_op[op] = self.calls_by_op.get(op, 0) + 1
        registry = get_registry()
        registry.counter(f"comm.bytes.{op}").inc(int(nbytes))
        registry.counter(f"comm.calls.{op}").inc()
        registry.histogram("comm.payload_bytes", self.PAYLOAD_BOUNDS).observe(
            int(nbytes)
        )

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_op.values())

    @property
    def total_calls(self) -> int:
        return sum(self.calls_by_op.values())

    def reset(self) -> None:
        self.bytes_by_op.clear()
        self.calls_by_op.clear()


class ProcessGroup:
    """A simulated communicator over ``world_size`` ranks.

    ``backend`` selects the execution model: the default
    :class:`~repro.comm.backend.LoopBackend` keeps every rank in-process
    (the original behaviour); a
    :class:`~repro.comm.mp_backend.MultiprocBackend` makes this group the
    rank-local endpoint of a process-parallel launch.  Call sites are
    backend-agnostic — the facade's API and accounting are identical.
    """

    def __init__(
        self,
        world_size: int,
        *,
        check: Optional[CheckContext] = None,
        backend: Optional[CommBackend] = None,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.world_size = world_size
        self.backend = backend if backend is not None else LoopBackend(world_size)
        if self.backend.world_size != world_size:
            raise ValueError(
                f"backend world {self.backend.world_size} !="
                f" group world {world_size}"
            )
        self.stats = CommStats()
        self._check = check if check is not None else get_checker()
        self._check_gid: Optional[int] = None
        self._turn_journal: Optional[TurnJournal] = None
        ck = self._check
        if ck is not None and ck.collectives is not None:
            self._check_gid = ck.collectives.register_group(world_size)

    def _per_rank_ring_volume(self, payload_bytes: int) -> int:
        p = self.world_size
        return int(payload_bytes * (p - 1) / p)

    # --- locality / cross-process passthrough -----------------------------------
    @property
    def all_local(self) -> bool:
        """True when every simulated rank runs in this process."""
        return self.backend.all_local

    def exchange(self, payload: np.ndarray) -> list[np.ndarray]:
        """All-gather a rank-local payload across rank *processes*.

        Transport, not a simulated collective: deliberately **not**
        recorded in :class:`CommStats` (the backend keeps private
        counters), so the stats stay bit-identical to the loop oracle.
        """
        return self.backend.exchange(payload)

    # --- checker hooks ----------------------------------------------------------
    def _fingerprint(self, op: str, payloads: Sequence[np.ndarray]) -> None:
        """Record one collective's per-rank fingerprints (before executing,
        as a real collective would already be committed once issued)."""
        ck = self._check
        checked = ck is not None and ck.collectives is not None
        # schedule extraction (loop mode) taps the facade here; non-local
        # backends record through their own note_fingerprint instead
        rec = get_static_recorder() if self.backend.all_local else None
        if not checked and rec is None and self.backend.all_local:
            return
        dtypes = [str(np.asarray(p).dtype) for p in payloads]
        numels = [int(np.asarray(p).size) for p in payloads]
        if rec is not None:
            rec.on_collective(op, dtypes, numels)
        if checked:
            ck.collectives.record(self._check_gid, op, dtypes, numels)
        if not self.backend.all_local:
            self.backend.note_fingerprint(op, dtypes, numels)

    def _journal(
        self, op: str, payloads: Sequence[np.ndarray], nbytes: int
    ) -> None:
        """Capture a gather-path collective for later turn echoes."""
        if self._turn_journal is None:
            return
        self._turn_journal.append(
            (
                op,
                [str(np.asarray(p).dtype) for p in payloads],
                [int(np.asarray(p).size) for p in payloads],
                int(nbytes),
            )
        )

    def _share(self, owner: np.ndarray, views: Sequence[np.ndarray]) -> None:
        """A zero-copy collective reused ``owner``: void outstanding shares
        of it, then register the new ones."""
        ck = self._check
        if ck is None or ck.zerosan is None:
            return
        ck.zerosan.reclaim(owner)
        ck.zerosan.register_shared(owner, views)

    # --- turn capture / echo -----------------------------------------------------
    def begin_turn_capture(self) -> None:
        """Start journaling gather-path collectives of the local rank turn."""
        self._turn_journal = []

    def end_turn_capture(self) -> TurnJournal:
        journal, self._turn_journal = self._turn_journal or [], None
        return journal

    def echo_turns(self, journal: TurnJournal, count: int) -> None:
        """Replay a turn's gather-path accounting for ``count`` peer turns.

        No data moves — peers executed these collectives in their own
        processes; this replays the *observable* side (checker
        fingerprints, CRC digest, ``CommStats``) so every process's
        accounting matches the loop oracle's serialized rank loop.
        """
        ck = self._check
        checked = ck is not None and ck.collectives is not None
        for _ in range(max(count, 0)):
            for op, dtypes, numels, nbytes in journal:
                if checked:
                    ck.collectives.record(self._check_gid, op, dtypes, numels)
                if not self.backend.all_local:
                    self.backend.note_fingerprint(op, dtypes, numels)
                self.stats.record(op, nbytes)

    # --- collectives -----------------------------------------------------------
    def broadcast(
        self, buffers: Sequence[np.ndarray | None], root: int = 0
    ) -> list[np.ndarray]:
        if buffers[root] is not None:
            self._fingerprint("broadcast", [buffers[root]] * self.world_size)
        out = self.backend.broadcast(buffers, root)
        vol = self._per_rank_ring_volume(out[0].nbytes) * self.world_size
        self.stats.record("broadcast", vol)
        self._journal("broadcast", [buffers[root]] * self.world_size, vol)
        return out

    def allgather(self, shards: Sequence[np.ndarray]) -> list[np.ndarray]:
        self._fingerprint("allgather", shards)
        out = self.backend.allgather(shards)
        vol = self._per_rank_ring_volume(out[0].nbytes) * self.world_size
        self.stats.record("allgather", vol)
        self._journal("allgather", shards, vol)
        return out

    def allgather_into(
        self, shards: Sequence[np.ndarray], out: np.ndarray
    ) -> list[np.ndarray]:
        """Allgather into a caller-owned reusable buffer (read-only views)."""
        self._fingerprint("allgather", shards)
        views = self.backend.allgather_into(shards, out)
        if self._check is not None:
            self._share(out, views)
        vol = self._per_rank_ring_volume(views[0].nbytes) * self.world_size
        self.stats.record("allgather", vol)
        self._journal("allgather", shards, vol)
        return views

    def reduce_scatter(
        self, buffers: Sequence[np.ndarray], *, op: str = "sum"
    ) -> list[np.ndarray]:
        self._fingerprint("reduce_scatter", buffers)
        out = self.backend.reduce_scatter(buffers, op=op)
        self.stats.record(
            "reduce_scatter",
            self._per_rank_ring_volume(buffers[0].nbytes) * self.world_size,
        )
        return out

    def reduce_scatter_into(
        self, buffers: Sequence[np.ndarray], out: np.ndarray, *, op: str = "sum"
    ) -> list[np.ndarray]:
        """Reduce-scatter into a caller-owned reusable buffer."""
        self._fingerprint("reduce_scatter", buffers)
        views = self.backend.reduce_scatter_into(buffers, out, op=op)
        if self._check is not None:
            self._share(out, views)
        self.stats.record(
            "reduce_scatter",
            self._per_rank_ring_volume(buffers[0].nbytes) * self.world_size,
        )
        return views

    def allreduce(
        self, buffers: Sequence[np.ndarray], *, op: str = "sum"
    ) -> list[np.ndarray]:
        self._fingerprint("allreduce", buffers)
        out = self.backend.allreduce(buffers, op=op)
        self.stats.record(
            "allreduce",
            2 * self._per_rank_ring_volume(buffers[0].nbytes) * self.world_size,
        )
        return out

    def gather(
        self, shards: Sequence[np.ndarray], root: int = 0
    ) -> list[np.ndarray | None]:
        self._fingerprint("gather", shards)
        out = self.backend.gather(shards, root)
        payload = sum(int(np.asarray(s).nbytes) for s in shards)
        self.stats.record("gather", payload)
        return out

    def scatter(self, full: np.ndarray, root: int = 0) -> list[np.ndarray]:
        self._fingerprint("scatter", [full] * self.world_size)
        out = self.backend.scatter(full, self.world_size, root)
        self.stats.record("scatter", int(np.asarray(full).nbytes))
        return out

    def barrier(self) -> None:
        """Synchronization point; a real rendezvous under the mp backend.

        With the collective-ordering checker installed the per-rank
        fingerprint sequences are cross-checked and divergence reported as
        the deadlock it would be; under a process-parallel backend the
        ranks additionally rendezvous through a digest-carrying
        :meth:`~repro.comm.backend.CommBackend.step_sync` barrier.
        """
        ck = self._check
        if ck is not None and ck.collectives is not None:
            ck.collectives.cross_check(self._check_gid)
        if self.backend.all_local:
            rec = get_static_recorder()
            if rec is not None:
                rec.on_barrier()
        else:
            self.backend.step_sync()
        self.stats.record("barrier", 0)
