"""Alpha-beta cost models for collectives.

The performance simulator charges time for each collective using standard
ring-algorithm models: a ring step count of ``p - 1`` with per-step latency
``alpha`` and a bandwidth term proportional to ``(p-1)/p`` of the payload.
These are the same first-order models the paper's Sec. 6.1 reasoning relies
on (broadcast and allgather cost the same when data starts on GPU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.devices import LinkSpec


def ring_allgather_time(
    payload_bytes: float, world: int, link: LinkSpec
) -> float:
    """Time for each rank to end with the full ``payload_bytes`` buffer."""
    if world <= 1:
        return 0.0
    steps = world - 1
    per_step = payload_bytes / world
    return steps * (link.latency_s + per_step / link.bandwidth)


def ring_reduce_scatter_time(
    payload_bytes: float, world: int, link: LinkSpec
) -> float:
    """Time to reduce a ``payload_bytes`` buffer, scattering shards."""
    return ring_allgather_time(payload_bytes, world, link)


def ring_allreduce_time(payload_bytes: float, world: int, link: LinkSpec) -> float:
    """Reduce-scatter followed by allgather."""
    return 2.0 * ring_allgather_time(payload_bytes, world, link)


def broadcast_time(payload_bytes: float, world: int, link: LinkSpec) -> float:
    """Pipelined ring broadcast: same wire time as allgather (Sec. 6.1)."""
    return ring_allgather_time(payload_bytes, world, link)


@dataclass(frozen=True)
class HierarchicalCostModel:
    """Two-level collectives over a node-structured cluster.

    A hierarchical allgather runs in two phases — an inter-node ring among
    per-node leaders, then an intra-node ring over NVLink.  Its bandwidth
    term matches the flat ring's (rings are bandwidth-optimal), but its
    latency is ``O(nodes + gpus_per_node)`` alpha terms instead of the flat
    ring's ``O(nodes * gpus_per_node)`` — decisive for the many small
    per-layer allgathers a ZeRO-3 step issues, where the flat ring is
    latency-bound at hundreds of GPUs.
    """

    intra: LinkSpec
    inter: LinkSpec
    gpus_per_node: int
    nodes: int

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0 or self.nodes <= 0:
            raise ValueError("gpus_per_node and nodes must be positive")

    @property
    def world(self) -> int:
        return self.gpus_per_node * self.nodes

    def flat_allgather(self, payload_bytes: float) -> float:
        """Single ring across all GPUs, paced by the slowest link."""
        slowest = min(self.intra.bandwidth, self.inter.bandwidth)
        link = LinkSpec("flat", slowest, max(self.intra.latency_s, self.inter.latency_s))
        return ring_allgather_time(payload_bytes, self.world, link)

    def allgather(self, payload_bytes: float) -> float:
        """Two-phase hierarchical allgather of a ``payload_bytes`` result.

        Phase 1: node leaders ring-allgather the per-node fraction over the
        fabric.  Phase 2: each node internally allgathers the full payload
        over NVLink.  Single-node degenerates to the intra ring.
        """
        if self.nodes == 1:
            return ring_allgather_time(payload_bytes, self.gpus_per_node, self.intra)
        inter = ring_allgather_time(payload_bytes, self.nodes, self.inter)
        intra = ring_allgather_time(payload_bytes, self.gpus_per_node, self.intra)
        return inter + intra

    def reduce_scatter(self, payload_bytes: float) -> float:
        """Mirror image of :meth:`allgather` (intra first, then inter)."""
        return self.allgather(payload_bytes)

    def allreduce(self, payload_bytes: float) -> float:
        return 2.0 * self.allgather(payload_bytes)


@dataclass(frozen=True)
class CollectiveCostModel:
    """Cost model bound to a link and world size."""

    link: LinkSpec
    world: int

    def allgather(self, payload_bytes: float) -> float:
        return ring_allgather_time(payload_bytes, self.world, self.link)

    def reduce_scatter(self, payload_bytes: float) -> float:
        return ring_reduce_scatter_time(payload_bytes, self.world, self.link)

    def allreduce(self, payload_bytes: float) -> float:
        return ring_allreduce_time(payload_bytes, self.world, self.link)

    def broadcast(self, payload_bytes: float) -> float:
        return broadcast_time(payload_bytes, self.world, self.link)
