"""Performance simulator for training-step timing on modeled hardware.

A stream-based discrete-event engine (:mod:`repro.sim.events`) executes task
graphs where each task occupies one stream (compute, GPU-GPU collective,
CPU<->GPU copy, NVMe I/O, CPU compute) for a modeled duration; dependencies
express the dataflow, streams serialize like CUDA streams, and overlap falls
out of the graph structure.  :mod:`repro.sim.step_model` builds the graph for
one ZeRO-Infinity (or baseline) training step and reports step time and
achieved TFLOPs/GPU — the quantity Figs. 5-6 plot.
"""

from repro.sim.events import Task, TaskGraph, SimulationResult
from repro.sim.step_model import (
    SimPolicy,
    SimWorkload,
    StepBreakdown,
    StepSimulator,
    policy_for_strategy,
    policy_from_config,
)
from repro.sim.timeline import phase_summary, render_gantt

__all__ = [
    "Task",
    "TaskGraph",
    "SimulationResult",
    "SimPolicy",
    "SimWorkload",
    "StepBreakdown",
    "StepSimulator",
    "policy_for_strategy",
    "policy_from_config",
    "phase_summary",
    "render_gantt",
]
