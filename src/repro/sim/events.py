"""Stream-scheduled task-graph simulator.

The execution model mirrors CUDA streams plus I/O queues:

* a **task** has a duration, runs on exactly one named **stream**, and may
  depend on other tasks;
* a stream executes its tasks one at a time, *in submission order* (FIFO,
  like a CUDA stream) — a task whose dependencies are met still waits for
  earlier tasks on its stream;
* different streams run concurrently, which is where compute/communication
  overlap comes from.

The engine is a list-scheduling discrete-event loop over (ready, stream-free)
events.  Because streams are FIFO, the schedule is deterministic and the
result is the earliest-finish-time schedule for the given stream assignment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable


@dataclass
class Task:
    """One unit of work bound to a stream."""

    name: str
    stream: str
    duration: float
    deps: tuple[int, ...] = ()
    index: int = -1  # assigned by the graph
    start: float = -1.0
    finish: float = -1.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name}: negative duration")


@dataclass
class SimulationResult:
    """Schedule outcome."""

    makespan: float
    tasks: list[Task]
    stream_busy: dict[str, float]

    def busy_fraction(self, stream: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.stream_busy.get(stream, 0.0) / self.makespan

    def total_duration(self, prefix: str = "") -> float:
        """Sum of task durations whose name starts with ``prefix``."""
        return sum(t.duration for t in self.tasks if t.name.startswith(prefix))


class TaskGraph:
    """Builder + scheduler for a stream-bound DAG of tasks."""

    def __init__(self) -> None:
        self.tasks: list[Task] = []

    def add(
        self,
        name: str,
        stream: str,
        duration: float,
        deps: Iterable["Task | int"] = (),
    ) -> Task:
        """Add a task; ``deps`` accepts Task objects or indices."""
        dep_idx = []
        for d in deps:
            idx = d.index if isinstance(d, Task) else int(d)
            if not 0 <= idx < len(self.tasks):
                raise ValueError(f"dependency {idx} does not exist yet")
            dep_idx.append(idx)
        t = Task(name, stream, float(duration), tuple(dep_idx), index=len(self.tasks))
        self.tasks.append(t)
        return t

    def run(self) -> SimulationResult:
        """Schedule all tasks; returns finish times and the makespan.

        Raises on dependency cycles (impossible by construction because
        dependencies must already exist, but validated anyway).
        """
        n = len(self.tasks)
        if n == 0:
            return SimulationResult(0.0, [], {})
        # per-stream FIFO order = submission order
        stream_queues: dict[str, list[int]] = {}
        for t in self.tasks:
            stream_queues.setdefault(t.stream, []).append(t.index)
        stream_pos = {s: 0 for s in stream_queues}
        stream_free_at = {s: 0.0 for s in stream_queues}
        dep_finish = [0.0] * n
        remaining_deps = [len(t.deps) for t in self.tasks]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for t in self.tasks:
            for d in t.deps:
                dependents[d].append(t.index)
        done = [False] * n
        ready = [remaining_deps[i] == 0 for i in range(n)]
        completed = 0
        time = 0.0

        # event loop: at each step, start every stream-head task that is
        # ready, then advance time to the next finish.
        running: list[tuple[float, int]] = []  # (finish_time, task)
        while completed < n:
            progressed = True
            while progressed:
                progressed = False
                for s, queue in stream_queues.items():
                    pos = stream_pos[s]
                    if pos >= len(queue):
                        continue
                    idx = queue[pos]
                    if not ready[idx] or done[idx]:
                        continue
                    t = self.tasks[idx]
                    t.start = max(stream_free_at[s], dep_finish[idx])
                    t.finish = t.start + t.duration
                    stream_free_at[s] = t.finish
                    stream_pos[s] = pos + 1
                    heapq.heappush(running, (t.finish, idx))
                    progressed = True
            if not running:
                stuck = [t.name for t in self.tasks if not done[t.index]]
                raise RuntimeError(
                    f"deadlock: tasks cannot start (cyclic or blocked): {stuck[:5]}"
                )
            finish, idx = heapq.heappop(running)
            time = finish
            if done[idx]:
                continue
            done[idx] = True
            completed += 1
            for dep in dependents[idx]:
                remaining_deps[dep] -= 1
                dep_finish[dep] = max(dep_finish[dep], finish)
                if remaining_deps[dep] == 0:
                    ready[dep] = True
        makespan = max(t.finish for t in self.tasks)
        busy: dict[str, float] = {}
        for t in self.tasks:
            busy[t.stream] = busy.get(t.stream, 0.0) + t.duration
        return SimulationResult(makespan, list(self.tasks), busy)
