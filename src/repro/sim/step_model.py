"""Modeled training step for ZeRO-Infinity and baselines.

Builds a :class:`~repro.sim.events.TaskGraph` for one optimizer step —
``grad_accumulation_steps`` forward+backward microbatch passes followed by
the (possibly NVMe-streamed) optimizer update — and reports achieved
TFLOPs/GPU, the metric of Figs. 5 and 6.

Streams model the hardware paths of Sec. 6.2:

* ``compute`` — the GPU SMs;
* ``gg``      — GPU-GPU collectives (allgather / reduce-scatter);
* ``cg``      — PCIe copies between CPU and GPU;
* ``nc``      — NVMe <-> CPU I/O;
* ``cpu``     — host cores (CPU Adam of the offloaded optimizer step).

The simulator models one representative GPU of an SPMD job.  With the
overlap-centric design on, fetch legs for layer ``i+1`` queue behind layer
``i``'s on their own streams and overlap compute (the prefetcher's
nc/cg/gg pipelining); with it off, every transfer serializes against
compute — the Fig. 6d ablation.

Per-GPU bandwidths follow the bandwidth-centric analysis of Sec. 6.1: with
partitioned parameters and allgather retrieval every GPU pulls its ``1/dp``
shard over its own links (3.0 / 1.6 GB/s per GPU to CPU / NVMe on a DGX-2);
with the broadcast layout a single PCIe link serves the whole node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analytics.bandwidth_model import DEFAULT_PEAK_TP
from repro.core.config import OffloadDevice, Strategy
from repro.hardware.topology import ClusterTopology
from repro.sim.events import SimulationResult, TaskGraph
from repro.utils.units import TFLOP


@dataclass(frozen=True)
class SimWorkload:
    """The model + batch configuration being trained."""

    params: int
    num_layers: int
    hidden_dim: int
    attn_heads: int
    batch_per_gpu: float
    seq: int = 1024
    ci: int = 1
    mp_degree: int = 1
    grad_accumulation_steps: int = 1

    def __post_init__(self) -> None:
        if self.params <= 0 or self.num_layers <= 0:
            raise ValueError("params and num_layers must be positive")
        if self.batch_per_gpu <= 0:
            raise ValueError("batch_per_gpu must be positive")
        if self.grad_accumulation_steps < 1:
            raise ValueError("grad_accumulation_steps must be >= 1")

    @staticmethod
    def from_config(cfg, *, grad_accumulation_steps: int = 1) -> "SimWorkload":
        """Build from an :class:`~repro.analytics.model_zoo.ExperimentConfig`."""
        return SimWorkload(
            params=cfg.params,
            num_layers=cfg.num_layers,
            hidden_dim=cfg.hidden_dim,
            attn_heads=cfg.attn_heads,
            batch_per_gpu=cfg.batch_per_gpu,
            seq=cfg.seq,
            mp_degree=cfg.mp_degree,
            grad_accumulation_steps=grad_accumulation_steps,
        )


@dataclass(frozen=True)
class SimPolicy:
    """Which ZeRO-Infinity features are active (the ablation knobs)."""

    name: str = "zero-infinity"
    param_device: OffloadDevice = OffloadDevice.NONE
    grad_device: OffloadDevice = OffloadDevice.NONE
    optimizer_device: OffloadDevice = OffloadDevice.NONE
    partition_params: bool = True  # ZeRO-3 sharding (vs replicated)
    bandwidth_centric: bool = True  # allgather retrieval vs owner broadcast
    overlap: bool = True  # overlap-centric design + prefetching
    act_offload: bool = False  # CPU offload of activation checkpoints
    grad_reduce: str = "reduce_scatter"  # or "allreduce" (classic DP)
    cpu_adam_flops: float = 1.0e12  # aggregate host FLOP/s per node


def policy_for_strategy(strategy: Strategy) -> SimPolicy:
    """Default simulator policy per Table 2 strategy."""
    if strategy is Strategy.DATA_PARALLEL:
        return SimPolicy(
            name=str(strategy), partition_params=False, grad_reduce="allreduce"
        )
    if strategy is Strategy.ZERO_2:
        return SimPolicy(name=str(strategy), partition_params=False)
    if strategy is Strategy.ZERO_OFFLOAD:
        return SimPolicy(
            name=str(strategy),
            partition_params=False,
            bandwidth_centric=False,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
            overlap=False,
        )
    if strategy is Strategy.ZERO_3:
        return SimPolicy(name=str(strategy))
    if strategy is Strategy.ZERO_INF_CPU:
        return SimPolicy(
            name=str(strategy),
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
        )
    if strategy is Strategy.ZERO_INF_NVME:
        return SimPolicy(
            name=str(strategy),
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        )
    raise ValueError(f"no simulator policy for {strategy}")


def policy_from_config(cfg) -> SimPolicy:
    """Simulator policy honouring an ExperimentConfig's device placements."""
    return SimPolicy(
        name=cfg.name,
        param_device=cfg.param_device,
        grad_device=cfg.param_device,
        optimizer_device=cfg.optimizer_device,
        partition_params=True,
        bandwidth_centric=True,
        overlap=True,
    )


@dataclass
class StepBreakdown:
    """Achieved performance + where the time went."""

    total_time: float
    compute_time: float
    gg_time: float
    cg_time: float
    nc_time: float
    cpu_time: float
    optimizer_time: float
    tflops_per_gpu: float
    useful_flops_per_gpu: float
    result: Optional[SimulationResult] = field(default=None, repr=False)


class StepSimulator:
    """One training step of ``workload`` under ``policy`` on ``cluster``."""

    def __init__(
        self,
        cluster: ClusterTopology,
        workload: SimWorkload,
        policy: SimPolicy,
        *,
        peak_tp: float = DEFAULT_PEAK_TP,
    ) -> None:
        if cluster.num_gpus % workload.mp_degree:
            raise ValueError("mp degree must divide the GPU count")
        self.cluster = cluster
        self.workload = workload
        self.policy = policy
        self.peak_tp = peak_tp

    # --- derived rates ----------------------------------------------------------
    @property
    def dp(self) -> int:
        return self.cluster.num_gpus // self.workload.mp_degree

    def _gg_bw(self) -> float:
        return self.cluster.gpu_to_gpu_bw()

    def _slow_bw_per_gpu(self, *, nvme: bool) -> float:
        """Per-GPU bandwidth to slow memory under the configured layout.

        Bandwidth-centric layout: every GPU pulls its shard over its own
        link in parallel (3.0 / 1.6 GB/s per GPU on a full DGX-2).  Owner
        layout: see :meth:`_owner_transfer_time` — transfers serialize on a
        single link, so the per-shard rate view does not apply.
        """
        node = self.cluster.node
        if self.policy.bandwidth_centric:
            return node.gpu_to_slow_memory_bw(nvme=nvme, parallel=True)
        return node.gpu_to_slow_memory_bw(nvme=nvme, parallel=False)

    def _slow_transfer_time(self, shard_bytes: float, full_bytes: float, *, nvme: bool) -> float:
        """Time to move one layer's data to/from slow memory.

        Bandwidth-centric: each GPU moves its ``shard_bytes`` concurrently.
        Owner layout (Sec. 6.1): "only a single PCIe can be active ... while
        all the PCIe links connected to all the other GPUs are idle" — the
        full tensor crosses one 12 GB/s link while everyone waits.
        """
        bw = self._slow_bw_per_gpu(nvme=nvme)
        if self.policy.bandwidth_centric:
            return shard_bytes / bw
        return full_bytes / bw

    # --- per-layer quantities ----------------------------------------------------
    def _layer_param_bytes(self) -> float:
        """fp16 parameter bytes of one layer's per-GPU (mp) slice."""
        return 2.0 * self.workload.params / self.workload.num_layers / self.workload.mp_degree

    def _layer_fwd_flops(self) -> float:
        w = self.workload
        return 2.0 * w.batch_per_gpu * w.seq * w.params / w.num_layers / w.mp_degree

    def _ckpt_bytes_per_layer(self) -> float:
        w = self.workload
        return 2.0 * w.batch_per_gpu * w.seq * w.hidden_dim

    # --- graph construction -----------------------------------------------------
    def _add_param_fetch(self, g: TaskGraph, tag: str, prev_compute):
        """nc -> cg -> gg fetch chain for one layer; returns the gate task."""
        p = self.policy
        dp = self.dp
        layer_bytes = self._layer_param_bytes()
        shard = layer_bytes / dp if p.partition_params else layer_bytes
        serial_dep = [prev_compute] if (not p.overlap and prev_compute) else []
        gate = None
        if p.param_device is OffloadDevice.NVME:
            nc = g.add(
                f"nc-fetch:{tag}",
                "nc",
                self._slow_transfer_time(shard, layer_bytes, nvme=True),
                serial_dep,
            )
            cg = g.add(
                f"cg-fetch:{tag}",
                "cg",
                self._slow_transfer_time(shard, layer_bytes, nvme=False),
                [nc],
            )
            gate = cg
        elif p.param_device is OffloadDevice.CPU:
            cg = g.add(
                f"cg-fetch:{tag}",
                "cg",
                self._slow_transfer_time(shard, layer_bytes, nvme=False),
                serial_dep,
            )
            gate = cg
        if p.partition_params and dp > 1:
            gg = g.add(
                f"gg-allgather:{tag}",
                "gg",
                (dp - 1) / dp * layer_bytes / self._gg_bw(),
                [gate] if gate is not None else serial_dep,
            )
            gate = gg
        return gate

    def _add_grad_store(self, g: TaskGraph, tag: str, bwd_compute):
        """reduce-scatter + offload write chain after a layer's backward."""
        p = self.policy
        dp = self.dp
        layer_bytes = self._layer_param_bytes()
        shard = layer_bytes / dp
        deps = [bwd_compute]
        gate = bwd_compute
        if dp > 1:
            factor = 2.0 if p.grad_reduce == "allreduce" else 1.0
            # gradient reduction rides its own stream ("rs"): queueing it on
            # the allgather stream would head-of-line block the prefetch of
            # earlier layers' parameters behind this layer's reduction
            rs = g.add(
                f"rs-{p.grad_reduce}:{tag}",
                "rs",
                factor * (dp - 1) / dp * layer_bytes / self._gg_bw(),
                deps,
            )
            gate = rs
        vol = layer_bytes if p.grad_reduce == "allreduce" else shard
        if p.grad_device is OffloadDevice.CPU:
            gate = g.add(
                f"cg-grad:{tag}",
                "cg",
                self._slow_transfer_time(vol, layer_bytes, nvme=False),
                [gate],
            )
        elif p.grad_device is OffloadDevice.NVME:
            cg = g.add(
                f"cg-grad:{tag}",
                "cg",
                self._slow_transfer_time(vol, layer_bytes, nvme=False),
                [gate],
            )
            gate = g.add(
                f"nc-grad:{tag}",
                "nc",
                self._slow_transfer_time(vol, layer_bytes, nvme=True),
                [cg],
            )
        return gate

    def _add_act_offload(self, g: TaskGraph, tag: str, dep, *, store: bool):
        """Checkpoint write (fwd) or read (bwd) over PCIe."""
        if not self.policy.act_offload:
            return None
        t = self._ckpt_bytes_per_layer() / self._slow_bw_per_gpu(nvme=False)
        kind = "store" if store else "load"
        deps = [dep] if dep is not None else []
        if not self.policy.overlap and dep is not None:
            return g.add(f"cg-act-{kind}:{tag}", "cg", t, deps)
        return g.add(f"cg-act-{kind}:{tag}", "cg", t, deps)

    def build_graph(self) -> TaskGraph:
        g = TaskGraph()
        w = self.workload
        p = self.policy
        nl = w.num_layers
        fwd_flops = self._layer_fwd_flops()
        compute_fwd = fwd_flops / self.peak_tp
        compute_bwd = 2.0 * fwd_flops / self.peak_tp
        compute_recompute = fwd_flops / self.peak_tp if w.ci else 0.0

        for micro in range(w.grad_accumulation_steps):
            last_compute = None
            fwd_tasks = []
            # ---- forward ----
            for layer in range(nl):
                tag = f"m{micro}.f{layer}"
                gate = self._add_param_fetch(g, tag, last_compute)
                deps = [t for t in (gate, last_compute) if t is not None]
                c = g.add(f"compute-fwd:{tag}", "compute", compute_fwd, deps)
                act = self._add_act_offload(g, tag, c, store=True)
                if not p.overlap and act is not None:
                    c = act  # serialize the checkpoint store
                last_compute = c
                fwd_tasks.append(c)
            # ---- backward (reverse layer order) ----
            for layer in reversed(range(nl)):
                tag = f"m{micro}.b{layer}"
                act = self._add_act_offload(g, tag, last_compute, store=False)
                gate = self._add_param_fetch(g, tag, last_compute)
                deps = [t for t in (gate, act, last_compute) if t is not None]
                c = g.add(
                    f"compute-bwd:{tag}",
                    "compute",
                    compute_bwd + compute_recompute,
                    deps,
                )
                grad_gate = self._add_grad_store(g, tag, c)
                last_compute = c if p.overlap else (grad_gate or c)
            # gradients of the last layers must land before the optimizer
            self._final_grad_gate = last_compute

        # ---- optimizer step ----
        self._add_optimizer(g, self._final_grad_gate)
        return g

    def _add_optimizer(self, g: TaskGraph, dep) -> None:
        w = self.workload
        p = self.policy
        n_gpus = self.cluster.num_gpus
        # this GPU's share of optimizer state (read + write, 16 B each way)
        share = w.params / (n_gpus if (self.policy.partition_params or p.optimizer_device is not OffloadDevice.NONE) else 1)
        state_rw = 2.0 * 16.0 * share
        param_rw = 2.0 * 2.0 * share  # fp16 shard read + write-back
        cpu_flops_per_gpu = (
            p.cpu_adam_flops / self.cluster.node.gpus_per_node
        )
        adam_flops = 20.0 * share  # ~20 FLOPs per element for Adam
        deps = [dep] if dep is not None else []
        if p.optimizer_device is OffloadDevice.NVME:
            nc_t = (state_rw + param_rw) / self._slow_bw_per_gpu(nvme=True)
            cpu_t = adam_flops / cpu_flops_per_gpu
            if p.overlap:
                # chunked streaming: reads, compute and writes pipeline
                # (Sec. 5.2.2); the longer of I/O and compute bounds it
                # because the two run on independent streams.
                g.add("opt-nc-stream", "nc", nc_t, deps)
                g.add("opt-cpu-adam", "cpu", cpu_t, deps)
            else:
                t1 = g.add("opt-nc-read", "nc", nc_t / 2.0, deps)
                t2 = g.add("opt-cpu-adam", "cpu", cpu_t, [t1])
                g.add("opt-nc-write", "nc", nc_t / 2.0, [t2])
        elif p.optimizer_device is OffloadDevice.CPU:
            cpu_t = adam_flops / cpu_flops_per_gpu
            g.add("opt-cpu-adam", "cpu", cpu_t, deps)
            if p.param_device is OffloadDevice.NONE:
                # updated fp16 params return to GPU over PCIe
                g.add(
                    "opt-cg-writeback",
                    "cg",
                    (2.0 * share) / self._slow_bw_per_gpu(nvme=False),
                    deps,
                )
        else:
            # GPU-resident optimizer: bound by HBM bandwidth
            hbm = self.cluster.node.gpu.memory.read_bw
            g.add("opt-gpu-adam", "compute", (state_rw + param_rw) / hbm, deps)

    # --- memory model ---------------------------------------------------------
    def peak_param_bytes_per_gpu(self, *, prefetch_depth: int = 2) -> float:
        """Modeled peak GPU bytes held by parameters during the step.

        Replicated layouts hold the whole model; partitioned layouts hold
        this GPU's shards plus the gathered working set — the layer in
        flight and up to ``prefetch_depth`` prefetched layers.  This is the
        quantity the Fig. 6a capacity solve bounds statically; here it
        falls out of the execution model.
        """
        w = self.workload
        total = 2.0 * w.params / w.mp_degree  # fp16
        layer = total / w.num_layers
        if not self.policy.partition_params:
            return total
        shards = (
            0.0
            if self.policy.param_device is not OffloadDevice.NONE
            else total / self.dp
        )
        working = layer * (1 + max(prefetch_depth, 0))
        return shards + min(working, total)

    # --- run ---------------------------------------------------------------------
    def simulate(self) -> StepBreakdown:
        g = self.build_graph()
        result = g.run()
        w = self.workload
        useful = (
            6.0
            * w.batch_per_gpu
            * w.seq
            * w.params
            / w.mp_degree
            * w.grad_accumulation_steps
        )
        opt_time = sum(t.duration for t in result.tasks if t.name.startswith("opt"))
        return StepBreakdown(
            total_time=result.makespan,
            compute_time=result.stream_busy.get("compute", 0.0),
            gg_time=result.stream_busy.get("gg", 0.0)
            + result.stream_busy.get("rs", 0.0),
            cg_time=result.stream_busy.get("cg", 0.0),
            nc_time=result.stream_busy.get("nc", 0.0),
            cpu_time=result.stream_busy.get("cpu", 0.0),
            optimizer_time=opt_time,
            tflops_per_gpu=useful / result.makespan / TFLOP,
            useful_flops_per_gpu=useful,
            result=result,
        )
