"""ASCII Gantt rendering of simulated step timelines.

Turns a :class:`~repro.sim.events.SimulationResult` into a per-stream
occupancy chart so the overlap structure (or its absence) is visible at a
glance — the textual analogue of a profiler trace:

    compute |####==####==####____________|
    gg      |==__==__==__________________|
    nc      |######______________________|

Each column is a time slice; a filled cell means the stream was busy.
Distinct task-name prefixes rotate through marker characters so phases can
be told apart.
"""

from __future__ import annotations

from repro.sim.events import SimulationResult

_MARKERS = "#=%@+*o~"


def _prefix(name: str) -> str:
    return name.split(":", 1)[0]


def render_gantt(
    result: SimulationResult,
    *,
    width: int = 72,
    label_width: int = 8,
) -> str:
    """Render per-stream occupancy over the makespan."""
    if not result.tasks or result.makespan <= 0:
        return "(empty timeline)"
    streams: dict[str, list] = {}
    for t in result.tasks:
        streams.setdefault(t.stream, []).append(t)
    prefixes = sorted({_prefix(t.name) for t in result.tasks})
    marker_of = {p: _MARKERS[i % len(_MARKERS)] for i, p in enumerate(prefixes)}

    scale = width / result.makespan
    lines = []
    for stream in sorted(streams):
        row = [" "] * width
        for t in streams[stream]:
            lo = int(t.start * scale)
            hi = max(int(t.finish * scale), lo + 1)
            for c in range(lo, min(hi, width)):
                row[c] = marker_of[_prefix(t.name)]
        busy = result.busy_fraction(stream)
        lines.append(
            f"{stream.ljust(label_width)}|{''.join(row)}| {busy:4.0%}"
        )
    legend = "  ".join(f"{m}={p}" for p, m in marker_of.items())
    lines.append(f"{'':{label_width}} t=0 .. {result.makespan:.3g}s   {legend}")
    return "\n".join(lines)


def phase_summary(result: SimulationResult) -> dict[str, float]:
    """Total task time per name prefix (compute-fwd, nc-fetch, ...)."""
    out: dict[str, float] = {}
    for t in result.tasks:
        p = _prefix(t.name)
        out[p] = out.get(p, 0.0) + t.duration
    return out
