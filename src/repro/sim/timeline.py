"""ASCII Gantt rendering of simulated step timelines.

Turns a :class:`~repro.sim.events.SimulationResult` into a per-stream
occupancy chart so the overlap structure (or its absence) is visible at a
glance — the textual analogue of a profiler trace:

    compute |####==####==####____________|
    gg      |==__==__==__________________|
    nc      |######______________________|

Each column is a time slice; a filled cell means the stream was busy.
Distinct task-name prefixes rotate through marker characters so phases can
be told apart; the legend footer names every marker and the makespan line
states the time scale, so the chart is self-describing.
"""

from __future__ import annotations

from repro.sim.events import SimulationResult

_MARKERS = "#=%@+*o~"


def _prefix(name: str) -> str:
    return name.split(":", 1)[0]


def render_gantt(
    result: SimulationResult,
    *,
    width: int = 72,
    label_width: int = 8,
) -> str:
    """Render per-stream occupancy over the makespan."""
    if not result.tasks or result.makespan <= 0:
        return "(empty timeline)"
    streams: dict[str, list] = {}
    for t in result.tasks:
        streams.setdefault(t.stream, []).append(t)
    prefixes = sorted({_prefix(t.name) for t in result.tasks})
    marker_of = {p: _MARKERS[i % len(_MARKERS)] for i, p in enumerate(prefixes)}

    scale = width / result.makespan
    lines = []
    for stream in sorted(streams):
        row = [" "] * width
        for t in streams[stream]:
            lo = int(t.start * scale)
            hi = max(int(t.finish * scale), lo + 1)
            for c in range(lo, min(hi, width)):
                row[c] = marker_of[_prefix(t.name)]
        busy = result.busy_fraction(stream)
        lines.append(
            f"{stream.ljust(label_width)}|{''.join(row)}| {busy:4.0%}"
        )
    pad = " " * label_width
    legend = "  ".join(f"{m}={p}" for p, m in marker_of.items())
    lines.append(f"{pad} legend: {legend}  (right column = stream busy %)")
    lines.append(
        f"{pad} makespan {result.makespan:.4g}s"
        f"  t=0 .. {result.makespan:.3g}s over {width} cols"
        f" ({result.makespan / width:.3g}s/col)"
    )
    return "\n".join(lines)


def phase_summary(result: SimulationResult) -> dict[str, float]:
    """Total task time per name prefix (compute-fwd, nc-fetch, ...)."""
    out: dict[str, float] = {}
    for t in result.tasks:
        p = _prefix(t.name)
        out[p] = out.get(p, 0.0) + t.duration
    return out
