"""Checker-pass selection (``ZeroConfig.check`` / ``--check`` / REPRO_CHECK).

Kept free of heavyweight imports so ``repro.core.config`` can embed a
:class:`CheckConfig` without pulling the checker machinery into every
config construction.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

#: The four cooperating passes, in documentation order.
PASS_NAMES: tuple[str, ...] = ("zerosan", "collectives", "races", "lint")


@dataclass(frozen=True)
class CheckConfig:
    """Which checker passes run, and what a violation does.

    All passes default to off — the disabled configuration must cost
    nothing on the hot path (see ``benchmarks/bench_check_overhead.py``).
    """

    zerosan: bool = False  # parameter-lifecycle state machine
    collectives: bool = False  # per-rank collective fingerprinting
    races: bool = False  # aio / pinned-buffer happens-before
    lint: bool = False  # AST lint (static; engines ignore it)
    #: "raise" surfaces violations at the point of cause; "record" collects
    #: them on the context for a post-run report (the CLI default).
    mode: str = "raise"

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "record"):
            raise ValueError("check mode must be 'raise' or 'record'")

    @property
    def enabled_passes(self) -> tuple[str, ...]:
        return tuple(name for name in PASS_NAMES if getattr(self, name))

    @property
    def any_runtime(self) -> bool:
        """Whether any *runtime* pass is on (lint is purely static)."""
        return self.zerosan or self.collectives or self.races

    @classmethod
    def from_spec(cls, spec: str, *, mode: str = "raise") -> "CheckConfig":
        """Parse ``"all"`` / ``"none"`` / a comma list of pass names."""
        text = (spec or "").strip().lower()
        if text in ("", "0", "none", "off"):
            return cls(mode=mode)
        if text in ("all", "1", "on"):
            return cls(
                zerosan=True, collectives=True, races=True, lint=True, mode=mode
            )
        cfg = cls(mode=mode)
        for token in text.split(","):
            name = token.strip()
            if not name:
                continue
            if name not in PASS_NAMES:
                raise ValueError(
                    f"unknown check pass {name!r}; expected 'all' or a comma"
                    f" list of {', '.join(PASS_NAMES)}"
                )
            cfg = replace(cfg, **{name: True})
        return cfg

    def spec(self) -> str:
        """The canonical comma-list spec (inverse of :meth:`from_spec`)."""
        names = self.enabled_passes
        if len(names) == len(PASS_NAMES):
            return "all"
        return ",".join(names) if names else "none"


def _field_names() -> tuple[str, ...]:  # pragma: no cover - introspection aid
    return tuple(f.name for f in fields(CheckConfig))
