"""Structured violation taxonomy for the checking subsystem.

Every checker pass reports problems as :class:`CheckViolation` — an
exception carrying a machine-readable ``kind`` plus arbitrary context, so a
violation can be raised at the point of cause (the default), recorded for a
post-run report, asserted on in tests, and exported through the telemetry
layer as a counter and trace event.

The kinds (see ``docs/checking.md`` for the full taxonomy):

ZeroSan (parameter lifecycle)
    ``use-after-release``        compute touched a released parameter
    ``double-gather``            a parameter gathered while already resident
    ``release-without-gather``   release of a never-gathered parameter
    ``gather-leak``              parameter still AVAILABLE at a step boundary
    ``stuck-gather``             parameter left mid-gather at a step boundary
    ``shared-view-write``        write into a buffer shared by a collective
    ``writable-shared-view``     a collective returned a writable view

Collective ordering
    ``collective-shape-mismatch``  ranks disagree on payload within one call
    ``collective-divergence``      ranks issued different collective sequences

Aio happens-before races
    ``aio-double-submit``            two in-flight I/Os into one buffer
    ``aio-race``                     read/write overlap without a wait between
    ``buffer-release-while-inflight``  pinned buffer freed under pending I/O
"""

from __future__ import annotations

from typing import Any

#: Every kind a checker pass may report, for validation and docs.
VIOLATION_KINDS: tuple[str, ...] = (
    # ZeroSan
    "use-after-release",
    "double-gather",
    "release-without-gather",
    "gather-leak",
    "stuck-gather",
    "shared-view-write",
    "writable-shared-view",
    # collective ordering
    "collective-shape-mismatch",
    "collective-divergence",
    # aio happens-before
    "aio-double-submit",
    "aio-race",
    "buffer-release-while-inflight",
)


class CheckViolation(AssertionError):
    """A structured correctness violation found by a checker pass.

    Subclasses :class:`AssertionError` so sanitized test runs fail loudly,
    while ``kind`` / ``details`` stay machine-readable for corpus tests and
    the post-run report.
    """

    def __init__(self, kind: str, message: str, **details: Any) -> None:
        if kind not in VIOLATION_KINDS:
            raise ValueError(f"unknown violation kind {kind!r}")
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message
        self.details = details

    def __reduce__(self):  # pragma: no cover - pickling across workers
        return (self.__class__, (self.kind, self.message))
