"""Checker runtime: the process-global context and its no-op fast path.

Mirrors the global-tracer pattern of ``repro.obs.tracer``: instrumented
code calls :func:`get_checker` (a module-global read) and does nothing when
it returns ``None``, so the disabled configuration costs one attribute load
plus an ``is None`` test per event site — the <2% budget that
``benchmarks/bench_check_overhead.py`` enforces.

Enablement routes, all independent:

* ``ZeroConfig(check=CheckConfig(zerosan=True, ...))`` — the engine builds
  a private :class:`CheckContext` and threads it through its subsystems;
* ``REPRO_CHECK=all`` (or a comma list of passes) in the environment —
  installs a global context at import time, so an unmodified tier-1 run
  becomes a sanitized run (``REPRO_CHECK_MODE=record`` to collect instead
  of raise);
* :func:`use_checker` — scoped installation for tests and the bug corpus.

Violations flow through :meth:`CheckContext.report`: each one increments a
``check.violations.<kind>`` counter and emits a ``check:violation`` trace
instant through ``repro.obs`` before raising (mode ``"raise"``) or being
recorded on the context (mode ``"record"``).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterable, Optional, Union

from repro.check.collectives import CollectiveOrderChecker
from repro.check.config import CheckConfig
from repro.check.races import AioRaceDetector
from repro.check.violations import CheckViolation
from repro.check.zerosan import ZeroSan
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace_instant


class CheckContext:
    """One configured set of runtime checker passes.

    Disabled passes are ``None`` attributes, so instrumentation gates are
    ``ctx.zerosan is not None``-shaped and a context never pays for passes
    it did not enable.
    """

    def __init__(self, config: CheckConfig) -> None:
        self.config = config
        self.zerosan: Optional[ZeroSan] = ZeroSan(self) if config.zerosan else None
        self.collectives: Optional[CollectiveOrderChecker] = (
            CollectiveOrderChecker(self) if config.collectives else None
        )
        self.races: Optional[AioRaceDetector] = (
            AioRaceDetector(self) if config.races else None
        )
        self.violations: list[CheckViolation] = []
        self._lock = threading.Lock()
        self._force_record = False

    # --- violation funnel -------------------------------------------------------
    def report(self, kind: str, message: str, **details) -> CheckViolation:
        violation = CheckViolation(kind, message, **details)
        get_registry().counter(f"check.violations.{kind}").inc()
        trace_instant("check:violation", cat="check", kind=kind)
        if self.config.mode == "raise" and not self._force_record:
            raise violation
        with self._lock:
            self.violations.append(violation)
        return violation

    def violation_counts(self) -> dict[str, int]:
        """Recorded violations by kind (mode ``"record"``)."""
        counts: dict[str, int] = {}
        with self._lock:
            for v in self.violations:
                counts[v.kind] = counts.get(v.kind, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line post-run report for the CLI."""
        passes = ", ".join(self.config.enabled_passes) or "none"
        counts = self.violation_counts()
        if not counts:
            return f"checks [{passes}]: no violations"
        detail = ", ".join(f"{k} x{n}" for k, n in sorted(counts.items()))
        return f"checks [{passes}]: {sum(counts.values())} violation(s) — {detail}"

    # --- composite events --------------------------------------------------------
    def on_step_boundary(self, param_ids: Optional[Iterable[int]] = None) -> None:
        """Engine step boundary: lifecycle leak sweep + sequence cross-check."""
        if self.zerosan is not None:
            self.zerosan.on_step_boundary(param_ids)
        if self.collectives is not None:
            self.collectives.cross_check()

    def on_step_abort(self, param_ids: Optional[Iterable[int]] = None) -> None:
        """Exception unwind: sweep with raising suppressed.

        The propagating exception is the root cause; a ``stuck-gather``
        raised from the unwind would mask it.  Violations are recorded
        (even in mode ``"raise"``) and the shadow entries cleared, so the
        next step starts from a consistent slate.  Pending collective
        sequences are discarded rather than cross-checked — an aborted
        step makes no ordering claim.
        """
        if self.zerosan is not None:
            self._force_record = True
            try:
                self.zerosan.on_step_boundary(param_ids)
            finally:
                self._force_record = False
        if self.collectives is not None:
            self.collectives.discard_pending()


# --- process-global context ------------------------------------------------------
_global_checker: Optional[CheckContext] = None


def get_checker() -> Optional[CheckContext]:
    """The installed context, or ``None`` (the disabled fast path)."""
    return _global_checker


def install_checker(ctx: Optional[CheckContext]) -> None:
    global _global_checker
    _global_checker = ctx


def context_from_config(config: CheckConfig) -> Optional[CheckContext]:
    """A fresh context for a config, or ``None`` when no runtime pass is on."""
    return CheckContext(config) if config.any_runtime else None


@contextmanager
def use_checker(config: Union[CheckConfig, CheckContext, str, None] = None):
    """Scoped installation of a checker context (tests, corpus, demos).

    Accepts a :class:`CheckConfig`, an existing context, a spec string
    (``"all"``, ``"zerosan,races"``), or ``None`` for all passes in raise
    mode.  Restores the previous global context on exit.
    """
    if config is None:
        config = CheckConfig.from_spec("all")
    if isinstance(config, str):
        config = CheckConfig.from_spec(config)
    ctx = config if isinstance(config, CheckContext) else CheckContext(config)
    previous = get_checker()
    install_checker(ctx)
    try:
        yield ctx
    finally:
        install_checker(previous)


def _install_from_env() -> None:
    """``REPRO_CHECK=all pytest`` turns any run into a sanitized run."""
    spec = os.environ.get("REPRO_CHECK", "").strip()
    if not spec or spec.lower() in ("0", "none", "off"):
        return
    mode = os.environ.get("REPRO_CHECK_MODE", "raise").strip() or "raise"
    install_checker(context_from_config(CheckConfig.from_spec(spec, mode=mode)))


_install_from_env()
