"""AST lint pass enforcing repo invariants over ``src/``.

The static quarter of the checking subsystem (run via ``tools/lint_repro.py``
or ``tests/test_lint.py``).  Four rules, each guarding an invariant the
runtime passes rely on:

``raw-collectives``
    Collectives must go through :class:`repro.comm.group.ProcessGroup` —
    the layer that accounts bytes and fingerprints sequences for the
    ordering checker.  Importing ``repro.comm.collectives`` (or the
    functional collective names) outside ``repro/comm/`` bypasses both.

``raw-collective-import``
    Inside ``repro/comm/`` itself, only the backend package — the
    functional module ``collectives.py`` and the :class:`CommBackend`
    implementations in ``backend.py`` — may import
    ``repro.comm.collectives``.  Everything else in the package
    (``group.py``, ``mp_backend.py``, helpers) must go through a
    backend so both execution models stay behind one seam; a deliberate
    re-export carries ``# lint: allow-raw-collective-import``.

``wallclock``
    No ``time.time()`` / ``time.time_ns()`` in numerics packages
    (``nn``, ``core``, ``comm``, ``optim``, ``tensor``): wall-clock reads
    make numerics nondeterministic and replay-hostile.  Telemetry uses
    ``perf_counter_ns`` through ``repro.obs``, which is exempt.

``rng``
    No implicit global RNG in numerics packages: ``np.random.<fn>()`` and
    ``random.<fn>()`` draw from hidden mutable state, breaking the
    seeded-``Generator``-passed-explicitly convention (``default_rng``,
    ``Generator`` and ``SeedSequence`` construction stay allowed).

``float64-upcast``
    Hot-path modules (gather/reduce/offload/optimizer) must not silently
    upcast to float64 — ``np.float64`` / ``np.double`` references,
    ``astype(float)`` and ``dtype=float`` double every byte moved and mask
    fp16/fp32 mixed-precision bugs.

``writeable-flip``
    Outside ``repro/comm`` (which owns the shared-buffer protocol) and the
    checker itself, nothing may set ``.flags.writeable = True`` — that is
    the escape hatch that lets callers mutate the base of a read-only
    zero-copy view.

``rawalloc``
    Modules instrumented by the memory scope (gather, bucket, offload,
    NVMe staging, activation checkpointing) must not allocate long-lived
    buffers with raw ``np.empty`` / ``np.zeros`` — an unattributed
    allocation is invisible to :mod:`repro.obs.memscope`, so watermarks
    and attribution silently understate the tier.  Route through
    ``attributed_empty`` / ``attributed_zeros``; transient temps carry a
    same-line ``# lint: allow-rawalloc``.

``swallowed-oserror``
    I/O modules (``repro/nvme/``, the offload engine, checkpoint I/O) must
    not swallow ``OSError``/``IOError`` with an empty handler — a device
    error silently dropped on the offload path is silent training
    corruption.  Handle it (retry, count, degrade — see
    :mod:`repro.faults`) or let it propagate to a recovery tier.

``untraced-wait``
    Modules instrumented by the time profiler (engine, coordinator,
    offload, prefetch, bucket, NVMe aio/store/buffers) must not block in
    a bare ``time.sleep`` or spin loop — an untraced wait is invisible to
    :mod:`repro.obs.perfscope`, so the step ledger attributes the lost
    time to whatever span happens to be open (usually compute) and the
    stall report under-counts.  Wrap the wait in
    ``perfscope.stall_span(cause, owner=...)``; a deliberate throttle
    outside the step path carries ``# lint: allow-untraced-wait``.

Three *interprocedural* rules ride on a repo-wide :class:`ProgramIndex`
(call graph + view-returning functions), extending the lint beyond
single-function pattern matching:

``rank-divergent-collective``
    In the SPMD simulation layers (``repro/core/``, ``repro/optim/``,
    ``repro/nn/``, ``repro/tensor/``) a collective — direct or through
    any function the index knows issues one — must not be reachable only
    under a ``rank``-dependent predicate (``if rank == 0: ...``, an
    ``is_local`` guard, or the remainder of a block after a
    rank-predicated ``continue``/``return``).  One rank skipping a
    collective is the deadlock the runtime reports as
    ``collective-divergence``; the transport layer (``repro/comm/``)
    owns the legitimately asymmetric recovery protocol and is exempt.
    Deliberate protocol sites carry
    ``# lint: allow-rank-divergent-collective``.

``readonly-view-escape``
    A buffer obtained from ``broadcast``/``allgather``/
    ``allgather_into``/``reduce_scatter_into``/``readonly_slice`` (or a
    function the index knows returns one) is a read-only view of shared
    storage; writing through it — subscript store, augmented assignment,
    ``np.copyto``, ``.fill(...)``, or a ``.flags.writeable`` flip —
    corrupts every rank sharing the base.  Tracked per function through
    aliases, subscripts and loop targets.

``shm-use-after-unlink``
    After ``SharedRing.destroy()`` / ``.close()`` / ``.unlink()``, the
    segment's buffer is gone: any later data access (``publish``,
    ``read_header``, abort/recovery flags, ``.buf``) through the same
    object is a use-after-free on shared memory.  Lifecycle calls
    themselves stay allowed (``destroy`` is close-then-unlink and
    idempotent).

``telemetry-ring-write``
    ``TelemetryRing.put_sample`` is a single-writer seqlock: exactly one
    writer per rank slot, and the sample schema/encoding is owned by
    ``repro.obs.live``.  A direct ``put_sample`` call anywhere else can
    race the rank's own writer mid-seqlock or publish a payload the
    aggregator cannot decode — publish through the live plane
    (``LivePlane.emit``) instead.

A finding can be suppressed with a same-line ``# lint: allow-<rule>``
comment; pre-existing debt is pinned in ``tools/lint_baseline.json`` so
only *new* violations fail CI.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass
from typing import Optional, Sequence

RULES: tuple[str, ...] = (
    "raw-collectives",
    "raw-collective-import",
    "wallclock",
    "rng",
    "float64-upcast",
    "writeable-flip",
    "rawalloc",
    "swallowed-oserror",
    "untraced-wait",
    "rank-divergent-collective",
    "readonly-view-escape",
    "shm-use-after-unlink",
    "telemetry-ring-write",
)

#: Packages whose numerics must be deterministic and clock-free.
NUMERICS_PACKAGES: tuple[str, ...] = (
    "repro/nn/",
    "repro/core/",
    "repro/comm/",
    "repro/optim/",
    "repro/tensor/",
)

#: Hot-path modules where a silent float64 upcast doubles moved bytes.
HOT_PATH_MODULES: frozenset[str] = frozenset(
    {
        "repro/core/bucket.py",
        "repro/core/coordinator.py",
        "repro/core/offload.py",
        "repro/core/partition.py",
        "repro/core/prefetch.py",
        "repro/comm/collectives.py",
        "repro/comm/group.py",
        "repro/optim/adam.py",
        "repro/tensor/flat.py",
        "repro/nvme/aio.py",
        "repro/nvme/buffers.py",
        "repro/nvme/store.py",
    }
)

#: The collective backend package: the only modules inside ``repro/comm/``
#: allowed to import ``repro.comm.collectives`` directly (the functional
#: module itself and the CommBackend implementations that wrap it).
COLLECTIVE_BACKEND_MODULES: frozenset[str] = frozenset(
    {
        "repro/comm/collectives.py",
        "repro/comm/backend.py",
    }
)

#: The only module allowed to write the shm telemetry ring: it owns the
#: sample schema and the single-writer-per-slot seqlock discipline.
TELEMETRY_PLANE_MODULES: frozenset[str] = frozenset(
    {
        "repro/obs/live.py",
    }
)

#: Functional collective names whose direct import bypasses ProcessGroup.
FUNCTIONAL_COLLECTIVES: frozenset[str] = frozenset(
    {
        "broadcast",
        "allgather",
        "allgather_into",
        "reduce_scatter",
        "reduce_scatter_into",
        "allreduce",
        "gather",
        "scatter",
        "alltoall",
    }
)

#: Modules instrumented by repro.obs.memscope: allocations here must be
#: attributed (or carry ``# lint: allow-rawalloc`` for transient temps).
MEMSCOPE_MODULES: frozenset[str] = frozenset(
    {
        "repro/core/bucket.py",
        "repro/core/coordinator.py",
        "repro/core/offload.py",
        "repro/core/partition.py",
        "repro/core/prefetch.py",
        "repro/nn/checkpoint.py",
        "repro/nvme/buffers.py",
        "repro/nvme/store.py",
    }
)

#: Explicitly-seeded RNG constructors that remain allowed everywhere.
RNG_CONSTRUCTORS: frozenset[str] = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}
)

#: Modules on the storage path where a swallowed OSError is silent
#: corruption: every device error must be retried, counted, or propagated.
IO_MODULES_PREFIXES: tuple[str, ...] = ("repro/nvme/",)
IO_MODULES: frozenset[str] = frozenset(
    {
        "repro/core/offload.py",
        "repro/core/checkpoint_io.py",
    }
)

#: Exception names an empty handler must not absorb in I/O modules.
_OS_ERROR_NAMES: frozenset[str] = frozenset(
    {"OSError", "IOError", "EnvironmentError"}
)

#: Modules instrumented by repro.obs.perfscope: a blocking wait here must
#: be wrapped in a ``stall_span`` so the step ledger can attribute it.
PERFSCOPE_MODULES: frozenset[str] = frozenset(
    {
        "repro/core/engine.py",
        "repro/core/coordinator.py",
        "repro/core/offload.py",
        "repro/core/prefetch.py",
        "repro/core/bucket.py",
        "repro/nvme/aio.py",
        "repro/nvme/store.py",
        "repro/nvme/buffers.py",
    }
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str  # repo-src-relative, e.g. "repro/core/bucket.py"
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel_path: str) -> None:
        self.rel = rel_path.replace(os.sep, "/")
        self.findings: list[LintFinding] = []
        self.in_comm = self.rel.startswith("repro/comm/")
        self.in_backend_pkg = self.rel in COLLECTIVE_BACKEND_MODULES
        self.in_check = self.rel.startswith("repro/check/")
        self.numerics = any(self.rel.startswith(p) for p in NUMERICS_PACKAGES)
        self.hot = self.rel in HOT_PATH_MODULES
        self.memscoped = self.rel in MEMSCOPE_MODULES
        self.io_module = self.rel in IO_MODULES or any(
            self.rel.startswith(p) for p in IO_MODULES_PREFIXES
        )
        self.perfscoped = self.rel in PERFSCOPE_MODULES
        self._random_aliases: set[str] = set()  # names bound to stdlib random
        self._stall_depth = 0  # with stall_span(...) nesting at this node

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.rel, getattr(node, "lineno", 0), rule, message)
        )

    # --- imports (raw-collectives + random tracking) -------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._random_aliases.add(alias.asname or "random")
            if alias.name.startswith("repro.comm.collectives"):
                if not self.in_comm:
                    self._flag(
                        node,
                        "raw-collectives",
                        "import of repro.comm.collectives outside repro.comm;"
                        " use a ProcessGroup (accounted + fingerprinted)",
                    )
                elif not self.in_backend_pkg:
                    self._flag(
                        node,
                        "raw-collective-import",
                        "import of repro.comm.collectives outside the backend"
                        " package; route through a CommBackend so both"
                        " execution models share one seam",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if self.in_comm and not self.in_backend_pkg:
            if mod == "repro.comm.collectives" or (
                mod == "repro.comm"
                and any(a.name == "collectives" for a in node.names)
            ):
                self._flag(
                    node,
                    "raw-collective-import",
                    "import of repro.comm.collectives outside the backend"
                    " package; route through a CommBackend so both"
                    " execution models share one seam",
                )
        if not self.in_comm:
            if mod == "repro.comm.collectives":
                self._flag(
                    node,
                    "raw-collectives",
                    "import from repro.comm.collectives outside repro.comm;"
                    " use a ProcessGroup (accounted + fingerprinted)",
                )
            elif mod == "repro.comm":
                for alias in node.names:
                    if alias.name == "collectives":
                        self._flag(
                            node,
                            "raw-collectives",
                            "import of the functional collectives module"
                            " outside repro.comm; use a ProcessGroup",
                        )
                    elif alias.name in FUNCTIONAL_COLLECTIVES:
                        self._flag(
                            node,
                            "raw-collectives",
                            f"direct import of functional collective"
                            f" {alias.name!r} outside repro.comm; call it"
                            f" through a ProcessGroup",
                        )
        self.generic_visit(node)

    # --- untraced waits (bare sleeps / spin loops off the stall ledger) ----------
    @staticmethod
    def _is_stall_with(node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                chain = _attr_chain(expr.func)
                if chain and chain[-1] == "stall_span":
                    return True
        return False

    def _visit_with(self, node) -> None:
        stall = self._is_stall_with(node)
        self._stall_depth += stall
        self.generic_visit(node)
        self._stall_depth -= stall

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_While(self, node: ast.While) -> None:
        if (
            self.perfscoped
            and self._stall_depth == 0
            and all(
                isinstance(stmt, (ast.Pass, ast.Continue))
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            )
        ):
            self._flag(
                node,
                "untraced-wait",
                "spin loop in a perfscope-instrumented module is invisible"
                " to stall attribution; wait inside a"
                " perfscope.stall_span(cause, owner=...) instead",
            )
        self.generic_visit(node)

    # --- calls (wallclock, rng, float64 astype, untraced sleeps) ----------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if (
            chain
            and chain[-1] == "put_sample"
            and self.rel not in TELEMETRY_PLANE_MODULES
        ):
            self._flag(
                node,
                "telemetry-ring-write",
                "direct telemetry-ring write outside repro.obs.live: the"
                " ring is a single-writer-per-slot seqlock whose sample"
                " schema the live plane owns; publish through"
                " LivePlane.emit instead",
            )
        if (
            self.perfscoped
            and self._stall_depth == 0
            and chain == ["time", "sleep"]
        ):
            self._flag(
                node,
                "untraced-wait",
                "bare time.sleep in a perfscope-instrumented module is"
                " invisible to stall attribution; wrap the wait in"
                " perfscope.stall_span(cause, owner=...) (or mark a"
                " deliberate off-step throttle with"
                " '# lint: allow-untraced-wait')",
            )
        if self.numerics and chain in (["time", "time"], ["time", "time_ns"]):
            self._flag(
                node,
                "wallclock",
                f"{'.'.join(chain)}() in a numerics path; timing belongs in"
                f" repro.obs (perf_counter), numerics must be replayable",
            )
        if self.numerics and len(chain) >= 2:
            if (
                chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and (len(chain) == 2 or chain[-1] not in RNG_CONSTRUCTORS)
            ):
                self._flag(
                    node,
                    "rng",
                    "implicit global numpy RNG in a numerics path; thread a"
                    " seeded np.random.Generator through instead",
                )
            elif (
                chain[0] in self._random_aliases
                and chain[-1] not in RNG_CONSTRUCTORS
            ):
                self._flag(
                    node,
                    "rng",
                    "stdlib random.* in a numerics path; thread a seeded"
                    " np.random.Generator through instead",
                )
        if (
            self.hot
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            arg = node.args[0]
            arg_chain = _attr_chain(arg)
            if arg_chain in (
                ["float"],
                ["np", "float64"],
                ["numpy", "float64"],
                ["np", "double"],
                ["numpy", "double"],
            ):
                self._flag(
                    node,
                    "float64-upcast",
                    "astype to float64 in a hot-path module doubles every"
                    " byte moved; accumulate in float32",
                )
        if (
            self.memscoped
            and len(chain) == 2
            and chain[0] in ("np", "numpy")
            and chain[1] in ("empty", "zeros")
        ):
            self._flag(
                node,
                "rawalloc",
                f"raw np.{chain[1]} in a memscope-instrumented module is"
                f" invisible to memory attribution; use"
                f" repro.obs.memscope.attributed_{chain[1]} (or mark a"
                f" transient temp with '# lint: allow-rawalloc')",
            )
        self.generic_visit(node)

    # --- attributes (np.float64 references in hot modules) -----------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.hot:
            chain = _attr_chain(node)
            if chain in (
                ["np", "float64"],
                ["numpy", "float64"],
                ["np", "double"],
                ["numpy", "double"],
            ):
                self._flag(
                    node,
                    "float64-upcast",
                    "float64 dtype in a hot-path module; the offload/comm"
                    " hot path is fp16/fp32 only",
                )
                return  # do not double-count the inner chain
        self.generic_visit(node)

    # --- dtype=float keywords in hot modules ------------------------------------
    def visit_keyword(self, node: ast.keyword) -> None:  # type: ignore[override]
        if (
            self.hot
            and node.arg == "dtype"
            and isinstance(node.value, ast.Name)
            and node.value.id == "float"
        ):
            self._flag(
                node.value,
                "float64-upcast",
                "dtype=float is float64; hot-path buffers are fp16/fp32",
            )
        self.generic_visit(node)

    # --- exception handlers (swallowed OSError in I/O modules) -------------------
    @staticmethod
    def _handler_catches_oserror(handler: ast.ExceptHandler) -> bool:
        exc = handler.type
        names: list[ast.AST]
        if exc is None:  # bare except swallows OSError too
            return True
        names = list(exc.elts) if isinstance(exc, ast.Tuple) else [exc]
        for n in names:
            chain = _attr_chain(n)
            if chain and chain[-1] in _OS_ERROR_NAMES:
                return True
        return False

    @staticmethod
    def _handler_body_is_empty(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / bare ellipsis
            return False
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if (
            self.io_module
            and self._handler_catches_oserror(node)
            and self._handler_body_is_empty(node)
        ):
            self._flag(
                node,
                "swallowed-oserror",
                "empty handler swallows a device error on the storage path"
                " (silent training corruption); retry, count, degrade, or"
                " let it reach a recovery tier (see repro.faults)",
            )
        self.generic_visit(node)

    # --- assignments (writeable flips) -----------------------------------------
    def _check_writeable_target(self, target: ast.AST, node: ast.AST) -> None:
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "writeable"
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "flags"
        ):
            self._flag(
                node,
                "writeable-flip",
                "re-enabling .flags.writeable defeats read-only zero-copy"
                " views; only repro.comm owns that protocol",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            not self.in_comm
            and not self.in_check
            and isinstance(node.value, ast.Constant)
            and node.value.value is True
        ):
            for target in node.targets:
                self._check_writeable_target(target, node)
        self.generic_visit(node)


# --- interprocedural passes -----------------------------------------------------
#: Modules where the SPMD discipline applies: every rank must issue the
#: same collective sequence.  The transport (``repro/comm/``) owns the
#: legitimately asymmetric pieces (rank-0 recovery polling, launcher).
RANK_SPMD_MODULES: tuple[str, ...] = (
    "repro/core/",
    "repro/optim/",
    "repro/nn/",
    "repro/tensor/",
)

#: Call names that directly block on peers: the functional collectives
#: plus the process-group / backend rendezvous primitives.
COLLECTIVE_ISSUE_NAMES: frozenset[str] = FUNCTIONAL_COLLECTIVES | frozenset(
    {"barrier", "step_sync", "exchange", "recover_after_abort"}
)

#: Calls whose result is (or may be) a read-only view of shared storage.
VIEW_SOURCES: frozenset[str] = frozenset(
    {
        "broadcast",
        "allgather",
        "allgather_into",
        "reduce_scatter_into",
        "readonly_slice",
    }
)

#: In-place mutators that count as writes through a view.
_VIEW_MUTATORS: frozenset[str] = frozenset({"fill", "sort", "put", "partition"})

#: SharedRing lifecycle enders vs. data accessors (see repro/comm/shm.py).
SHM_LIFECYCLE_METHODS: frozenset[str] = frozenset({"close", "unlink", "destroy"})
SHM_USE_METHODS: frozenset[str] = frozenset(
    {
        "publish",
        "read_header",
        "read_data",
        "set_abort",
        "abort_kinds",
        "clear_aborts",
        "ack_recovery",
        "all_recovered",
        "set_epoch",
        "epoch",
        "buf",
    }
)

_TERMINATORS = (ast.Continue, ast.Break, ast.Return, ast.Raise)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class ProgramIndex:
    """Repo-wide facts the interprocedural rules consult.

    Built once per lint run over every module (``build_program_index``);
    :func:`lint_source` falls back to a single-module index so snippets
    and tests stay self-contained.  Functions are keyed by simple name —
    a deliberate over-approximation (any ``x.flush()`` resolves to every
    ``def flush``) that favours recall; precision comes from the narrow
    trigger contexts (rank-dependent predicates, tainted names).
    """

    collective_callers: frozenset[str]
    view_returners: frozenset[str]


def _called_name(call: ast.Call) -> Optional[str]:
    chain = _attr_chain(call.func)
    return chain[-1] if chain else None


def _is_view_source_expr(expr: ast.AST, sources: frozenset[str]) -> bool:
    """``sources`` call, possibly behind a subscript (``allgather(x)[0]``)."""
    if isinstance(expr, ast.Subscript):
        return _is_view_source_expr(expr.value, sources)
    if isinstance(expr, ast.Call):
        name = _called_name(expr)
        return name is not None and name in sources
    return False


def build_program_index(trees: dict[str, ast.AST]) -> ProgramIndex:
    """Call-graph fixpoint over ``{rel_path: parsed module}``."""
    calls: dict[str, set[str]] = {}
    returns_call_to: dict[str, set[str]] = {}
    callers: set[str] = set()
    view_returners: set[str] = set()

    for tree in trees.values():
        for fn in ast.walk(tree):
            if not isinstance(fn, _FUNC_NODES):
                continue
            called = calls.setdefault(fn.name, set())
            tainted: set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    name = _called_name(node)
                    if name:
                        called.add(name)
                        if name in COLLECTIVE_ISSUE_NAMES:
                            callers.add(fn.name)
                elif isinstance(node, ast.Assign):
                    if _is_view_source_expr(node.value, VIEW_SOURCES):
                        for t in node.targets:
                            if isinstance(t, ast.Name):
                                tainted.add(t.id)
                elif isinstance(node, ast.Return) and node.value is not None:
                    v = node.value
                    if _is_view_source_expr(v, VIEW_SOURCES):
                        view_returners.add(fn.name)
                    elif isinstance(v, ast.Name) and v.id in tainted:
                        view_returners.add(fn.name)
                    elif isinstance(v, ast.Call):
                        name = _called_name(v)
                        if name:
                            returns_call_to.setdefault(fn.name, set()).add(name)

    changed = True
    while changed:  # transitive closure: callers of callers issue too
        changed = False
        for fn, called in calls.items():
            if fn not in callers and called & callers:
                callers.add(fn)
                changed = True
    changed = True
    while changed:  # functions forwarding a view-returner's result
        changed = False
        for fn, callees in returns_call_to.items():
            if fn not in view_returners and callees & view_returners:
                view_returners.add(fn)
                changed = True
    return ProgramIndex(
        collective_callers=frozenset(callers),
        view_returners=frozenset(view_returners),
    )


#: Receiver names whose ``.rank`` attribute is the *process identity*.
#: In the replicated-state SPMD model most ``rank`` variables are turn
#: indices every process iterates identically (``for rank in range(world)``,
#: ``owner_rank`` metadata) — those are rank-uniform and harmless.  Only
#: the transport endpoint knows which process it is.
_RANK_IDENTITY_BASES: frozenset[str] = frozenset(
    {"backend", "comm", "group", "pg"}
)


def _rank_dependent(test: ast.AST) -> bool:
    """Does the predicate read the *process* identity?

    True for ``is_local(...)`` calls and ``<backend/comm/...>.rank``
    reads.  Turn indices, ``owner_rank`` metadata and ``all_local`` are
    rank-uniform (every process evaluates them identically) and do not
    count — the echo protocol keeps turn-conditional accounting aligned;
    only process-identity branches can desynchronize the schedule.
    """
    for node in ast.walk(test):
        if isinstance(node, ast.Call) and _called_name(node) == "is_local":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            base = _attr_chain(node.value)
            if base and base[-1] in _RANK_IDENTITY_BASES:
                return True
    return False


def _function_bodies(tree: ast.AST):
    """Every function body plus the module body, shallow-nested first."""
    yield getattr(tree, "body", [])
    for node in ast.walk(tree):
        if isinstance(node, _FUNC_NODES):
            yield node.body


def _rank_divergent_findings(
    tree: ast.AST, rel: str, index: ProgramIndex, flag
) -> None:
    if not any(rel.startswith(p) for p in RANK_SPMD_MODULES):
        return
    issuers = COLLECTIVE_ISSUE_NAMES | index.collective_callers

    def check(node: ast.AST) -> None:
        for n in ast.walk(node):
            if isinstance(n, _FUNC_NODES):
                continue  # nested defs analyzed as their own bodies
            if isinstance(n, ast.Call):
                name = _called_name(n)
                if name in issuers:
                    flag(
                        n,
                        "rank-divergent-collective",
                        f"{name!r} (a collective, per the program index) is"
                        " reachable only under a rank-dependent predicate;"
                        " a rank that skips it deadlocks its peers at the"
                        " next rendezvous (collective-divergence at"
                        " runtime)",
                    )

    def walk(stmts, conditioned: bool) -> None:
        cond = conditioned
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                dep = _rank_dependent(stmt.test)
                if cond:
                    check(stmt.test)
                walk(stmt.body, cond or dep)
                walk(stmt.orelse, cond or dep)
                if (
                    dep
                    and not stmt.orelse
                    and stmt.body
                    and isinstance(stmt.body[-1], _TERMINATORS)
                ):
                    # `if <rank-pred>: continue/return` — the rest of the
                    # block runs only on the ranks that failed the test
                    cond = True
                continue
            if isinstance(stmt, ast.While):
                dep = _rank_dependent(stmt.test)
                if cond:
                    check(stmt.test)
                walk(stmt.body, cond or dep)
                walk(stmt.orelse, cond)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                if cond:
                    check(stmt.iter)
                walk(stmt.body, cond)
                walk(stmt.orelse, cond)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if cond:
                    for item in stmt.items:
                        check(item.context_expr)
                walk(stmt.body, cond)
                continue
            if isinstance(stmt, ast.Try):
                walk(stmt.body, cond)
                for handler in stmt.handlers:
                    walk(handler.body, cond)
                walk(stmt.orelse, cond)
                walk(stmt.finalbody, cond)
                continue
            if cond:
                check(stmt)

    for body in _function_bodies(tree):
        walk(body, False)


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _view_escape_findings(
    tree: ast.AST, rel: str, index: ProgramIndex, flag
) -> None:
    if rel.startswith("repro/comm/") or rel.startswith("repro/check/"):
        return  # the transport owns the shared-view protocol
    sources = VIEW_SOURCES | index.view_returners

    def scan_body(stmts) -> None:
        tainted: set[str] = set()

        def is_tainted_expr(expr: ast.AST) -> bool:
            if _is_view_source_expr(expr, sources):
                return True
            if isinstance(expr, ast.Subscript):
                return is_tainted_expr(expr.value)
            return isinstance(expr, ast.Name) and expr.id in tainted

        def check_write_sinks(node: ast.AST) -> None:
            for n in ast.walk(node):
                if isinstance(n, _FUNC_NODES):
                    continue
                if not isinstance(n, ast.Call):
                    continue
                name = _called_name(n)
                chain = _attr_chain(n.func)
                if (
                    name == "copyto"
                    and len(chain) >= 2
                    and chain[0] in ("np", "numpy")
                    and n.args
                    and is_tainted_expr(n.args[0])
                ):
                    flag(
                        n,
                        "readonly-view-escape",
                        "np.copyto into a read-only collective view writes"
                        " the shared base every rank aliases; copy the view"
                        " out instead",
                    )
                elif (
                    name in _VIEW_MUTATORS
                    and isinstance(n.func, ast.Attribute)
                    and is_tainted_expr(n.func.value)
                ):
                    flag(
                        n,
                        "readonly-view-escape",
                        f".{name}() mutates a read-only collective view in"
                        " place; the base buffer is shared across ranks",
                    )

        def walk(stmts) -> None:
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(stmt, ast.Assign):
                    if is_tainted_expr(stmt.value):
                        for t in stmt.targets:
                            if isinstance(t, ast.Name):
                                tainted.add(t.id)
                            elif isinstance(t, ast.Tuple):
                                for el in t.elts:
                                    if isinstance(el, ast.Name):
                                        tainted.add(el.id)
                    else:
                        for t in stmt.targets:
                            if isinstance(t, ast.Name):
                                tainted.discard(t.id)
                    for t in stmt.targets:
                        if isinstance(t, ast.Subscript) and is_tainted_expr(
                            t.value
                        ):
                            flag(
                                stmt,
                                "readonly-view-escape",
                                "subscript store into a read-only collective"
                                " view; the base buffer is shared across"
                                " ranks — copy before mutating",
                            )
                        elif (
                            isinstance(t, ast.Attribute)
                            and t.attr == "writeable"
                            and isinstance(t.value, ast.Attribute)
                            and t.value.attr == "flags"
                            and is_tainted_expr(t.value.value)
                        ):
                            flag(
                                stmt,
                                "readonly-view-escape",
                                "flipping .flags.writeable on a collective"
                                " view re-arms writes into shared storage",
                            )
                    check_write_sinks(stmt.value)
                    continue
                if isinstance(stmt, ast.AugAssign):
                    t = stmt.target
                    if (
                        isinstance(t, ast.Name) and t.id in tainted
                    ) or (
                        isinstance(t, ast.Subscript)
                        and is_tainted_expr(t.value)
                    ):
                        flag(
                            stmt,
                            "readonly-view-escape",
                            "augmented assignment writes through a read-only"
                            " collective view; copy before mutating",
                        )
                    check_write_sinks(stmt.value)
                    continue
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if is_tainted_expr(stmt.iter) and isinstance(
                        stmt.target, ast.Name
                    ):
                        tainted.add(stmt.target.id)
                    walk(stmt.body)
                    walk(stmt.orelse)
                    continue
                if isinstance(stmt, (ast.If, ast.While)):
                    check_write_sinks(stmt.test)
                    walk(stmt.body)
                    walk(stmt.orelse)
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    walk(stmt.body)
                    continue
                if isinstance(stmt, ast.Try):
                    walk(stmt.body)
                    for handler in stmt.handlers:
                        walk(handler.body)
                    walk(stmt.orelse)
                    walk(stmt.finalbody)
                    continue
                check_write_sinks(stmt)

        walk(stmts)

    for body in _function_bodies(tree):
        scan_body(body)


def _shm_lifecycle_findings(tree: ast.AST, rel: str, flag) -> None:
    def walk(stmts, dead: set[tuple[str, ...]]) -> set[tuple[str, ...]]:
        def chain_of(node: ast.AST) -> Optional[tuple[str, ...]]:
            parts = _attr_chain(node)
            return tuple(parts) if parts else None

        def check_uses(node: ast.AST) -> None:
            for n in ast.walk(node):
                if isinstance(n, _FUNC_NODES):
                    continue
                if isinstance(n, ast.Call) and isinstance(
                    n.func, ast.Attribute
                ):
                    if n.func.attr in SHM_USE_METHODS:
                        base = chain_of(n.func.value)
                        if base in dead:
                            flag(
                                n,
                                "shm-use-after-unlink",
                                f"{'.'.join(base)}.{n.func.attr}() after the"
                                " segment was closed/unlinked: the shared"
                                " buffer is gone (use-after-free on shm)",
                            )
                elif isinstance(n, ast.Attribute) and n.attr == "buf":
                    base = chain_of(n.value)
                    if base in dead:
                        flag(
                            n,
                            "shm-use-after-unlink",
                            f"{'.'.join(base)}.buf after the segment was"
                            " closed/unlinked: the mapping is invalid",
                        )

        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                check_uses(stmt.test)
                dead_body = walk(stmt.body, set(dead))
                dead_else = walk(stmt.orelse, set(dead))
                dead |= dead_body & dead_else
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                check_uses(stmt.iter)
                walk(stmt.body, set(dead))
                walk(stmt.orelse, set(dead))
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    check_uses(item.context_expr)
                dead |= walk(stmt.body, set(dead))
                continue
            if isinstance(stmt, ast.Try):
                dead |= walk(stmt.body, set(dead))
                for handler in stmt.handlers:
                    walk(handler.body, set(dead))
                walk(stmt.orelse, set(dead))
                dead |= walk(stmt.finalbody, set(dead))
                continue
            check_uses(stmt)
            for n in ast.walk(stmt):
                if (
                    isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr in SHM_LIFECYCLE_METHODS
                ):
                    base = chain_of(n.func.value)
                    if base is not None:
                        dead.add(base)
            if isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):  # rebinding revives the name
                        dead = {c for c in dead if c[0] != t.id}
        return dead

    for body in _function_bodies(tree):
        walk(body, set())


def _interprocedural_findings(
    tree: ast.AST, rel_path: str, index: ProgramIndex
) -> list[LintFinding]:
    rel = rel_path.replace(os.sep, "/")
    findings: list[LintFinding] = []

    def flag(node: ast.AST, rule: str, message: str) -> None:
        findings.append(
            LintFinding(rel, getattr(node, "lineno", 0), rule, message)
        )

    _rank_divergent_findings(tree, rel, index, flag)
    _view_escape_findings(tree, rel, index, flag)
    _shm_lifecycle_findings(tree, rel, flag)
    return findings


def lint_source(
    source: str, rel_path: str, index: Optional[ProgramIndex] = None
) -> list[LintFinding]:
    """Lint one module's source text (unit of both the CLI and the tests).

    With no ``index``, the interprocedural rules see a single-module
    index built from this source alone; :func:`collect` passes the
    repo-wide one.
    """
    tree = ast.parse(source, filename=rel_path)
    visitor = _Visitor(rel_path)
    visitor.visit(tree)
    if index is None:
        index = build_program_index({rel_path: tree})
    visitor.findings.extend(
        _interprocedural_findings(tree, rel_path, index)
    )
    lines = source.splitlines()
    kept = []
    for f in visitor.findings:
        line_text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        if f"# lint: allow-{f.rule}" in line_text:
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def default_src_root() -> str:
    """The ``src/`` directory this installation of ``repro`` lives in."""
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )


def default_baseline_path() -> str:
    return os.path.join(
        os.path.dirname(default_src_root()), "tools", "lint_baseline.json"
    )


def collect(src_root: Optional[str] = None) -> list[LintFinding]:
    """Lint every ``repro`` module under ``src_root``.

    Two passes: the first parses everything and builds the repo-wide
    :class:`ProgramIndex`; the second lints each module against it, so
    the interprocedural rules see callees defined in other files.
    """
    root = src_root or default_src_root()
    pkg_root = os.path.join(root, "repro")
    modules: list[tuple[str, str]] = []  # (rel, source)
    for dirpath, dirnames, filenames in os.walk(pkg_root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as fh:
                modules.append((rel, fh.read()))
    index = build_program_index(
        {rel: ast.parse(source, filename=rel) for rel, source in modules}
    )
    findings: list[LintFinding] = []
    for rel, source in modules:
        findings.extend(lint_source(source, rel, index))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --- baseline -------------------------------------------------------------------
def load_baseline(path: Optional[str] = None) -> dict[str, dict[str, int]]:
    """``{rel_path: {rule: allowed_count}}`` — pre-existing pinned debt."""
    baseline_path = path or default_baseline_path()
    if not os.path.exists(baseline_path):
        return {}
    with open(baseline_path, encoding="utf-8") as fh:
        data = json.load(fh)
    return {k: dict(v) for k, v in data.get("allow", {}).items()}


def write_baseline(
    findings: Sequence[LintFinding], path: Optional[str] = None
) -> str:
    """Pin the current findings as the allowed baseline."""
    allow: dict[str, dict[str, int]] = {}
    for f in findings:
        allow.setdefault(f.path, {})
        allow[f.path][f.rule] = allow[f.path].get(f.rule, 0) + 1
    baseline_path = path or default_baseline_path()
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump({"version": 1, "allow": allow}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return baseline_path


def apply_baseline(
    findings: Sequence[LintFinding], baseline: dict[str, dict[str, int]]
) -> list[LintFinding]:
    """Findings beyond the pinned allowance (earliest lines absorbed first)."""
    budget = {
        (path, rule): count
        for path, rules in baseline.items()
        for rule, count in rules.items()
    }
    new: list[LintFinding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        key = (f.path, f.rule)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            continue
        new.append(f)
    return new


@dataclass(frozen=True)
class LintReport:
    """Outcome of a full lint run."""

    all_findings: tuple[LintFinding, ...]
    new_findings: tuple[LintFinding, ...]

    @property
    def clean(self) -> bool:
        return not self.new_findings


def run_lint(
    src_root: Optional[str] = None, baseline_path: Optional[str] = None
) -> LintReport:
    """Lint ``src_root`` and subtract the pinned baseline."""
    findings = collect(src_root)
    baseline = load_baseline(baseline_path)
    return LintReport(
        all_findings=tuple(findings),
        new_findings=tuple(apply_baseline(findings, baseline)),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (see ``tools/lint_repro.py``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="AST lint for repro invariants (repro.check.lint)",
    )
    parser.add_argument(
        "--root", default=None, help="src directory (default: auto-detect)"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON (default: tools/lint_baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="pin the current findings as the new baseline",
    )
    parser.add_argument(
        "--show-all",
        action="store_true",
        help="also print baseline-absorbed findings",
    )
    args = parser.parse_args(argv)

    if args.update_baseline:
        findings = collect(args.root)
        path = write_baseline(findings, args.baseline)
        print(f"pinned {len(findings)} finding(s) to {path}")
        return 0

    report = run_lint(args.root, args.baseline)
    shown = report.all_findings if args.show_all else report.new_findings
    for f in shown:
        print(f.format())
    absorbed = len(report.all_findings) - len(report.new_findings)
    print(
        f"{len(report.new_findings)} new finding(s),"
        f" {absorbed} absorbed by baseline"
    )
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via tools/
    raise SystemExit(main())
