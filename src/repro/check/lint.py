"""AST lint pass enforcing repo invariants over ``src/``.

The static quarter of the checking subsystem (run via ``tools/lint_repro.py``
or ``tests/test_lint.py``).  Four rules, each guarding an invariant the
runtime passes rely on:

``raw-collectives``
    Collectives must go through :class:`repro.comm.group.ProcessGroup` —
    the layer that accounts bytes and fingerprints sequences for the
    ordering checker.  Importing ``repro.comm.collectives`` (or the
    functional collective names) outside ``repro/comm/`` bypasses both.

``raw-collective-import``
    Inside ``repro/comm/`` itself, only the backend package — the
    functional module ``collectives.py`` and the :class:`CommBackend`
    implementations in ``backend.py`` — may import
    ``repro.comm.collectives``.  Everything else in the package
    (``group.py``, ``mp_backend.py``, helpers) must go through a
    backend so both execution models stay behind one seam; a deliberate
    re-export carries ``# lint: allow-raw-collective-import``.

``wallclock``
    No ``time.time()`` / ``time.time_ns()`` in numerics packages
    (``nn``, ``core``, ``comm``, ``optim``, ``tensor``): wall-clock reads
    make numerics nondeterministic and replay-hostile.  Telemetry uses
    ``perf_counter_ns`` through ``repro.obs``, which is exempt.

``rng``
    No implicit global RNG in numerics packages: ``np.random.<fn>()`` and
    ``random.<fn>()`` draw from hidden mutable state, breaking the
    seeded-``Generator``-passed-explicitly convention (``default_rng``,
    ``Generator`` and ``SeedSequence`` construction stay allowed).

``float64-upcast``
    Hot-path modules (gather/reduce/offload/optimizer) must not silently
    upcast to float64 — ``np.float64`` / ``np.double`` references,
    ``astype(float)`` and ``dtype=float`` double every byte moved and mask
    fp16/fp32 mixed-precision bugs.

``writeable-flip``
    Outside ``repro/comm`` (which owns the shared-buffer protocol) and the
    checker itself, nothing may set ``.flags.writeable = True`` — that is
    the escape hatch that lets callers mutate the base of a read-only
    zero-copy view.

``rawalloc``
    Modules instrumented by the memory scope (gather, bucket, offload,
    NVMe staging, activation checkpointing) must not allocate long-lived
    buffers with raw ``np.empty`` / ``np.zeros`` — an unattributed
    allocation is invisible to :mod:`repro.obs.memscope`, so watermarks
    and attribution silently understate the tier.  Route through
    ``attributed_empty`` / ``attributed_zeros``; transient temps carry a
    same-line ``# lint: allow-rawalloc``.

``swallowed-oserror``
    I/O modules (``repro/nvme/``, the offload engine, checkpoint I/O) must
    not swallow ``OSError``/``IOError`` with an empty handler — a device
    error silently dropped on the offload path is silent training
    corruption.  Handle it (retry, count, degrade — see
    :mod:`repro.faults`) or let it propagate to a recovery tier.

``untraced-wait``
    Modules instrumented by the time profiler (engine, coordinator,
    offload, prefetch, bucket, NVMe aio/store/buffers) must not block in
    a bare ``time.sleep`` or spin loop — an untraced wait is invisible to
    :mod:`repro.obs.perfscope`, so the step ledger attributes the lost
    time to whatever span happens to be open (usually compute) and the
    stall report under-counts.  Wrap the wait in
    ``perfscope.stall_span(cause, owner=...)``; a deliberate throttle
    outside the step path carries ``# lint: allow-untraced-wait``.

A finding can be suppressed with a same-line ``# lint: allow-<rule>``
comment; pre-existing debt is pinned in ``tools/lint_baseline.json`` so
only *new* violations fail CI.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass
from typing import Optional, Sequence

RULES: tuple[str, ...] = (
    "raw-collectives",
    "raw-collective-import",
    "wallclock",
    "rng",
    "float64-upcast",
    "writeable-flip",
    "rawalloc",
    "swallowed-oserror",
    "untraced-wait",
)

#: Packages whose numerics must be deterministic and clock-free.
NUMERICS_PACKAGES: tuple[str, ...] = (
    "repro/nn/",
    "repro/core/",
    "repro/comm/",
    "repro/optim/",
    "repro/tensor/",
)

#: Hot-path modules where a silent float64 upcast doubles moved bytes.
HOT_PATH_MODULES: frozenset[str] = frozenset(
    {
        "repro/core/bucket.py",
        "repro/core/coordinator.py",
        "repro/core/offload.py",
        "repro/core/partition.py",
        "repro/core/prefetch.py",
        "repro/comm/collectives.py",
        "repro/comm/group.py",
        "repro/optim/adam.py",
        "repro/tensor/flat.py",
        "repro/nvme/aio.py",
        "repro/nvme/buffers.py",
        "repro/nvme/store.py",
    }
)

#: The collective backend package: the only modules inside ``repro/comm/``
#: allowed to import ``repro.comm.collectives`` directly (the functional
#: module itself and the CommBackend implementations that wrap it).
COLLECTIVE_BACKEND_MODULES: frozenset[str] = frozenset(
    {
        "repro/comm/collectives.py",
        "repro/comm/backend.py",
    }
)

#: Functional collective names whose direct import bypasses ProcessGroup.
FUNCTIONAL_COLLECTIVES: frozenset[str] = frozenset(
    {
        "broadcast",
        "allgather",
        "allgather_into",
        "reduce_scatter",
        "reduce_scatter_into",
        "allreduce",
        "gather",
        "scatter",
        "alltoall",
    }
)

#: Modules instrumented by repro.obs.memscope: allocations here must be
#: attributed (or carry ``# lint: allow-rawalloc`` for transient temps).
MEMSCOPE_MODULES: frozenset[str] = frozenset(
    {
        "repro/core/bucket.py",
        "repro/core/coordinator.py",
        "repro/core/offload.py",
        "repro/core/partition.py",
        "repro/core/prefetch.py",
        "repro/nn/checkpoint.py",
        "repro/nvme/buffers.py",
        "repro/nvme/store.py",
    }
)

#: Explicitly-seeded RNG constructors that remain allowed everywhere.
RNG_CONSTRUCTORS: frozenset[str] = frozenset(
    {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}
)

#: Modules on the storage path where a swallowed OSError is silent
#: corruption: every device error must be retried, counted, or propagated.
IO_MODULES_PREFIXES: tuple[str, ...] = ("repro/nvme/",)
IO_MODULES: frozenset[str] = frozenset(
    {
        "repro/core/offload.py",
        "repro/core/checkpoint_io.py",
    }
)

#: Exception names an empty handler must not absorb in I/O modules.
_OS_ERROR_NAMES: frozenset[str] = frozenset(
    {"OSError", "IOError", "EnvironmentError"}
)

#: Modules instrumented by repro.obs.perfscope: a blocking wait here must
#: be wrapped in a ``stall_span`` so the step ledger can attribute it.
PERFSCOPE_MODULES: frozenset[str] = frozenset(
    {
        "repro/core/engine.py",
        "repro/core/coordinator.py",
        "repro/core/offload.py",
        "repro/core/prefetch.py",
        "repro/core/bucket.py",
        "repro/nvme/aio.py",
        "repro/nvme/store.py",
        "repro/nvme/buffers.py",
    }
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str  # repo-src-relative, e.g. "repro/core/bucket.py"
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when not a pure name chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel_path: str) -> None:
        self.rel = rel_path.replace(os.sep, "/")
        self.findings: list[LintFinding] = []
        self.in_comm = self.rel.startswith("repro/comm/")
        self.in_backend_pkg = self.rel in COLLECTIVE_BACKEND_MODULES
        self.in_check = self.rel.startswith("repro/check/")
        self.numerics = any(self.rel.startswith(p) for p in NUMERICS_PACKAGES)
        self.hot = self.rel in HOT_PATH_MODULES
        self.memscoped = self.rel in MEMSCOPE_MODULES
        self.io_module = self.rel in IO_MODULES or any(
            self.rel.startswith(p) for p in IO_MODULES_PREFIXES
        )
        self.perfscoped = self.rel in PERFSCOPE_MODULES
        self._random_aliases: set[str] = set()  # names bound to stdlib random
        self._stall_depth = 0  # with stall_span(...) nesting at this node

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.rel, getattr(node, "lineno", 0), rule, message)
        )

    # --- imports (raw-collectives + random tracking) -------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._random_aliases.add(alias.asname or "random")
            if alias.name.startswith("repro.comm.collectives"):
                if not self.in_comm:
                    self._flag(
                        node,
                        "raw-collectives",
                        "import of repro.comm.collectives outside repro.comm;"
                        " use a ProcessGroup (accounted + fingerprinted)",
                    )
                elif not self.in_backend_pkg:
                    self._flag(
                        node,
                        "raw-collective-import",
                        "import of repro.comm.collectives outside the backend"
                        " package; route through a CommBackend so both"
                        " execution models share one seam",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if self.in_comm and not self.in_backend_pkg:
            if mod == "repro.comm.collectives" or (
                mod == "repro.comm"
                and any(a.name == "collectives" for a in node.names)
            ):
                self._flag(
                    node,
                    "raw-collective-import",
                    "import of repro.comm.collectives outside the backend"
                    " package; route through a CommBackend so both"
                    " execution models share one seam",
                )
        if not self.in_comm:
            if mod == "repro.comm.collectives":
                self._flag(
                    node,
                    "raw-collectives",
                    "import from repro.comm.collectives outside repro.comm;"
                    " use a ProcessGroup (accounted + fingerprinted)",
                )
            elif mod == "repro.comm":
                for alias in node.names:
                    if alias.name == "collectives":
                        self._flag(
                            node,
                            "raw-collectives",
                            "import of the functional collectives module"
                            " outside repro.comm; use a ProcessGroup",
                        )
                    elif alias.name in FUNCTIONAL_COLLECTIVES:
                        self._flag(
                            node,
                            "raw-collectives",
                            f"direct import of functional collective"
                            f" {alias.name!r} outside repro.comm; call it"
                            f" through a ProcessGroup",
                        )
        self.generic_visit(node)

    # --- untraced waits (bare sleeps / spin loops off the stall ledger) ----------
    @staticmethod
    def _is_stall_with(node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                chain = _attr_chain(expr.func)
                if chain and chain[-1] == "stall_span":
                    return True
        return False

    def _visit_with(self, node) -> None:
        stall = self._is_stall_with(node)
        self._stall_depth += stall
        self.generic_visit(node)
        self._stall_depth -= stall

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_While(self, node: ast.While) -> None:
        if (
            self.perfscoped
            and self._stall_depth == 0
            and all(
                isinstance(stmt, (ast.Pass, ast.Continue))
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            )
        ):
            self._flag(
                node,
                "untraced-wait",
                "spin loop in a perfscope-instrumented module is invisible"
                " to stall attribution; wait inside a"
                " perfscope.stall_span(cause, owner=...) instead",
            )
        self.generic_visit(node)

    # --- calls (wallclock, rng, float64 astype, untraced sleeps) ----------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if (
            self.perfscoped
            and self._stall_depth == 0
            and chain == ["time", "sleep"]
        ):
            self._flag(
                node,
                "untraced-wait",
                "bare time.sleep in a perfscope-instrumented module is"
                " invisible to stall attribution; wrap the wait in"
                " perfscope.stall_span(cause, owner=...) (or mark a"
                " deliberate off-step throttle with"
                " '# lint: allow-untraced-wait')",
            )
        if self.numerics and chain in (["time", "time"], ["time", "time_ns"]):
            self._flag(
                node,
                "wallclock",
                f"{'.'.join(chain)}() in a numerics path; timing belongs in"
                f" repro.obs (perf_counter), numerics must be replayable",
            )
        if self.numerics and len(chain) >= 2:
            if (
                chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and (len(chain) == 2 or chain[-1] not in RNG_CONSTRUCTORS)
            ):
                self._flag(
                    node,
                    "rng",
                    "implicit global numpy RNG in a numerics path; thread a"
                    " seeded np.random.Generator through instead",
                )
            elif (
                chain[0] in self._random_aliases
                and chain[-1] not in RNG_CONSTRUCTORS
            ):
                self._flag(
                    node,
                    "rng",
                    "stdlib random.* in a numerics path; thread a seeded"
                    " np.random.Generator through instead",
                )
        if (
            self.hot
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            arg = node.args[0]
            arg_chain = _attr_chain(arg)
            if arg_chain in (
                ["float"],
                ["np", "float64"],
                ["numpy", "float64"],
                ["np", "double"],
                ["numpy", "double"],
            ):
                self._flag(
                    node,
                    "float64-upcast",
                    "astype to float64 in a hot-path module doubles every"
                    " byte moved; accumulate in float32",
                )
        if (
            self.memscoped
            and len(chain) == 2
            and chain[0] in ("np", "numpy")
            and chain[1] in ("empty", "zeros")
        ):
            self._flag(
                node,
                "rawalloc",
                f"raw np.{chain[1]} in a memscope-instrumented module is"
                f" invisible to memory attribution; use"
                f" repro.obs.memscope.attributed_{chain[1]} (or mark a"
                f" transient temp with '# lint: allow-rawalloc')",
            )
        self.generic_visit(node)

    # --- attributes (np.float64 references in hot modules) -----------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.hot:
            chain = _attr_chain(node)
            if chain in (
                ["np", "float64"],
                ["numpy", "float64"],
                ["np", "double"],
                ["numpy", "double"],
            ):
                self._flag(
                    node,
                    "float64-upcast",
                    "float64 dtype in a hot-path module; the offload/comm"
                    " hot path is fp16/fp32 only",
                )
                return  # do not double-count the inner chain
        self.generic_visit(node)

    # --- dtype=float keywords in hot modules ------------------------------------
    def visit_keyword(self, node: ast.keyword) -> None:  # type: ignore[override]
        if (
            self.hot
            and node.arg == "dtype"
            and isinstance(node.value, ast.Name)
            and node.value.id == "float"
        ):
            self._flag(
                node.value,
                "float64-upcast",
                "dtype=float is float64; hot-path buffers are fp16/fp32",
            )
        self.generic_visit(node)

    # --- exception handlers (swallowed OSError in I/O modules) -------------------
    @staticmethod
    def _handler_catches_oserror(handler: ast.ExceptHandler) -> bool:
        exc = handler.type
        names: list[ast.AST]
        if exc is None:  # bare except swallows OSError too
            return True
        names = list(exc.elts) if isinstance(exc, ast.Tuple) else [exc]
        for n in names:
            chain = _attr_chain(n)
            if chain and chain[-1] in _OS_ERROR_NAMES:
                return True
        return False

    @staticmethod
    def _handler_body_is_empty(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / bare ellipsis
            return False
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if (
            self.io_module
            and self._handler_catches_oserror(node)
            and self._handler_body_is_empty(node)
        ):
            self._flag(
                node,
                "swallowed-oserror",
                "empty handler swallows a device error on the storage path"
                " (silent training corruption); retry, count, degrade, or"
                " let it reach a recovery tier (see repro.faults)",
            )
        self.generic_visit(node)

    # --- assignments (writeable flips) -----------------------------------------
    def _check_writeable_target(self, target: ast.AST, node: ast.AST) -> None:
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "writeable"
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "flags"
        ):
            self._flag(
                node,
                "writeable-flip",
                "re-enabling .flags.writeable defeats read-only zero-copy"
                " views; only repro.comm owns that protocol",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            not self.in_comm
            and not self.in_check
            and isinstance(node.value, ast.Constant)
            and node.value.value is True
        ):
            for target in node.targets:
                self._check_writeable_target(target, node)
        self.generic_visit(node)


def lint_source(source: str, rel_path: str) -> list[LintFinding]:
    """Lint one module's source text (unit of both the CLI and the tests)."""
    tree = ast.parse(source, filename=rel_path)
    visitor = _Visitor(rel_path)
    visitor.visit(tree)
    lines = source.splitlines()
    kept = []
    for f in visitor.findings:
        line_text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        if f"# lint: allow-{f.rule}" in line_text:
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def default_src_root() -> str:
    """The ``src/`` directory this installation of ``repro`` lives in."""
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )


def default_baseline_path() -> str:
    return os.path.join(
        os.path.dirname(default_src_root()), "tools", "lint_baseline.json"
    )


def collect(src_root: Optional[str] = None) -> list[LintFinding]:
    """Lint every ``repro`` module under ``src_root``."""
    root = src_root or default_src_root()
    findings: list[LintFinding] = []
    pkg_root = os.path.join(root, "repro")
    for dirpath, dirnames, filenames in os.walk(pkg_root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8") as fh:
                findings.extend(lint_source(fh.read(), rel))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --- baseline -------------------------------------------------------------------
def load_baseline(path: Optional[str] = None) -> dict[str, dict[str, int]]:
    """``{rel_path: {rule: allowed_count}}`` — pre-existing pinned debt."""
    baseline_path = path or default_baseline_path()
    if not os.path.exists(baseline_path):
        return {}
    with open(baseline_path, encoding="utf-8") as fh:
        data = json.load(fh)
    return {k: dict(v) for k, v in data.get("allow", {}).items()}


def write_baseline(
    findings: Sequence[LintFinding], path: Optional[str] = None
) -> str:
    """Pin the current findings as the allowed baseline."""
    allow: dict[str, dict[str, int]] = {}
    for f in findings:
        allow.setdefault(f.path, {})
        allow[f.path][f.rule] = allow[f.path].get(f.rule, 0) + 1
    baseline_path = path or default_baseline_path()
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump({"version": 1, "allow": allow}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return baseline_path


def apply_baseline(
    findings: Sequence[LintFinding], baseline: dict[str, dict[str, int]]
) -> list[LintFinding]:
    """Findings beyond the pinned allowance (earliest lines absorbed first)."""
    budget = {
        (path, rule): count
        for path, rules in baseline.items()
        for rule, count in rules.items()
    }
    new: list[LintFinding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        key = (f.path, f.rule)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            continue
        new.append(f)
    return new


@dataclass(frozen=True)
class LintReport:
    """Outcome of a full lint run."""

    all_findings: tuple[LintFinding, ...]
    new_findings: tuple[LintFinding, ...]

    @property
    def clean(self) -> bool:
        return not self.new_findings


def run_lint(
    src_root: Optional[str] = None, baseline_path: Optional[str] = None
) -> LintReport:
    """Lint ``src_root`` and subtract the pinned baseline."""
    findings = collect(src_root)
    baseline = load_baseline(baseline_path)
    return LintReport(
        all_findings=tuple(findings),
        new_findings=tuple(apply_baseline(findings, baseline)),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (see ``tools/lint_repro.py``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="AST lint for repro invariants (repro.check.lint)",
    )
    parser.add_argument(
        "--root", default=None, help="src directory (default: auto-detect)"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON (default: tools/lint_baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="pin the current findings as the new baseline",
    )
    parser.add_argument(
        "--show-all",
        action="store_true",
        help="also print baseline-absorbed findings",
    )
    args = parser.parse_args(argv)

    if args.update_baseline:
        findings = collect(args.root)
        path = write_baseline(findings, args.baseline)
        print(f"pinned {len(findings)} finding(s) to {path}")
        return 0

    report = run_lint(args.root, args.baseline)
    shown = report.all_findings if args.show_all else report.new_findings
    for f in shown:
        print(f.format())
    absorbed = len(report.all_findings) - len(report.new_findings)
    print(
        f"{len(report.new_findings)} new finding(s),"
        f" {absorbed} absorbed by baseline"
    )
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via tools/
    raise SystemExit(main())
