"""ZeroSan: runtime state-machine sanitizer for the parameter lifecycle.

ZeRO-3 correctness rests on a strict per-parameter protocol — partitioned →
gathering → available → released — and on the zero-copy discipline around
reusable gather buffers (collective results are shared read-only views; the
owning buffer must not be mutated while shares are live).  Violations in
DeepSpeed surface as silent numeric drift several steps later; ZeroSan
detects them at the point of cause instead:

* **use-after-release** — releasing a parameter installs a tripwire
  placeholder as ``param.data``; any ufunc that touches it reports with the
  parameter's name and the operation that fired.
* **double-gather** — a gather event for a parameter whose shadow state is
  already resident means the real ``Parameter.state`` was corrupted (the
  partitioner's own idempotence check bypassed).
* **gather-leak / stuck-gather at step boundaries** — every parameter the
  coordinator manages must be back to PARTITIONED when a step ends.
* **shared-view-write** — collectives register their output buffer in a
  shared-buffer table; :meth:`ZeroSan.check_write` flags writes into memory
  overlapping a registered buffer (``np.shares_memory``) until the owner
  reclaims it at the next collective.

Event sources: :class:`~repro.core.partition.ParameterPartitioner` emits
partition/gather/release events, :class:`~repro.comm.group.ProcessGroup`
registers and reclaims shared buffers, and the engine emits the step
boundary with the coordinator's parameter ids.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


class _ReleasedArray(np.ndarray):
    """Tripwire installed as ``param.data`` after release.

    Shaped like the normal empty placeholder, so size/shape/repr queries
    behave; any *ufunc* application (arithmetic, matmul, comparisons — i.e.
    compute on a released parameter) reports use-after-release.
    """

    def __array_finalize__(self, obj) -> None:
        if obj is not None:
            self._sanitizer = getattr(obj, "_sanitizer", None)
            self._label = getattr(obj, "_label", "?")

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        sanitizer = getattr(self, "_sanitizer", None)
        if sanitizer is not None:
            sanitizer.on_released_touch(
                getattr(self, "_label", "?"), f"{ufunc.__name__}.{method}"
            )
        # record mode falls through: behave as the plain empty placeholder
        cast = tuple(
            np.asarray(x) if isinstance(x, _ReleasedArray) else x for x in inputs
        )
        return getattr(ufunc, method)(*cast, **kwargs)

    def __reduce__(self):
        # placeholders must survive pickling/deepcopy as plain empty arrays
        return (np.empty, ((0,), self.dtype.str))


class ZeroSan:
    """The lifecycle state machine; owned by a ``CheckContext``."""

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        # shadow state per parameter unique_id: "gathering" | "available";
        # absence means partitioned (or never partitioned)
        self._open: dict[int, str] = {}
        self._labels: dict[int, str] = {}
        # shared-buffer table: id(buffer) -> buffer registered by a
        # zero-copy collective; reclaimed when the owner reuses it
        self._shared: dict[int, np.ndarray] = {}

    # --- parameter lifecycle events ------------------------------------------
    def _label(self, param) -> str:
        name = getattr(param, "name", None)
        return name or f"param#{param.unique_id}"

    def on_partition(self, param) -> None:
        self._labels[param.unique_id] = self._label(param)
        self._open.pop(param.unique_id, None)

    def on_gather_begin(self, param) -> None:
        state = self._open.get(param.unique_id)
        self._labels[param.unique_id] = self._label(param)
        if state is not None:
            self._ctx.report(
                "double-gather",
                f"{self._label(param)} gathered while shadow state is"
                f" {state!r}: its PartitionState was corrupted outside the"
                f" partitioner",
                param=self._label(param),
                shadow_state=state,
            )
        self._open[param.unique_id] = "gathering"

    def on_gather_end(self, param) -> None:
        self._open[param.unique_id] = "available"

    def on_release(self, param) -> None:
        state = self._open.pop(param.unique_id, None)
        if state is None:
            self._ctx.report(
                "release-without-gather",
                f"{self._label(param)} released but ZeroSan never saw it"
                f" gathered",
                param=self._label(param),
            )

    def on_released_touch(self, label: str, op: str) -> None:
        self._ctx.report(
            "use-after-release",
            f"compute ({op}) touched released parameter {label}; gather it"
            f" before use",
            param=label,
            op=op,
        )

    def on_step_boundary(self, param_ids: Optional[Iterable[int]] = None) -> None:
        """Every coordinated parameter must be re-partitioned between steps."""
        scope = None if param_ids is None else set(param_ids)
        for uid in sorted(self._open):
            if scope is not None and uid not in scope:
                continue
            state = self._open.pop(uid)
            label = self._labels.get(uid, f"param#{uid}")
            if state == "gathering":
                self._ctx.report(
                    "stuck-gather",
                    f"{label} left mid-gather at a step boundary (an"
                    f" exception interrupted its gather?)",
                    param=label,
                )
            else:
                self._ctx.report(
                    "gather-leak",
                    f"{label} still resident at a step boundary: a release"
                    f" hook was skipped, so its full tensor leaks",
                    param=label,
                )

    def placeholder(self, param, dtype) -> np.ndarray:
        """The tripwire array to install as ``param.data`` on release."""
        arr = np.empty(0, dtype=dtype).view(_ReleasedArray)
        arr._sanitizer = self
        arr._label = self._label(param)
        return arr

    # --- shared zero-copy buffers ---------------------------------------------
    def register_shared(self, buffer: np.ndarray, views) -> None:
        """A collective just returned ``views`` aliasing ``buffer``."""
        for v in views:
            if v is not None and v.flags.writeable:
                self._ctx.report(
                    "writable-shared-view",
                    "a zero-copy collective returned a writable view of its"
                    " shared output buffer",
                    numel=int(v.size),
                )
        self._shared[id(buffer)] = buffer

    def reclaim(self, buffer: np.ndarray) -> None:
        """The owner is reusing ``buffer``; outstanding shares are now void."""
        self._shared.pop(id(buffer), None)

    def check_write(self, array: np.ndarray) -> None:
        """Report if writing ``array`` would alias a live shared buffer."""
        for buf in self._shared.values():
            if np.shares_memory(array, buf):
                self._ctx.report(
                    "shared-view-write",
                    "write overlaps a buffer still shared by a zero-copy"
                    " collective; copy the view or reclaim the buffer first",
                    numel=int(array.size),
                )
                return
