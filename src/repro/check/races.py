"""Happens-before race detector for the threaded aio engine.

The async I/O engine (``repro.nvme.aio``) executes reads and writes on a
thread pool; its contract is the pinned-buffer discipline of real async
I/O: between submit and completion, the caller must not touch the buffer,
and the only synchronization edge is an explicit completion wait
(``IORequest.wait`` / ``synchronize``).

This detector models that contract as a per-buffer clock: every in-flight
request is an outstanding event on the memory it touches (and on the file
range it covers); ``wait`` joins the event into the caller's timeline and
retires it.  A new submit (or a pinned-buffer release) that overlaps an
outstanding event *without* such a join is a race:

* ``aio-double-submit`` — two in-flight reads landing in overlapping
  buffer memory (whichever finishes last wins, nondeterministically);
* ``aio-race`` — an in-flight read racing a write of the same memory, or
  overlapping file ranges with a writer involved (torn bytes);
* ``buffer-release-while-inflight`` — a pinned buffer returned to the pool
  (hence eligible for reuse) while I/O still targets it.

Overlap is established with ``np.shares_memory`` so views, pool slices and
dtype reinterpretations are all caught.  Requests whose completion is
already observable (``done()``) are retired lazily: the bytes have landed,
so later submits are ordered after them by the engine's own tracking.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass
class _PendingOp:
    """One outstanding I/O event on the per-buffer clock."""

    key: int  # request identity (joins retire by key)
    writes_buffer: bool  # True: a read landing in memory; False: a write reading it
    buffer: np.ndarray
    path: Optional[str]
    file_lo: int
    file_hi: int
    done: Optional[Callable[[], bool]]

    def describe(self) -> str:
        verb = "read into" if self.writes_buffer else "write from"
        where = f" ({self.path}[{self.file_lo}:{self.file_hi}])" if self.path else ""
        return f"{verb} {self.buffer.nbytes}B buffer{where}"


class AioRaceDetector:
    """Tracks in-flight I/O events; owned by a ``CheckContext``."""

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._ops: list[_PendingOp] = []
        self._lock = threading.Lock()

    # --- event intake -----------------------------------------------------------
    def on_submit_read(
        self,
        key: int,
        out: np.ndarray,
        *,
        path: Optional[str] = None,
        file_lo: int = 0,
        file_hi: int = 0,
        done: Optional[Callable[[], bool]] = None,
    ) -> None:
        """An async read was submitted: I/O will *write into* ``out``."""
        self._admit(
            _PendingOp(key, True, out, path, file_lo, file_hi, done)
        )

    def on_submit_write(
        self,
        key: int,
        src: np.ndarray,
        *,
        path: Optional[str] = None,
        file_lo: int = 0,
        file_hi: int = 0,
        done: Optional[Callable[[], bool]] = None,
    ) -> None:
        """An async write was submitted: I/O will *read from* ``src``."""
        self._admit(
            _PendingOp(key, False, src, path, file_lo, file_hi, done)
        )

    def on_wait(self, key: int) -> None:
        """A completion wait: the join edge that retires the request."""
        with self._lock:
            self._ops = [op for op in self._ops if op.key != key]

    def on_buffer_release(self, storage: np.ndarray) -> None:
        """A pinned buffer went back to the pool; must have no pending I/O."""
        with self._lock:
            self._prune()
            conflict = self._find_overlap(storage)
        if conflict is not None:
            self._ctx.report(
                "buffer-release-while-inflight",
                f"pinned buffer released while an in-flight"
                f" {conflict.describe()} still targets it; wait on the"
                f" request before release",
                nbytes=int(storage.nbytes),
            )

    # --- conflict detection -----------------------------------------------------
    def _admit(self, op: _PendingOp) -> None:
        with self._lock:
            self._prune()
            conflict = self._conflict_for(op)
            self._ops.append(op)
        if conflict is None:
            return
        kind, earlier = conflict
        self._ctx.report(
            kind,
            f"new {op.describe()} overlaps in-flight {earlier.describe()}"
            f" with no completion wait between them",
            new=op.describe(),
            pending=earlier.describe(),
        )

    def _prune(self) -> None:
        self._ops = [
            op for op in self._ops if op.done is None or not op.done()
        ]

    def _find_overlap(self, array: np.ndarray) -> Optional[_PendingOp]:
        for op in self._ops:
            if np.shares_memory(array, op.buffer):
                return op
        return None

    def _conflict_for(self, op: _PendingOp) -> Optional[tuple[str, _PendingOp]]:
        for other in self._ops:
            if other.key == op.key:
                continue
            # memory overlap: any pair involving a buffer-writer races
            if np.shares_memory(op.buffer, other.buffer):
                if op.writes_buffer and other.writes_buffer:
                    return "aio-double-submit", other
                if op.writes_buffer or other.writes_buffer:
                    return "aio-race", other
            # file-range overlap on the same path with a file-writer involved
            if (
                op.path is not None
                and op.path == other.path
                and op.file_lo < other.file_hi
                and other.file_lo < op.file_hi
            ):
                op_writes_file = not op.writes_buffer
                other_writes_file = not other.writes_buffer
                if op_writes_file or other_writes_file:
                    return "aio-race", other
        return None

    @property
    def inflight(self) -> int:
        """Outstanding (unretired) events, for tests."""
        with self._lock:
            self._prune()
            return len(self._ops)
