"""The `repro check-static` driver: extract, verify, and report.

Runs the full train-demo matrix — stage {2,3} x world {1,2,4} x
{loop,mp} — through the symbolic extractor, model-checks every IR, and
cross-checks loop-vs-mp collective accounting for each configuration
(the echo protocol must make a rank process fingerprint exactly the
stream the in-process oracle issues).  Optionally folds in the
repo-wide lint pass so one command answers "is the schedule provably
safe *and* is the source clean".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.check.static.extract import ScheduleSpec, extract_schedule
from repro.check.static.ir import ScheduleIR, StaticFinding
from repro.check.static.verify import verify_schedule

#: The acceptance matrix: every train-demo configuration.
DEFAULT_MATRIX: tuple[ScheduleSpec, ...] = tuple(
    ScheduleSpec(world=world, stage=stage, backend=backend)
    for stage in (2, 3)
    for world in (1, 2, 4)
    for backend in ("loop", "mp")
)


@dataclass
class ConfigVerdict:
    """One matrix cell: the IR's vital signs plus its findings."""

    spec: ScheduleSpec
    collectives: int
    rendezvous: int
    findings: list[StaticFinding]

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass
class StaticReport:
    """Everything ``repro check-static`` / ``tools/static_gate.py`` print."""

    verdicts: list[ConfigVerdict] = field(default_factory=list)
    lint_findings: list = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def findings(self) -> list[StaticFinding]:
        return [f for v in self.verdicts for f in v.findings]

    @property
    def ok(self) -> bool:
        return not self.findings and not self.lint_findings

    def render(self) -> str:
        from repro.utils.tables import Table

        t = Table(
            ["schedule", "collectives", "rendezvous", "verdict"],
            title="Static SPMD schedule verification",
        )
        for v in self.verdicts:
            t.add_row(
                [
                    v.spec.label(),
                    str(v.collectives),
                    str(v.rendezvous),
                    "proved" if v.ok else f"{len(v.findings)} finding(s)",
                ]
            )
        lines = [t.render()]
        for f in self.findings:
            lines.append(f"  {f.format()}")
        if self.lint_findings:
            lines.append(f"lint: {len(self.lint_findings)} new finding(s)")
            for f in self.lint_findings:
                lines.append(f"  {f.path}:{f.line}: {f.rule}: {f.message}")
        else:
            lines.append("lint: clean")
        lines.append(f"wall: {self.wall_s:.1f}s")
        return "\n".join(lines)


def _parity_findings(
    loop_ir: ScheduleIR, mp_ir: ScheduleIR, label: str
) -> list[StaticFinding]:
    """Loop-vs-mp accounting parity for one (stage, world) cell.

    The mp backend's correctness story rests on every rank process
    fingerprinting the same facade stream the loop oracle issues (the
    accounting echo).  Comparing per-op call counts between the two IRs
    checks that invariant without running a single rank process.
    """
    loop_counts = loop_ir.op_counts()
    mp_counts = mp_ir.op_counts()
    if loop_counts == mp_counts:
        return []
    return [
        StaticFinding(
            "static-collective-divergence",
            f"{label}: mp rank schedule disagrees with the loop oracle on"
            f" collective call counts: loop={loop_counts} mp={mp_counts}"
            " — the accounting echo would desynchronize the digests",
            details={"loop": loop_counts, "mp": mp_counts},
        )
    ]


def run_static_check(
    matrix: Optional[list[ScheduleSpec]] = None, *, lint: bool = True
) -> StaticReport:
    """Extract + verify every matrix cell; optionally lint the repo."""
    t0 = time.perf_counter()
    report = StaticReport()
    specs = list(DEFAULT_MATRIX if matrix is None else matrix)
    loop_irs: dict[tuple[int, int], ScheduleIR] = {}
    mp_irs: dict[tuple[int, int], ScheduleIR] = {}
    for spec in specs:
        ir = extract_schedule(spec)
        findings = verify_schedule(ir)
        sched = ir.ranks[0]
        report.verdicts.append(
            ConfigVerdict(
                spec=spec,
                collectives=len(sched.collectives()),
                rendezvous=len(sched.rendezvous()),
                findings=findings,
            )
        )
        cell = (spec.stage, spec.world)
        (loop_irs if spec.backend == "loop" else mp_irs)[cell] = ir

    for cell in sorted(set(loop_irs) & set(mp_irs)):
        stage, world = cell
        parity = _parity_findings(
            loop_irs[cell], mp_irs[cell], f"stage{stage}-w{world}"
        )
        for v in report.verdicts:
            if (
                v.spec.stage == stage
                and v.spec.world == world
                and v.spec.backend == "mp"
            ):
                v.findings.extend(parity)
                break

    if lint:
        from repro.check.lint import run_lint

        report.lint_findings = list(run_lint().new_findings)
    report.wall_s = time.perf_counter() - t0
    return report
