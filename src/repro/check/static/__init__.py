"""Static SPMD schedule verification (`repro check-static`).

Proves properties of the communication schedule *before* a rank process
ever launches, complementing the runtime checkers beside it in
:mod:`repro.check`:

* :mod:`~repro.check.static.extract` — a symbolic dry-run interpreter
  that executes one training step per rank with shape-only payloads and
  emits a typed per-rank schedule IR;
* :mod:`~repro.check.static.verify` — cross-rank model checking over
  that IR: collective matching, deadlock freedom via the rendezvous
  happens-before graph (including abort/REPLAY/TERMINAL release edges),
  and lock discipline;
* :mod:`~repro.check.static.driver` — the matrix runner behind the
  ``repro check-static`` CLI and ``tools/static_gate.py``.

The interprocedural source passes (`rank-divergent-collective`,
`readonly-view-escape`, `shm-use-after-unlink`) live in
:mod:`repro.check.lint` with the pattern rules they extend.

See ``docs/checking.md`` ("Static verification") for the IR format and
the guarantees/incompleteness ledger.
"""

from repro.check.static.ir import (
    EVENT_KINDS,
    RENDEZVOUS_KINDS,
    STATIC_FINDING_KINDS,
    RankSchedule,
    ScheduleBuilder,
    ScheduleEvent,
    ScheduleIR,
    StaticFinding,
)
from repro.check.static.record import (
    ScheduleRecorder,
    get_static_recorder,
    install_static_recorder,
    use_static_recorder,
)
from repro.check.static.verify import (
    check_collective_matching,
    check_deadlock_freedom,
    check_lock_discipline,
    verify_schedule,
)
from repro.check.static.extract import (
    ScheduleSpec,
    SymbolicBackend,
    extract_pair,
    extract_schedule,
)
from repro.check.static.driver import (
    DEFAULT_MATRIX,
    ConfigVerdict,
    StaticReport,
    run_static_check,
)

__all__ = [
    "EVENT_KINDS",
    "RENDEZVOUS_KINDS",
    "STATIC_FINDING_KINDS",
    "RankSchedule",
    "ScheduleBuilder",
    "ScheduleEvent",
    "ScheduleIR",
    "StaticFinding",
    "ScheduleRecorder",
    "get_static_recorder",
    "install_static_recorder",
    "use_static_recorder",
    "check_collective_matching",
    "check_deadlock_freedom",
    "check_lock_discipline",
    "verify_schedule",
    "ScheduleSpec",
    "SymbolicBackend",
    "extract_pair",
    "extract_schedule",
    "DEFAULT_MATRIX",
    "ConfigVerdict",
    "StaticReport",
    "run_static_check",
]
