"""Typed per-rank schedule IR for the static SPMD verifier.

A :class:`ScheduleIR` is what the symbolic dry-run interpreter
(:mod:`repro.check.static.extract`) emits and what the model checker
(:mod:`repro.check.static.verify`) consumes: for every rank, the ordered
list of *schedule events* its one training step would issue —
collectives, shm ring chunk rendezvous, barriers, lock spans, and the
abort/recover edges of the failure protocol.

The IR is deliberately tiny and value-free: an event records *what* a
rank communicates (op, dtypes, element counts, chunk sequence numbers),
never the data itself.  Two ranks with equal event streams are
guaranteed to agree on every fingerprint the runtime transport would
hash, so static matching over the IR predicts the runtime
``CommDivergence`` verdicts exactly.

:class:`ScheduleBuilder` constructs IRs by hand — used by the
deliberate-bug corpus under ``tests/check_corpus/static/`` and by unit
tests that need a schedule the real engine would never emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every kind a ScheduleEvent may carry.
EVENT_KINDS = (
    "collective",  # facade/backend fingerprint: op + per-rank (dtype, numel)
    "barrier",  # explicit synchronization point (loop mode, corpus)
    "chunk",  # one shm ring slot rendezvous (seq, nbytes)
    "lock_acquire",  # enter a named critical section
    "lock_release",  # leave it
    "abort",  # signal_abort: REPLAY (terminal=False) or TERMINAL
    "recover",  # recover_after_abort: the epoch-bump rendezvous
)

#: Event kinds on which a rank *blocks* until every peer arrives.
RENDEZVOUS_KINDS = ("barrier", "chunk", "recover")

#: Finding kinds the static verifier can report (disjoint from the
#: runtime ``VIOLATION_KINDS`` namespace on purpose: a static finding is
#: a prediction about execution, not an observation of one).
STATIC_FINDING_KINDS = (
    "static-collective-divergence",
    "static-collective-shape-mismatch",
    "static-deadlock",
    "static-lock-rendezvous",
)


@dataclass(frozen=True)
class ScheduleEvent:
    """One schedule action a rank performs, in program order."""

    kind: str
    op: str = ""  # collective op name ("allgather", "exchange", ...)
    payload: tuple = ()  # ((dtype, numel), ...) as the call saw it
    seq: int = -1  # chunk sequence number (kind "chunk")
    nbytes: int = 0  # chunk payload bytes (kind "chunk")
    lock: str = ""  # lock name (lock_acquire / lock_release)
    terminal: bool = False  # abort tier (kind "abort")

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown schedule event kind {self.kind!r};"
                f" expected one of {EVENT_KINDS}"
            )

    def describe(self) -> str:
        """Human-readable one-liner, mirroring the runtime fingerprints."""
        if self.kind == "collective":
            body = ", ".join(f"{d} x{n}" for d, n in self.payload) or "-"
            return f"{self.op}[{body}]"
        if self.kind == "chunk":
            return f"chunk[seq={self.seq}, {self.nbytes}B]"
        if self.kind == "barrier":
            return "barrier"
        if self.kind in ("lock_acquire", "lock_release"):
            verb = "acquire" if self.kind == "lock_acquire" else "release"
            return f"{verb}({self.lock})"
        if self.kind == "abort":
            return f"abort[{'TERMINAL' if self.terminal else 'REPLAY'}]"
        return "recover"


@dataclass(frozen=True)
class RankSchedule:
    """The ordered event stream one rank would execute."""

    rank: int
    events: tuple[ScheduleEvent, ...]

    def collectives(self) -> list[ScheduleEvent]:
        return [e for e in self.events if e.kind == "collective"]

    def rendezvous(self) -> list[ScheduleEvent]:
        return [e for e in self.events if e.kind in RENDEZVOUS_KINDS]


@dataclass(frozen=True)
class ScheduleIR:
    """Per-rank schedules for one configuration, ready to verify."""

    world: int
    ranks: tuple[RankSchedule, ...]
    mode: str = "mp"  # "loop" | "mp"
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.ranks) != self.world:
            raise ValueError(
                f"ScheduleIR world={self.world} but {len(self.ranks)}"
                " rank schedules supplied"
            )

    def op_counts(self, rank: int = 0) -> dict[str, int]:
        """Facade-collective call counts (transport ops excluded)."""
        counts: dict[str, int] = {}
        for e in self.ranks[rank].collectives():
            if e.op in ("exchange", "step_sync"):
                continue
            counts[e.op] = counts.get(e.op, 0) + 1
        return counts


@dataclass
class StaticFinding:
    """One defect the static verifier predicts, pre-execution."""

    kind: str
    message: str
    rank: int | None = None
    index: int | None = None
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in STATIC_FINDING_KINDS:
            raise ValueError(
                f"unknown static finding kind {self.kind!r};"
                f" expected one of {STATIC_FINDING_KINDS}"
            )

    def format(self) -> str:
        where = "" if self.rank is None else f" [rank {self.rank}]"
        return f"{self.kind}{where}: {self.message}"


class ScheduleBuilder:
    """Hand-construct a :class:`ScheduleIR` event by event.

    ``rank=None`` appends the event to every rank — the common case for
    symmetric schedules; pass a concrete rank to model divergence.
    """

    def __init__(self, world: int, *, mode: str = "mp", label: str = ""):
        if world < 1:
            raise ValueError("world must be >= 1")
        self.world = world
        self.mode = mode
        self.label = label
        self._events: list[list[ScheduleEvent]] = [[] for _ in range(world)]

    def _append(self, rank: int | None, event: ScheduleEvent) -> "ScheduleBuilder":
        targets = range(self.world) if rank is None else (rank,)
        for r in targets:
            self._events[r].append(event)
        return self

    def collective(
        self,
        rank: int | None,
        op: str,
        dtype: str = "float32",
        numel: int = 0,
    ) -> "ScheduleBuilder":
        return self._append(
            rank,
            ScheduleEvent("collective", op=op, payload=((dtype, numel),)),
        )

    def call(self, op: str, payloads: list[tuple[str, int]]) -> "ScheduleBuilder":
        """One facade call carrying per-rank payloads, seen by all ranks."""
        return self._append(
            None, ScheduleEvent("collective", op=op, payload=tuple(payloads))
        )

    def barrier(self, rank: int | None = None) -> "ScheduleBuilder":
        return self._append(rank, ScheduleEvent("barrier"))

    def chunk(
        self, rank: int | None, seq: int, nbytes: int = 0
    ) -> "ScheduleBuilder":
        return self._append(rank, ScheduleEvent("chunk", seq=seq, nbytes=nbytes))

    def lock_acquire(self, rank: int | None, name: str) -> "ScheduleBuilder":
        return self._append(rank, ScheduleEvent("lock_acquire", lock=name))

    def lock_release(self, rank: int | None, name: str) -> "ScheduleBuilder":
        return self._append(rank, ScheduleEvent("lock_release", lock=name))

    def abort(
        self, rank: int | None, *, terminal: bool = False
    ) -> "ScheduleBuilder":
        return self._append(rank, ScheduleEvent("abort", terminal=terminal))

    def recover(self, rank: int | None = None) -> "ScheduleBuilder":
        return self._append(rank, ScheduleEvent("recover"))

    def build(self) -> ScheduleIR:
        return ScheduleIR(
            world=self.world,
            ranks=tuple(
                RankSchedule(rank=r, events=tuple(evts))
                for r, evts in enumerate(self._events)
            ),
            mode=self.mode,
            label=self.label,
        )
