"""Schedule extraction: a symbolic dry-run of one training step per rank.

The extractor runs the *real* engine — coordinator, partitioner, bucket
store, offload path — against a :class:`SymbolicBackend` that moves no
bytes between processes.  The backend presents itself as a non-local
(``all_local=False``) single-rank endpoint, so the engine takes its
genuine distributed code path: one local rank turn, accounting echoes
for the peers, per-parameter gradient exchanges, and the step-boundary
rendezvous.  Instead of touching a shared ring, the backend

* records every fingerprint fold (``note_fingerprint``) as a
  ``collective`` schedule event — the exact stream the runtime CRC
  digest hashes, including the ``exchange``/``step_sync`` transport ops;
* models the shm ring chunking arithmetic of
  :meth:`repro.comm.mp_backend.MultiprocBackend.exchange` — one
  ``chunk`` rendezvous event per slot-capacity chunk, a zero-byte
  payload costing exactly one chunk — without publishing anything;
* synthesizes peer payloads as copies of the local one.  With
  ``loss_scale=1.0`` the engine's control flow is a function of shapes
  and ordering only, so the synthetic values cannot perturb the
  schedule (the loop↔mp parity check in the driver guards this
  assumption).

Loop-mode extraction needs no special backend at all: the recorder
hooks in :class:`~repro.comm.group.ProcessGroup` capture the facade
stream of an ordinary in-process run.

Heavy imports (engine, workloads) stay function-local so importing
``repro.check`` never drags the full stack in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro.comm.backend import LoopBackend
from repro.check.static.ir import ScheduleIR
from repro.check.static.record import ScheduleRecorder, use_static_recorder

#: Default shm ring slot capacity mirrored by the symbolic chunk model
#: (must match ``repro.comm.launcher``'s ring construction).
DEFAULT_SLOT_CAPACITY = 1 << 20


@dataclass(frozen=True)
class ScheduleSpec:
    """One extraction configuration (a miniature train-demo workload)."""

    world: int = 2
    stage: int = 3
    backend: str = "mp"  # "loop" | "mp"
    offload: str = "nvme"  # train-demo default
    hidden: int = 16
    layers: int = 1
    seq: int = 4
    bsz_per_rank: int = 1
    vocab: int = 32

    def label(self) -> str:
        return f"stage{self.stage}-w{self.world}-{self.backend}"


class SymbolicBackend(LoopBackend):
    """A shape-only stand-in for one mp rank endpoint.

    List collectives stay the loop backend's pure functions (the engine
    holds replicated state, exactly like a real mp rank process); the
    cross-process primitives record schedule events instead of touching
    shared memory.
    """

    name = "symbolic"

    def __init__(
        self,
        world_size: int,
        rank: int,
        recorder: ScheduleRecorder,
        *,
        slot_capacity: int = DEFAULT_SLOT_CAPACITY,
    ) -> None:
        super().__init__(world_size)
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world {world_size}")
        self._rank = rank
        self._recorder = recorder
        self.slot_capacity = int(slot_capacity)
        self._seq = 0

    # --- locality: present as one non-local rank endpoint -----------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def all_local(self) -> bool:
        return False

    def is_local(self, rank: int) -> bool:
        return rank == self._rank

    # --- recording seams --------------------------------------------------
    def note_fingerprint(self, op, dtypes, numels) -> None:
        super().note_fingerprint(op, dtypes, numels)
        self._recorder.on_collective(op, list(dtypes), list(numels))

    def exchange(self, payload: np.ndarray) -> list[np.ndarray]:
        arr = np.ascontiguousarray(payload)
        flat = arr.reshape(-1)
        nbytes = int(flat.nbytes)
        self.note_fingerprint("exchange", [str(flat.dtype)], [int(flat.size)])
        sent = 0
        while True:  # same loop shape as MultiprocBackend.exchange:
            n = min(self.slot_capacity, nbytes - sent)  # zero bytes = 1 chunk
            self._recorder.on_chunk(seq=self._seq, nbytes=n)
            self._seq += 1
            sent += n
            if sent >= nbytes:
                break
        return [arr.copy() for _ in range(self.world_size)]

    _EMPTY = np.empty(0, dtype=np.uint8)

    def step_sync(self) -> None:
        self.note_fingerprint("step_sync", [], [])
        self.exchange(self._EMPTY)

    def signal_abort(self, terminal: bool = False) -> None:
        self._recorder.on_abort(terminal=terminal)

    def recover_after_abort(self) -> None:
        # mirrors the real recovery: seq and digest restart for the replay
        self._recorder.on_recover()
        self._seq = 0
        self._digest = 0


MutateHook = Callable[[LoopBackend, int], None]


def _run_one_step(spec: ScheduleSpec, backend, rec: ScheduleRecorder) -> None:
    from repro.workloads import MarkovCorpus, per_rank_batches
    from repro.workloads.calibrate import CalibSpec, build_engine

    cspec = CalibSpec(
        world=spec.world,
        steps=1,
        stage=spec.stage,
        offload=spec.offload,
        hidden=spec.hidden,
        layers=spec.layers,
        seq=spec.seq,
        bsz_per_rank=spec.bsz_per_rank,
        vocab=spec.vocab,
    )
    with use_static_recorder(rec):
        with build_engine(cspec, comm_backend=backend) as engine:
            data = per_rank_batches(
                MarkovCorpus(spec.vocab, seed=1),
                world_size=spec.world,
                bsz_per_rank=spec.bsz_per_rank,
                seq=spec.seq,
                seed=2,
            )
            engine.train_step(next(data))


def extract_schedule(
    spec: ScheduleSpec, *, mutate: Optional[MutateHook] = None
) -> ScheduleIR:
    """Dry-run ``spec`` and return the per-rank schedule IR.

    ``mutate(backend, rank)`` runs once per rank before its step — the
    fault-injection seam the cross-validation tests use to reproduce the
    runtime failure-protocol defects statically (e.g. an extra
    ``note_fingerprint`` on one rank, mirroring the divergent worker in
    ``tests/test_backend_equivalence.py``).
    """
    if spec.backend == "loop":
        rec = ScheduleRecorder(spec.world, rank=None)
        backend = LoopBackend(spec.world)
        if mutate is not None:
            mutate(backend, 0)
        _run_one_step(spec, backend, rec)
        return rec.build_ir(mode="loop", label=spec.label())
    if spec.backend != "mp":
        raise ValueError(f"unknown schedule backend {spec.backend!r}")

    schedules = []
    for rank in range(spec.world):
        rec = ScheduleRecorder(spec.world, rank=rank)
        backend = SymbolicBackend(spec.world, rank, rec)
        if mutate is not None:
            mutate(backend, rank)
        _run_one_step(spec, backend, rec)
        schedules.append(rec.rank_schedule(rank))
    return ScheduleIR(
        world=spec.world,
        ranks=tuple(schedules),
        mode="mp",
        label=spec.label(),
    )


def extract_pair(spec: ScheduleSpec) -> tuple[ScheduleIR, ScheduleIR]:
    """(loop, mp) IRs for the same workload — the parity-check input."""
    return (
        extract_schedule(replace(spec, backend="loop")),
        extract_schedule(replace(spec, backend="mp")),
    )
