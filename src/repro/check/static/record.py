"""Schedule recording: the hook side of the symbolic dry-run.

This module is intentionally import-light (stdlib + the IR only) because
the hot-path modules — ``repro.comm.group``, ``repro.nvme.buffers``,
``repro.core.bucket`` — import it at module load.  The pattern mirrors
the runtime checker plumbing in :mod:`repro.check.runtime`: a single
module-level recorder slot, a ``get_static_recorder()`` accessor whose
``None`` fast path costs one global read, and a context manager for
scoped installation.

Recording is single-threaded by design: events fired from worker
threads (e.g. the aio completion thread releasing a pinned buffer) are
dropped rather than interleaved into the issuing rank's program order —
cross-thread lock spans are a documented incompleteness of the verifier,
not schedule events.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.check.static.ir import RankSchedule, ScheduleEvent, ScheduleIR


class ScheduleRecorder:
    """Accumulates :class:`ScheduleEvent` streams during a dry run.

    Two shapes of use:

    * ``rank=None`` (loop mode): one in-process run executes every rank
      turn; each facade-level event is appended to *all* rank streams,
      exactly as the loop backend makes every rank observe it.
    * ``rank=r`` (mp mode): one symbolic per-rank run; every event is
      rank ``r``'s own, and the caller assembles the cross-rank IR from
      ``world`` separate recorders.
    """

    def __init__(self, world: int, *, rank: Optional[int] = None):
        if world < 1:
            raise ValueError("world must be >= 1")
        if rank is not None and not 0 <= rank < world:
            raise ValueError(f"rank {rank} out of range for world {world}")
        self.world = world
        self.rank = rank
        self._events: list[list[ScheduleEvent]] = [[] for _ in range(world)]
        self._thread = threading.get_ident()

    # -- internals ----------------------------------------------------
    def _append(self, event: ScheduleEvent) -> None:
        if threading.get_ident() != self._thread:
            return  # worker-thread events are out of rank program order
        if self.rank is None:
            for stream in self._events:
                stream.append(event)
        else:
            self._events[self.rank].append(event)

    # -- hook surface (called from instrumented hot paths) ------------
    def on_collective(
        self, op: str, dtypes: list[str], numels: list[int]
    ) -> None:
        payload = tuple(zip([str(d) for d in dtypes], [int(n) for n in numels]))
        self._append(ScheduleEvent("collective", op=op, payload=payload))

    def on_barrier(self) -> None:
        self._append(ScheduleEvent("barrier"))

    def on_chunk(self, seq: int, nbytes: int) -> None:
        self._append(ScheduleEvent("chunk", seq=int(seq), nbytes=int(nbytes)))

    def on_lock_acquire(self, name: str) -> None:
        self._append(ScheduleEvent("lock_acquire", lock=name))

    def on_lock_release(self, name: str) -> None:
        self._append(ScheduleEvent("lock_release", lock=name))

    def on_abort(self, *, terminal: bool) -> None:
        self._append(ScheduleEvent("abort", terminal=bool(terminal)))

    def on_recover(self) -> None:
        self._append(ScheduleEvent("recover"))

    # -- results ------------------------------------------------------
    def rank_schedule(self, rank: int) -> RankSchedule:
        return RankSchedule(rank=rank, events=tuple(self._events[rank]))

    def build_ir(self, *, mode: str, label: str = "") -> ScheduleIR:
        return ScheduleIR(
            world=self.world,
            ranks=tuple(self.rank_schedule(r) for r in range(self.world)),
            mode=mode,
            label=label,
        )


_recorder: Optional[ScheduleRecorder] = None


def get_static_recorder() -> Optional[ScheduleRecorder]:
    """The installed recorder, or None (the hot-path fast answer)."""
    return _recorder


def install_static_recorder(
    rec: Optional[ScheduleRecorder],
) -> Optional[ScheduleRecorder]:
    """Install ``rec`` globally; returns the previous recorder."""
    global _recorder
    prev = _recorder
    _recorder = rec
    return prev


class use_static_recorder:
    """Scoped installation: ``with use_static_recorder(rec): ...``."""

    def __init__(self, rec: ScheduleRecorder):
        self._rec = rec
        self._prev: Optional[ScheduleRecorder] = None

    def __enter__(self) -> ScheduleRecorder:
        self._prev = install_static_recorder(self._rec)
        return self._rec

    def __exit__(self, *exc) -> None:
        install_static_recorder(self._prev)
