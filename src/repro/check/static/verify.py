"""Cross-rank model checking over the schedule IR.

Three passes, mirroring the guarantees the runtime transport enforces
dynamically — but decided before a rank process ever launches:

* :func:`check_collective_matching` — every rank must issue the same
  collective stream (op, dtypes, element counts, order).  A rank whose
  stream differs from rank 0's is reported with the divergence *index*,
  in the same style as the runtime ``CollectiveOrderChecker``; a single
  call whose per-rank payloads disagree is a shape mismatch.
* :func:`check_deadlock_freedom` — a lockstep traversal of the
  happens-before graph induced by program order plus the rendezvous
  cliques (barriers, shm ring chunk turns, recovery epoch bumps).  An
  ``abort`` event is the release edge of the failure protocol: a
  TERMINAL abort tears the whole run down (peers fail fast instead of
  blocking), a REPLAY abort unwinds every rank to its next ``recover``
  rendezvous.  A rank left waiting at a rendezvous no peer will ever
  reach is a deadlock.
* :func:`check_lock_discipline` — no blocking rendezvous may occur
  while a rank holds the pinned-pool or gradient-bucket lock; a peer
  stalled on that rank's lock would never reach the rendezvous, turning
  a local lock into a global hang.

All passes are pure functions of the IR — no engine, no processes.
"""

from __future__ import annotations

from repro.check.static.ir import (
    RENDEZVOUS_KINDS,
    ScheduleEvent,
    ScheduleIR,
    StaticFinding,
)


def verify_schedule(ir: ScheduleIR) -> list[StaticFinding]:
    """Run every static pass; returns the combined findings."""
    findings = check_collective_matching(ir)
    findings += check_deadlock_freedom(ir)
    findings += check_lock_discipline(ir)
    return findings


# --- collective matching -----------------------------------------------------
def _payload_mismatch(event: ScheduleEvent) -> bool:
    """One call whose per-rank payloads disagree (ragged collective)."""
    return len(set(event.payload)) > 1


def check_collective_matching(ir: ScheduleIR) -> list[StaticFinding]:
    findings: list[StaticFinding] = []
    streams = [sched.collectives() for sched in ir.ranks]

    # within-call shape agreement (the runtime checker's `record` raise)
    seen: set[tuple[int, tuple]] = set()
    for rank, stream in enumerate(streams):
        for i, event in enumerate(stream):
            if not _payload_mismatch(event):
                continue
            key = (i, event.payload)
            if key in seen:
                continue  # loop mode replicates the event to every rank
            seen.add(key)
            findings.append(
                StaticFinding(
                    "static-collective-shape-mismatch",
                    f"collective #{i} ({event.op}) carries mismatched"
                    f" per-rank payloads: {event.describe()}",
                    rank=rank,
                    index=i,
                    details={"op": event.op, "payload": event.payload},
                )
            )

    reference = streams[0]
    for rank in range(1, ir.world):
        stream = streams[rank]
        for i, (want, got) in enumerate(zip(reference, stream)):
            if want == got:
                continue
            findings.append(
                StaticFinding(
                    "static-collective-divergence",
                    f"rank {rank} diverges from rank 0 at collective #{i}:"
                    f" rank 0 issues {want.describe()}, rank {rank} issues"
                    f" {got.describe()} — the transport digests disagree"
                    " and the next exchange refuses delivery",
                    rank=rank,
                    index=i,
                    details={"expected": want.describe(), "got": got.describe()},
                )
            )
            break
        else:
            if len(stream) != len(reference):
                short, long_ = sorted(
                    (0, rank), key=lambda r: len(streams[r])
                )
                findings.append(
                    StaticFinding(
                        "static-collective-divergence",
                        f"rank 0 issues {len(reference)} collectives but"
                        f" rank {rank} issues {len(stream)}; rank {long_}"
                        f" waits forever at collective"
                        f" #{len(streams[short])}",
                        rank=rank,
                        index=min(len(reference), len(stream)),
                        details={
                            "rank0_count": len(reference),
                            "rank_count": len(stream),
                        },
                    )
                )
    return findings


# --- deadlock freedom --------------------------------------------------------
def _sync_stream(sched) -> list[ScheduleEvent]:
    return [
        e
        for e in sched.events
        if e.kind in RENDEZVOUS_KINDS or e.kind == "abort"
    ]


def check_deadlock_freedom(ir: ScheduleIR) -> list[StaticFinding]:
    """Lockstep traversal of the rendezvous happens-before graph.

    Each iteration either completes one rendezvous clique (all ranks at
    compatible events), follows an abort release edge, or proves that
    some rank is blocked forever.  Every step advances at least one
    pointer, so the traversal terminates.
    """
    findings: list[StaticFinding] = []
    streams = [_sync_stream(sched) for sched in ir.ranks]
    pos = [0] * ir.world

    def head(r: int) -> ScheduleEvent | None:
        return streams[r][pos[r]] if pos[r] < len(streams[r]) else None

    while True:
        heads = [head(r) for r in range(ir.world)]
        if all(h is None for h in heads):
            return findings

        aborters = [
            r for r, h in enumerate(heads) if h is not None and h.kind == "abort"
        ]
        if aborters:
            terminal = any(heads[r].terminal for r in aborters)
            for r in aborters:
                pos[r] += 1
            if terminal:
                # TERMINAL: peers observe the flag and fail fast — no
                # rendezvous after this point blocks, so nothing later
                # can deadlock.  (The launcher surfaces MpWorkerFailed.)
                return findings
            # REPLAY: the abort breaks every in-flight wait; each rank
            # unwinds (raising through its pending rendezvous) until it
            # reaches the recovery epoch-bump.
            for r in range(ir.world):
                while pos[r] < len(streams[r]) and streams[r][pos[r]].kind not in (
                    "recover",
                    "abort",
                ):
                    pos[r] += 1
            waiting = [
                r
                for r in range(ir.world)
                if pos[r] < len(streams[r])
                and streams[r][pos[r]].kind == "recover"
            ]
            missing = [
                r for r in range(ir.world) if pos[r] >= len(streams[r])
            ]
            if waiting and missing:
                findings.append(
                    StaticFinding(
                        "static-deadlock",
                        f"after a REPLAY abort, rank(s) {waiting} rendezvous"
                        f" for recovery but rank(s) {missing} never call"
                        " recover_after_abort — the epoch bump never"
                        " completes",
                        rank=waiting[0],
                        index=pos[waiting[0]],
                    )
                )
                return findings
            for r in waiting:
                pos[r] += 1
            continue

        if all(h is not None for h in heads):
            kinds = {h.kind for h in heads}
            if len(kinds) > 1:
                desc = ", ".join(
                    f"rank {r} at {h.describe()}" for r, h in enumerate(heads)
                )
                findings.append(
                    StaticFinding(
                        "static-deadlock",
                        f"ranks wait at incompatible rendezvous: {desc}",
                        index=pos[0],
                    )
                )
                return findings
            if kinds == {"chunk"}:
                seqs = {h.seq for h in heads}
                if len(seqs) > 1:
                    findings.append(
                        StaticFinding(
                            "static-deadlock",
                            "ranks rendezvous on different shm ring chunk"
                            f" sequence numbers: {sorted(seqs)} — the slot"
                            " headers disagree and every rank times out",
                            index=pos[0],
                        )
                    )
                    return findings
            for r in range(ir.world):
                pos[r] += 1
            continue

        # some ranks exhausted their schedule while others still wait
        blocked = [r for r, h in enumerate(heads) if h is not None]
        done = [r for r, h in enumerate(heads) if h is None]
        r = blocked[0]
        findings.append(
            StaticFinding(
                "static-deadlock",
                f"rank {r} blocks at rendezvous #{pos[r]}"
                f" ({heads[r].describe()}) but rank(s) {done} issue no"
                " matching rendezvous — the wait never completes",
                rank=r,
                index=pos[r],
            )
        )
        return findings


# --- lock discipline ---------------------------------------------------------
def check_lock_discipline(ir: ScheduleIR) -> list[StaticFinding]:
    findings: list[StaticFinding] = []
    for sched in ir.ranks:
        held: list[str] = []
        for i, event in enumerate(sched.events):
            if event.kind == "lock_acquire":
                held.append(event.lock)
            elif event.kind == "lock_release":
                if event.lock in held:
                    held.remove(event.lock)
            elif event.kind in RENDEZVOUS_KINDS and held:
                findings.append(
                    StaticFinding(
                        "static-lock-rendezvous",
                        f"rank {sched.rank} blocks at {event.describe()}"
                        f" while holding lock(s) {held}: a peer stalled on"
                        " that lock can never reach the rendezvous",
                        rank=sched.rank,
                        index=i,
                        details={"locks": list(held)},
                    )
                )
    return findings
