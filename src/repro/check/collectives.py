"""Collective-ordering checker: per-rank fingerprints, cross-checked.

Real ZeRO deployments hang (NCCL) or silently corrupt (MPI) when ranks
disagree on the collective sequence — a conditional gather on one rank, a
mismatched bucket boundary, an extra barrier.  The simulation executes
collectives functionally, so a real deadlock cannot manifest; this checker
makes the *would-be* deadlock observable instead:

* every collective issued through a :class:`~repro.comm.group.ProcessGroup`
  appends a fingerprint ``(op, dtype, numel, world)`` to each participating
  rank's sequence;
* within one call, ranks must agree on payload shape/dtype
  (``collective-shape-mismatch`` — e.g. an allgather where rank 1 brings a
  differently sized shard);
* at synchronization points (``barrier()``, engine step boundaries) the
  per-rank sequences are cross-checked and the **first divergence** is
  reported as ``collective-divergence`` — the exact information needed to
  debug the hang it would have been.

Sequences are kept per group (a process may hold several groups) and the
verified prefix is truncated at every successful cross-check, so memory
stays bounded by the collectives issued between barriers.

The in-process simulation records all ranks of one call together, so
sequences only diverge through :meth:`record_rank` — the per-rank API used
by tests and the bug corpus to model independently-programmed ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class CollectiveFingerprint:
    """Identity of one collective as one rank observed it."""

    op: str
    dtype: str
    numel: int
    world: int

    def describe(self) -> str:
        return f"{self.op}[{self.dtype} x{self.numel}, world={self.world}]"


class CollectiveOrderChecker:
    """Fingerprints collectives per simulated rank; owned by a context."""

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._groups: dict[int, list[list[CollectiveFingerprint]]] = {}
        self._next_group = 0

    # --- group registry ---------------------------------------------------------
    def register_group(self, world_size: int) -> int:
        gid = self._next_group
        self._next_group += 1
        self._groups[gid] = [[] for _ in range(world_size)]
        return gid

    # --- recording -------------------------------------------------------------
    def record(
        self,
        group_id: int,
        op: str,
        dtypes: Sequence[str],
        numels: Sequence[int],
    ) -> None:
        """One collective, all ranks at once (the simulation's hot path).

        ``dtypes``/``numels`` are per-rank payload descriptions; a
        disagreement is reported before the sequences are appended, because
        the real collective would already be undefined behaviour.
        """
        seqs = self._groups[group_id]
        world = len(seqs)
        if len(set(numels)) > 1 or len(set(dtypes)) > 1:
            per_rank = ", ".join(
                f"rank{r}={d} x{n}" for r, (d, n) in enumerate(zip(dtypes, numels))
            )
            self._ctx.report(
                "collective-shape-mismatch",
                f"{op} called with per-rank payloads that disagree"
                f" ({per_rank}); every rank must contribute the same"
                f" count and dtype",
                op=op,
                payloads=list(zip(dtypes, numels)),
            )
        for r in range(world):
            seqs[r].append(
                CollectiveFingerprint(op, str(dtypes[r]), int(numels[r]), world)
            )

    def record_rank(
        self, group_id: int, rank: int, op: str, dtype: str, numel: int
    ) -> None:
        """One rank's view of a collective (divergence modelling / corpus)."""
        seqs = self._groups[group_id]
        seqs[rank].append(
            CollectiveFingerprint(op, str(dtype), int(numel), len(seqs))
        )

    # --- cross-check ----------------------------------------------------------
    def cross_check(self, group_id: int | None = None) -> None:
        """Compare per-rank sequences; report the first divergence.

        Called at barriers and step boundaries.  On success the verified
        sequences are dropped (they can no longer diverge retroactively).
        """
        gids = list(self._groups) if group_id is None else [group_id]
        for gid in gids:
            seqs = self._groups[gid]
            reference = seqs[0]
            for rank in range(1, len(seqs)):
                mine = seqs[rank]
                for i, (a, b) in enumerate(zip(reference, mine)):
                    if a != b:
                        self._ctx.report(
                            "collective-divergence",
                            f"rank {rank} diverged from rank 0 at collective"
                            f" #{i}: expected {a.describe()}, issued"
                            f" {b.describe()} — ranks would deadlock here",
                            rank=rank,
                            index=i,
                            expected=a.describe(),
                            got=b.describe(),
                        )
                        break
                else:
                    if len(mine) != len(reference):
                        short, long_ = sorted([len(mine), len(reference)])
                        self._ctx.report(
                            "collective-divergence",
                            f"rank {rank} issued {len(mine)} collectives but"
                            f" rank 0 issued {len(reference)}: the rank with"
                            f" {long_} waits forever at collective #{short}",
                            rank=rank,
                            index=short,
                        )
            for s in seqs:
                s.clear()

    def discard_pending(self) -> None:
        """Drop unverified sequences without cross-checking them.

        Used on step abort: an exception mid-step leaves legitimately
        ragged sequences, and the aborted step makes no ordering claim.
        """
        for seqs in self._groups.values():
            for s in seqs:
                s.clear()

    def pending(self, group_id: int) -> int:
        """Unverified collectives on rank 0 (introspection for tests)."""
        return len(self._groups[group_id][0])
