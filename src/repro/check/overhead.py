"""Checker overhead measurement (the <2%-disabled contract).

Same measurement model as ``repro.obs.overhead``: the disabled fast path is
an attribute load plus an ``is None`` test at each event site, too cheap to
resolve by diffing whole steps, so it is modeled as *per-call cost x calls
per step*: microbenchmark the gate, count how many checker events one
sanitized step actually dispatches, and express their product as a fraction
of the measured step time.  The enabled cost is measured directly, with the
two configurations interleaved so machine drift hits both equally.
``benchmarks/bench_check_overhead.py`` turns :attr:`disabled_overhead` into
the CI guard.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass

from repro.check.config import CheckConfig
from repro.check.runtime import CheckContext, get_checker


@dataclass
class CheckOverheadReport:
    """What the checker costs on one engine step."""

    step_disabled_s: float  # min step time, all checks off
    step_enabled_s: float  # min step time, runtime checks on
    events_per_step: int  # checker events one sanitized step dispatches
    noop_gate_s: float  # per-call cost of the disabled gate
    violations: int  # violations the sanitized steps recorded (want 0)

    @property
    def disabled_overhead(self) -> float:
        """Modeled disabled-gate overhead fraction of the step time."""
        return self.events_per_step * self.noop_gate_s / self.step_disabled_s

    @property
    def enabled_overhead(self) -> float:
        """Measured overhead fraction with every runtime pass enabled."""
        return self.step_enabled_s / self.step_disabled_s - 1.0

    def render(self) -> str:
        return "\n".join(
            [
                f"step (checks off):   {self.step_disabled_s * 1e3:8.2f} ms",
                f"step (checks on):    {self.step_enabled_s * 1e3:8.2f} ms",
                f"events per step:     {self.events_per_step:8d}",
                f"disabled gate call:  {self.noop_gate_s * 1e9:8.1f} ns",
                f"disabled overhead:   {self.disabled_overhead:8.3%}",
                f"enabled overhead:    {self.enabled_overhead:8.3%}",
                f"violations recorded: {self.violations:8d}",
            ]
        )


class _CountingPass:
    """Wraps one pass object; counts every event method dispatched to it."""

    def __init__(self, target, counter: list) -> None:
        self._target = target
        self._counter = counter

    def __getattr__(self, name):
        attr = getattr(self._target, name)
        if not callable(attr):
            return attr
        counter = self._counter

        def counted(*args, **kwargs):
            counter[0] += 1
            return attr(*args, **kwargs)

        return counted


def _count_events_one_step(ctx: CheckContext, step) -> int:
    """Proxy the context's pass objects for one step; count dispatches.

    Instrumented code reads ``ctx.zerosan`` / ``ctx.collectives`` /
    ``ctx.races`` at every event site, so swapping those attributes for
    counting proxies observes exactly the events a disabled build would
    gate on.
    """
    counter = [0]
    saved = (ctx.zerosan, ctx.collectives, ctx.races)
    ctx.zerosan = _CountingPass(saved[0], counter) if saved[0] else None
    ctx.collectives = _CountingPass(saved[1], counter) if saved[1] else None
    ctx.races = _CountingPass(saved[2], counter) if saved[2] else None
    try:
        step()
    finally:
        ctx.zerosan, ctx.collectives, ctx.races = saved
    return max(counter[0], 1)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _gate_cost(calls: int) -> float:
    """Seconds per disabled-checker gate: global load + ``is None`` test."""
    t0 = time.perf_counter()
    hits = 0
    for _ in range(calls):
        if get_checker() is not None:  # the shape instrumented code uses
            hits += 1
    elapsed = time.perf_counter() - t0
    assert hits in (0, calls)  # keep the loop body live
    return elapsed / calls


def measure_check_overhead(
    *,
    reps: int = 7,
    hidden_dim: int = 160,
    num_layers: int = 2,
    world_size: int = 2,
    micro_calls: int = 200_000,
) -> CheckOverheadReport:
    """Run a small CPU-offloaded engine step with checks off and on."""
    # Local imports: keep ``import repro.check`` free of the engine stack.
    from dataclasses import replace

    from repro.core.config import OffloadConfig, OffloadDevice, ZeroConfig
    from repro.core.engine import ZeroInfinityEngine
    from repro.nn import GPTModel, TransformerConfig
    from repro.utils.rng import seeded_rng

    model_cfg = TransformerConfig(
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        num_heads=4,
        vocab_size=128,
        max_seq=32,
    )
    # CPU offload: exercises gather/release/reduce without file-I/O noise.
    base_cfg = ZeroConfig(
        world_size=world_size,
        offload=OffloadConfig(
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
        ),
        loss_scale=1.0,
    )
    checked = CheckConfig(zerosan=True, collectives=True, races=True, mode="record")
    rng = seeded_rng(3)
    batches = [
        (rng.integers(0, 128, (2, 32)), rng.integers(0, 128, (2, 32)))
        for _ in range(world_size)
    ]

    def make_engine(check_cfg):
        return ZeroInfinityEngine(
            replace(base_cfg, check=check_cfg),
            model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0)),
        )

    gc_was_enabled = gc.isenabled()
    disabled_s = enabled_s = float("inf")
    with make_engine(CheckConfig()) as plain, make_engine(checked) as sane:
        step_plain = lambda: plain.train_step(batches)  # noqa: E731
        step_sane = lambda: sane.train_step(batches)  # noqa: E731
        step_plain()  # warm-up: caches primed, buffers allocated
        step_sane()
        ctx = sane.check_context
        events_per_step = _count_events_one_step(ctx, step_sane)
        # GC disabled while timing (as timeit does) so collection pauses
        # landing in random reps do not swamp the signal.
        gc.disable()
        try:
            for _ in range(reps):
                gc.collect()
                disabled_s = min(disabled_s, _timed(step_plain))
                gc.collect()
                enabled_s = min(enabled_s, _timed(step_sane))
        finally:
            if gc_was_enabled:
                gc.enable()
        violations = len(ctx.violations)

    return CheckOverheadReport(
        step_disabled_s=disabled_s,
        step_enabled_s=enabled_s,
        events_per_step=events_per_step,
        noop_gate_s=_gate_cost(micro_calls),
        violations=violations,
    )
