"""repro.check: runtime sanitizers, static lint, and schedule verification.

Four cooperating runtime passes over one violation taxonomy
(:class:`~repro.check.violations.CheckViolation`):

* :mod:`repro.check.zerosan` — parameter-lifecycle state machine and
  shared-buffer write sanitizer (use-after-release, double-gather,
  gather-leak, shared-view-write);
* :mod:`repro.check.collectives` — per-rank collective fingerprinting,
  cross-checked at barriers (would-be deadlocks as first-divergence
  reports);
* :mod:`repro.check.races` — happens-before race detector for the
  threaded aio engine and the pinned-buffer pool;
* :mod:`repro.check.lint` — AST lint enforcing repo invariants statically
  (no raw collectives, no wall-clock/global-RNG numerics, no silent
  float64 upcasts, no writeable-flag flips) plus the interprocedural
  SPMD-discipline rules (rank-divergent collectives, read-only view
  escapes, shm use-after-unlink).

And one *static* subsystem, :mod:`repro.check.static`, which proves
collective matching, deadlock freedom, and lock discipline of the
communication schedule before a rank process launches
(``repro check-static`` / ``tools/static_gate.py``).

Enable the runtime passes via ``ZeroConfig(check=CheckConfig(...))``,
``--check`` on the CLI, ``REPRO_CHECK=all`` in the environment, or
:func:`use_checker` in tests.  Everything is off by default and the
disabled fast path is one global load plus an ``is None`` test per event
site (see :mod:`repro.check.overhead`).
"""

from repro.check.collectives import CollectiveFingerprint, CollectiveOrderChecker
from repro.check.config import PASS_NAMES, CheckConfig
from repro.check.lint import LintFinding, LintReport, lint_source, run_lint
from repro.check.races import AioRaceDetector
from repro.check.runtime import (
    CheckContext,
    context_from_config,
    get_checker,
    install_checker,
    use_checker,
)
from repro.check.violations import VIOLATION_KINDS, CheckViolation
from repro.check.zerosan import ZeroSan

# imported last: repro.check.static.extract reaches back into repro.comm,
# which in turn imports repro.check.runtime (already bound above)
from repro.check.static import (
    STATIC_FINDING_KINDS,
    ScheduleBuilder,
    ScheduleEvent,
    ScheduleIR,
    ScheduleSpec,
    StaticFinding,
    SymbolicBackend,
    extract_schedule,
    run_static_check,
    verify_schedule,
)

__all__ = [
    "AioRaceDetector",
    "CheckConfig",
    "CheckContext",
    "CheckViolation",
    "CollectiveFingerprint",
    "CollectiveOrderChecker",
    "LintFinding",
    "LintReport",
    "PASS_NAMES",
    "STATIC_FINDING_KINDS",
    "ScheduleBuilder",
    "ScheduleEvent",
    "ScheduleIR",
    "ScheduleSpec",
    "StaticFinding",
    "SymbolicBackend",
    "VIOLATION_KINDS",
    "ZeroSan",
    "context_from_config",
    "extract_schedule",
    "get_checker",
    "install_checker",
    "lint_source",
    "run_lint",
    "run_static_check",
    "use_checker",
    "verify_schedule",
]
