"""repro.check: runtime sanitizers and static lint for ZeRO invariants.

Four cooperating passes over one violation taxonomy
(:class:`~repro.check.violations.CheckViolation`):

* :mod:`repro.check.zerosan` — parameter-lifecycle state machine and
  shared-buffer write sanitizer (use-after-release, double-gather,
  gather-leak, shared-view-write);
* :mod:`repro.check.collectives` — per-rank collective fingerprinting,
  cross-checked at barriers (would-be deadlocks as first-divergence
  reports);
* :mod:`repro.check.races` — happens-before race detector for the
  threaded aio engine and the pinned-buffer pool;
* :mod:`repro.check.lint` — AST lint enforcing repo invariants statically
  (no raw collectives, no wall-clock/global-RNG numerics, no silent
  float64 upcasts, no writeable-flag flips).

Enable via ``ZeroConfig(check=CheckConfig(...))``, ``--check`` on the CLI,
``REPRO_CHECK=all`` in the environment, or :func:`use_checker` in tests.
Everything is off by default and the disabled fast path is one global load
plus an ``is None`` test per event site (see :mod:`repro.check.overhead`).
"""

from repro.check.collectives import CollectiveFingerprint, CollectiveOrderChecker
from repro.check.config import PASS_NAMES, CheckConfig
from repro.check.lint import LintFinding, LintReport, lint_source, run_lint
from repro.check.races import AioRaceDetector
from repro.check.runtime import (
    CheckContext,
    context_from_config,
    get_checker,
    install_checker,
    use_checker,
)
from repro.check.violations import VIOLATION_KINDS, CheckViolation
from repro.check.zerosan import ZeroSan

__all__ = [
    "AioRaceDetector",
    "CheckConfig",
    "CheckContext",
    "CheckViolation",
    "CollectiveFingerprint",
    "CollectiveOrderChecker",
    "LintFinding",
    "LintReport",
    "PASS_NAMES",
    "VIOLATION_KINDS",
    "ZeroSan",
    "context_from_config",
    "get_checker",
    "install_checker",
    "lint_source",
    "run_lint",
    "use_checker",
]
