"""Learning-rate schedules.

Standard large-model recipes: linear warmup into a constant, linear decay,
or cosine decay.  Schedules are pure ``step -> lr`` functions plus an
``apply`` helper that writes into any optimizer exposing a mutable ``lr``
(both :class:`repro.optim.Adam` and the ZeRO partitioned optimizer do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ConstantSchedule:
    """Optionally warmed-up constant learning rate."""

    lr: float
    warmup_steps: int = 0

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.warmup_steps < 0:
            raise ValueError("warmup_steps must be non-negative")

    def __call__(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.lr * (step + 1) / self.warmup_steps
        return self.lr

    def apply(self, optimizer, step: int) -> float:
        lr = self(step)
        optimizer.lr = lr
        return lr


@dataclass(frozen=True)
class WarmupLinearSchedule:
    """Linear warmup then linear decay to ``min_lr`` at ``total_steps``."""

    lr: float
    warmup_steps: int
    total_steps: int
    min_lr: float = 0.0

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.min_lr < 0:
            raise ValueError("invalid learning rates")
        if not 0 <= self.warmup_steps < self.total_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")

    def __call__(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.lr * (step + 1) / self.warmup_steps
        frac = min(
            (step - self.warmup_steps) / (self.total_steps - self.warmup_steps),
            1.0,
        )
        return self.lr + (self.min_lr - self.lr) * frac

    def apply(self, optimizer, step: int) -> float:
        lr = self(step)
        optimizer.lr = lr
        return lr


@dataclass(frozen=True)
class WarmupCosineSchedule:
    """Linear warmup then cosine decay to ``min_lr`` — the GPT-3 recipe."""

    lr: float
    warmup_steps: int
    total_steps: int
    min_lr: float = 0.0

    def __post_init__(self) -> None:
        if self.lr <= 0 or self.min_lr < 0:
            raise ValueError("invalid learning rates")
        if not 0 <= self.warmup_steps < self.total_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")

    def __call__(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.lr * (step + 1) / self.warmup_steps
        frac = min(
            (step - self.warmup_steps) / (self.total_steps - self.warmup_steps),
            1.0,
        )
        cos = 0.5 * (1.0 + math.cos(math.pi * frac))
        return self.min_lr + (self.lr - self.min_lr) * cos

    def apply(self, optimizer, step: int) -> float:
        lr = self(step)
        optimizer.lr = lr
        return lr
