"""Training workloads: synthetic data, LR schedules, and a trainer loop.

The paper trains GPT-like models on text; offline we substitute synthetic
token streams with enough structure to be learnable (so loss curves are
meaningful in tests and examples), plus the schedule/trainer scaffolding a
downstream user expects from a training library.
"""

from repro.workloads.calibrate import (
    CalibRun,
    CalibSpec,
    run_mp_training,
    run_training,
    state_digest,
)
from repro.workloads.data import (
    CopyTaskDataset,
    MarkovCorpus,
    per_rank_batches,
)
from repro.workloads.schedule import (
    ConstantSchedule,
    WarmupCosineSchedule,
    WarmupLinearSchedule,
)
from repro.workloads.trainer import Trainer, TrainerConfig
from repro.workloads.metrics import MetricsLogger, iter_losses, read_metrics

__all__ = [
    "CalibRun",
    "CalibSpec",
    "run_mp_training",
    "run_training",
    "state_digest",
    "MetricsLogger",
    "iter_losses",
    "read_metrics",
    "CopyTaskDataset",
    "MarkovCorpus",
    "per_rank_batches",
    "ConstantSchedule",
    "WarmupCosineSchedule",
    "WarmupLinearSchedule",
    "Trainer",
    "TrainerConfig",
]
