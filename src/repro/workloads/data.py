"""Synthetic language-modeling datasets.

Two generators with different learnability profiles:

* :class:`MarkovCorpus` — a first-order Markov chain over the vocabulary
  with Zipf-distributed stationary mass.  Next-token prediction has
  irreducible entropy, so loss curves behave like language modeling: fast
  initial drop, then a floor.
* :class:`CopyTaskDataset` — sequences whose second half repeats the first;
  the target is the next token, which is deterministic in the second half.
  A capable model drives the loss toward ~half the initial entropy quickly,
  making it ideal for convergence assertions in tests.

Both slice deterministic per-rank shards so data-parallel runs are
reproducible and non-overlapping, via :func:`per_rank_batches`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.rng import seeded_rng, spawn_rngs


class MarkovCorpus:
    """First-order Markov token stream with a Zipfian flavour."""

    def __init__(
        self,
        vocab_size: int,
        *,
        seed: int = 0,
        branching: int = 4,
        zipf_a: float = 1.2,
    ) -> None:
        if vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        if branching < 1:
            raise ValueError("branching must be >= 1")
        self.vocab_size = vocab_size
        rng = seeded_rng(seed)
        # each token transitions to `branching` successors with Zipf weights
        self._successors = rng.integers(
            0, vocab_size, size=(vocab_size, branching)
        )
        weights = 1.0 / np.arange(1, branching + 1) ** zipf_a
        self._weights = weights / weights.sum()

    def sample(
        self, rng: np.random.Generator, *, bsz: int, seq: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, targets)`` where targets are the next tokens."""
        if bsz < 1 or seq < 1:
            raise ValueError("bsz and seq must be positive")
        tokens = np.empty((bsz, seq + 1), dtype=np.int64)
        tokens[:, 0] = rng.integers(0, self.vocab_size, size=bsz)
        choices = rng.choice(
            len(self._weights), size=(bsz, seq), p=self._weights
        )
        for t in range(seq):
            tokens[:, t + 1] = self._successors[tokens[:, t], choices[:, t]]
        return tokens[:, :-1], tokens[:, 1:]

    def entropy_floor(self) -> float:
        """Conditional entropy of the chain — the minimum achievable loss."""
        p = self._weights
        # successors may repeat; merge duplicate targets per source first
        h = 0.0
        for src in range(self.vocab_size):
            merged: dict[int, float] = {}
            for tgt, w in zip(self._successors[src], p):
                merged[int(tgt)] = merged.get(int(tgt), 0.0) + float(w)
            h += -sum(w * np.log(w) for w in merged.values())
        return h / self.vocab_size


class CopyTaskDataset:
    """Sequences of the form ``prefix + prefix``; highly learnable."""

    def __init__(self, vocab_size: int) -> None:
        if vocab_size < 2:
            raise ValueError("vocab_size must be >= 2")
        self.vocab_size = vocab_size

    def sample(
        self, rng: np.random.Generator, *, bsz: int, seq: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if seq % 2:
            raise ValueError("copy task needs an even sequence length")
        half = seq // 2
        prefix = rng.integers(0, self.vocab_size, size=(bsz, half + 1))
        tokens = np.concatenate([prefix, prefix[:, 1:half + 1]], axis=1)
        return tokens[:, :-1], tokens[:, 1:]


def per_rank_batches(
    dataset,
    *,
    world_size: int,
    bsz_per_rank: int,
    seq: int,
    seed: int = 0,
) -> Iterator[list[tuple[np.ndarray, np.ndarray]]]:
    """Infinite iterator of per-rank batch lists with independent shards."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    rngs = spawn_rngs(seed, world_size)
    while True:
        yield [
            dataset.sample(r, bsz=bsz_per_rank, seq=seq) for r in rngs
        ]
