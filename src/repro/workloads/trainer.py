"""A training loop over the ZeRO-Infinity engine.

Composes the engine with a data iterator, a learning-rate schedule,
gradient accumulation, periodic evaluation and sharded checkpointing — the
surface a user "fine-tuning a trillion parameter model on a single DGX-2
node" would actually drive.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.core.checkpoint_io import load_checkpoint, save_checkpoint
from repro.core.engine import ZeroInfinityEngine
from repro.obs.tracer import trace_span


@dataclass
class TrainerConfig:
    total_steps: int
    grad_accumulation: int = 1
    log_every: int = 10
    eval_every: int = 0  # 0 disables periodic eval
    checkpoint_every: int = 0  # 0 disables checkpointing
    checkpoint_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.total_steps < 1:
            raise ValueError("total_steps must be >= 1")
        if self.grad_accumulation < 1:
            raise ValueError("grad_accumulation must be >= 1")
        if self.checkpoint_every and not self.checkpoint_dir:
            raise ValueError("checkpoint_every requires checkpoint_dir")


@dataclass
class TrainHistory:
    """What happened, step by step."""

    losses: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    eval_losses: dict[int, float] = field(default_factory=dict)
    skipped_steps: list[int] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        return self.losses[-1]


class Trainer:
    """Drive an engine through ``config.total_steps`` optimizer steps."""

    def __init__(
        self,
        engine: ZeroInfinityEngine,
        data: Iterator,
        config: TrainerConfig,
        *,
        schedule=None,
        eval_fn: Optional[Callable[[ZeroInfinityEngine], float]] = None,
        log_fn: Callable[[str], None] = print,
        metrics=None,
    ) -> None:
        self.engine = engine
        self.data = data
        self.config = config
        self.schedule = schedule
        self.eval_fn = eval_fn
        self.log_fn = log_fn
        self.metrics = metrics  # optional MetricsLogger
        self.history = TrainHistory()

    def _next_rounds(self):
        return [next(self.data) for _ in range(self.config.grad_accumulation)]

    def fit(self) -> TrainHistory:
        cfg = self.config
        start = time.perf_counter()
        for step in range(self.engine.steps_taken, cfg.total_steps):
            if self.schedule is not None:
                lr = self.schedule.apply(self.engine.optimizer, step)
            else:
                lr = self.engine.optimizer.lr
            with trace_span("trainer:step", cat="engine", step=step):
                result = self.engine.train_step_accumulated(self._next_rounds())
            self.history.losses.append(result.mean_loss)
            self.history.lrs.append(lr)
            if result.skipped:
                self.history.skipped_steps.append(step)
            if self.metrics is not None:
                self.metrics.log_step(
                    step,
                    result.mean_loss,
                    lr,
                    skipped=result.skipped,
                    loss_scale=result.loss_scale,
                )
            if cfg.log_every and (step + 1) % cfg.log_every == 0:
                self.log_fn(
                    f"step {step + 1}/{cfg.total_steps}"
                    f"  loss {result.mean_loss:.4f}  lr {lr:.2e}"
                    + ("  [skipped]" if result.skipped else "")
                )
            if cfg.eval_every and (step + 1) % cfg.eval_every == 0 and self.eval_fn:
                ev = float(self.eval_fn(self.engine))
                self.history.eval_losses[step + 1] = ev
                self.log_fn(f"step {step + 1}  eval loss {ev:.4f}")
            if cfg.checkpoint_every and (step + 1) % cfg.checkpoint_every == 0:
                path = os.path.join(cfg.checkpoint_dir, f"step{step + 1}")
                save_checkpoint(self.engine, path)
                self.log_fn(f"step {step + 1}  checkpoint -> {path}")
        self.history.wall_seconds = time.perf_counter() - start
        return self.history

    def resume(self, checkpoint_path: str) -> None:
        """Load a sharded checkpoint; ``fit`` continues from its step."""
        load_checkpoint(self.engine, checkpoint_path)
