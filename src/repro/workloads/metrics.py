"""Structured run metrics: JSONL logging and reload.

Long training runs need durable metrics, not stdout.  :class:`MetricsLogger`
appends one JSON object per event to a file (the format every experiment
dashboard ingests), flushes eagerly by default so crashes lose at most one
line (``flush_every`` trades that durability for throughput in tight
loops), and :func:`read_metrics` loads a run back for analysis.  The
Trainer accepts a logger via its ``metrics`` hook; the span exporter
(:func:`repro.obs.export.write_spans_jsonl`) writes the same format.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Optional


class MetricsLogger:
    """Append-only JSONL event log for a training run."""

    def __init__(
        self, path: str, *, run_name: str = "", flush_every: int = 1
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = path
        self.run_name = run_name
        self.flush_every = flush_every
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a")
        self._events = 0
        self._closed = False

    def log(self, event: str, **fields) -> None:
        """Record one event; fields must be JSON-serialisable.

        Raises :class:`ValueError` after :meth:`close` — a late logger is
        a bug in the caller's lifecycle, not something to swallow.
        """
        if self._closed:
            raise ValueError(
                f"MetricsLogger for {self.path!r} is closed; cannot log"
                f" {event!r}"
            )
        record = {"event": event, "seq": self._events}
        if self.run_name:
            record["run"] = self.run_name
        record.update(fields)
        json.dump(record, self._fh, sort_keys=True)
        self._fh.write("\n")
        self._events += 1
        if self._events % self.flush_every == 0:
            self._fh.flush()  # crash-durable up to flush_every lines

    def log_step(self, step: int, loss: float, lr: float, **extra) -> None:
        self.log("step", step=step, loss=float(loss), lr=float(lr), **extra)

    @property
    def closed(self) -> bool:
        return self._closed

    def flush(self) -> None:
        """Force buffered lines to disk without closing (idempotent).

        Abort paths call this so a worker killed right after an abort
        never leaves a shard missing its most recent events.
        """
        if not self._closed and not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "MetricsLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_metrics(path: str, *, event: Optional[str] = None) -> list[dict]:
    """Load a JSONL metrics file; optionally filter by event type.

    Tolerates a truncated final line (the crash case the eager flush
    bounds) by skipping it.
    """
    out: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final write
            if event is None or record.get("event") == event:
                out.append(record)
    return out


def iter_losses(path: str) -> Iterator[tuple[int, float]]:
    """(step, loss) pairs from a metrics file, in order."""
    for record in read_metrics(path, event="step"):
        yield int(record["step"]), float(record["loss"])
