"""Structured run metrics: JSONL logging and reload.

Long training runs need durable metrics, not stdout.  :class:`MetricsLogger`
appends one JSON object per event to a file (the format every experiment
dashboard ingests), flushes eagerly so crashes lose at most one line, and
:func:`read_metrics` loads a run back for analysis.  The Trainer accepts a
logger via its ``metrics`` hook.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Optional


class MetricsLogger:
    """Append-only JSONL event log for a training run."""

    def __init__(self, path: str, *, run_name: str = "") -> None:
        self.path = path
        self.run_name = run_name
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a")
        self._events = 0

    def log(self, event: str, **fields) -> None:
        """Record one event; fields must be JSON-serialisable."""
        record = {"event": event, "seq": self._events}
        if self.run_name:
            record["run"] = self.run_name
        record.update(fields)
        json.dump(record, self._fh, sort_keys=True)
        self._fh.write("\n")
        self._fh.flush()  # crash-durable line-by-line
        self._events += 1

    def log_step(self, step: int, loss: float, lr: float, **extra) -> None:
        self.log("step", step=step, loss=float(loss), lr=float(lr), **extra)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "MetricsLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_metrics(path: str, *, event: Optional[str] = None) -> list[dict]:
    """Load a JSONL metrics file; optionally filter by event type.

    Tolerates a truncated final line (the crash case the eager flush
    bounds) by skipping it.
    """
    out: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final write
            if event is None or record.get("event") == event:
                out.append(record)
    return out


def iter_losses(path: str) -> Iterator[tuple[int, float]]:
    """(step, loss) pairs from a metrics file, in order."""
    for record in read_metrics(path, event="step"):
        yield int(record["step"]), float(record["loss"])
