"""Small deterministic training runs for backend calibration.

One parameterized workload — a tiny seeded GPT over a Markov corpus —
executed through the real engine, returning everything the backend
equivalence contract compares: per-step losses (all ranks), per-step
global gradient norms, the ``CommStats`` byte/call counters, and a digest
of the final parameter state.

Shared by three drivers so they cannot drift apart:

* the backend equivalence tests (``tests/test_backend_equivalence.py``),
* the ``BENCH_mp.json`` benchmark (``benchmarks/bench_mp_backend.py``,
  re-measured by ``tools/perf_gate.py``),
* ``repro throughput --backend ...``, which calibrates the simulator's
  numbers against a functional run on this machine.

Determinism contract: everything is seeded and the engine is bit-exact
across backends, so two :class:`CalibRun` objects from the same spec must
compare equal field-for-field — any drift is a bug, not noise.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.comm.backend import CommBackend


@dataclass
class CalibSpec:
    """One deterministic workload configuration."""

    world: int = 2
    steps: int = 3
    stage: int = 3
    offload: str = "gpu"  # gpu | cpu | nvme
    hidden: int = 32
    layers: int = 2
    seq: int = 8
    bsz_per_rank: int = 2
    vocab: int = 64
    check: Optional[str] = None  # checker spec, e.g. "all"
    # optimizer-pipeline knobs (ISSUE 10): delayed parameter update, its
    # staleness-correction multiplier, the double-buffered streaming
    # schedule (False = serial oracle), and an optional chunk-size override
    # so small calibration shards still exercise the chunked NVMe path
    delayed_update: bool = False
    scale_delayed_lr: float = 1.0
    optimizer_pipeline: bool = True
    chunk_numel: Optional[int] = None


@dataclass
class CalibRun:
    """Everything the backend-equivalence contract compares."""

    losses: list[list[float]]  # per step, per rank (rank-major)
    grad_norms: list[float]  # per step, global L2 over all shards
    comm_bytes_by_op: dict[str, int]
    comm_calls_by_op: dict[str, int]
    state_digest: str  # sha256 over the final gathered parameters
    wall_s: float = 0.0
    steps_per_s: float = 0.0
    transport: dict = field(default_factory=dict)  # mp-only counters

    def numerics(self) -> tuple:
        """The fields that must be bit-identical across backends."""
        return (
            self.losses,
            self.grad_norms,
            self.comm_bytes_by_op,
            self.comm_calls_by_op,
            self.state_digest,
        )


def build_engine(spec: CalibSpec, *, comm_backend: Optional[CommBackend] = None):
    """Construct the calibration engine (caller owns closing it)."""
    from repro.core import (
        OffloadConfig,
        OffloadDevice,
        ZeroConfig,
        ZeroInfinityEngine,
        ZeroStage,
    )
    from repro.nn import GPTModel, TransformerConfig
    from repro.utils.rng import seeded_rng

    model_cfg = TransformerConfig(
        num_layers=spec.layers,
        hidden_dim=spec.hidden,
        num_heads=4,
        vocab_size=spec.vocab,
        max_seq=spec.seq,
        activation_checkpointing=True,
    )
    dev = OffloadDevice(spec.offload)
    check_cfg = None
    if spec.check:
        from repro.check import CheckConfig

        check_cfg = CheckConfig.from_spec(spec.check, mode="record")
    # parameters can only be offloaded once they are partitioned (stage 3);
    # below that the device applies to gradients and optimizer state only
    param_dev = dev if spec.stage >= 3 else OffloadDevice.NONE
    offload_kw = {"optimizer_pipeline": spec.optimizer_pipeline}
    if spec.chunk_numel is not None:
        offload_kw["optimizer_chunk_numel"] = spec.chunk_numel
    zero_cfg = ZeroConfig(
        world_size=spec.world,
        stage=ZeroStage(spec.stage),
        offload=OffloadConfig(
            param_device=param_dev,
            grad_device=dev,
            optimizer_device=dev,
            **offload_kw,
        ),
        loss_scale=1.0,
        delayed_update=spec.delayed_update,
        scale_delayed_lr=spec.scale_delayed_lr,
        **({"check": check_cfg} if check_cfg is not None else {}),
    )
    return ZeroInfinityEngine(
        zero_cfg,
        model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0)),
        lr=5e-3,
        comm_backend=comm_backend,
    )


def state_digest(state: dict[str, np.ndarray]) -> str:
    """Order-independent sha256 over a named parameter state."""
    h = hashlib.sha256()
    for name in sorted(state):
        h.update(name.encode())
        h.update(np.ascontiguousarray(state[name]).tobytes())
    return h.hexdigest()


def run_training(
    spec: CalibSpec, *, comm_backend: Optional[CommBackend] = None
) -> CalibRun:
    """Run the spec through the engine on the given backend (loop default)."""
    from repro.workloads import MarkovCorpus, per_rank_batches

    with build_engine(spec, comm_backend=comm_backend) as engine:
        data = per_rank_batches(
            MarkovCorpus(spec.vocab, seed=1),
            world_size=spec.world,
            bsz_per_rank=spec.bsz_per_rank,
            seq=spec.seq,
            seed=2,
        )
        grad_norms: list[float] = []
        orig_step = engine.optimizer.step

        def step_with_norm(*, grad_scale: float = 1.0) -> None:
            # the norm fetches replicate identically in every process and
            # on every backend, so recording it here cannot skew the
            # equivalence comparison
            grad_norms.append(
                engine.optimizer.global_grad_norm(grad_scale=grad_scale)
            )
            orig_step(grad_scale=grad_scale)

        engine.optimizer.step = step_with_norm  # type: ignore[method-assign]
        losses: list[list[float]] = []
        t0 = time.perf_counter()
        for _ in range(spec.steps):
            result = engine.train_step(next(data))
            losses.append(list(result.losses))
        wall = time.perf_counter() - t0
        # delayed mode still owes the last step's update; apply it before
        # the state gather so digests compare like-for-like
        engine.flush_delayed_update()
        transport = {}
        backend = engine.comm.backend
        if hasattr(backend, "transport_stats"):
            transport = dict(backend.transport_stats())
        return CalibRun(
            losses=losses,
            grad_norms=grad_norms,
            comm_bytes_by_op=dict(engine.comm.stats.bytes_by_op),
            comm_calls_by_op=dict(engine.comm.stats.calls_by_op),
            state_digest=state_digest(engine.gather_state()),
            wall_s=wall,
            steps_per_s=spec.steps / wall if wall > 0 else 0.0,
            transport=transport,
        )


#: BENCH_mp.json speedup target at world 4 on a multi-core host.
MP_TARGET_SPEEDUP = 1.5


def measure_mp_speedup(
    world: int = 4, steps: int = 3, *, spec: Optional[CalibSpec] = None
) -> dict:
    """Loop-vs-mp throughput on this machine (the ``BENCH_mp.json`` body).

    Runs the same compute-heavy calibration workload through both
    backends, asserts the results are bit-identical, and reports the
    measured speedup plus a *projected* speedup for hosts without enough
    cores to actually run the ranks in parallel.

    Projection model: the loop backend executes ``world`` rank turns
    sequentially, so one turn costs ``loop_step / world``.  On a
    serialized host the mp run pays the same total compute plus the
    transport (shm copies + rendezvous), so
    ``transport ≈ mp_step − loop_step``; with one core per rank the step
    would collapse to one turn plus that transport, giving
    ``projected = loop_step / (loop_step/world + transport)``.

    ``speedup_basis`` records which number is authoritative on this
    host: ``"measured"`` with >= 2 cores (real parallelism available),
    ``"projected"`` on a single-core host where the measured ratio can
    only show the transport tax.
    """
    import os

    # compute-heavy relative to the tiny equivalence spec: the speedup
    # story only holds when a rank turn dwarfs the per-param transport
    spec = spec or CalibSpec(
        world=world,
        steps=steps,
        hidden=128,
        layers=4,
        seq=32,
        bsz_per_rank=8,
        vocab=128,
    )
    loop = run_training(spec)
    mp_run, _ = run_mp_training(spec)
    if mp_run.numerics() != loop.numerics():
        raise AssertionError(
            "mp backend diverged from the loop oracle; a speedup over"
            " wrong numerics is meaningless"
        )
    cpu = os.cpu_count() or 1
    loop_step = loop.wall_s / spec.steps
    mp_step = mp_run.wall_s / spec.steps
    measured = loop_step / mp_step if mp_step > 0 else 0.0
    turn = loop_step / spec.world
    transport = max(mp_step - loop_step, 0.0)
    projected = loop_step / (turn + transport) if turn + transport > 0 else 0.0
    basis = "measured" if cpu >= 2 else "projected"
    return {
        "world": spec.world,
        "steps": spec.steps,
        "cpu_count": cpu,
        "loop_steps_per_s": loop.steps_per_s,
        "mp_steps_per_s": mp_run.steps_per_s,
        # the perf gate ratchets this field (>= 0.4x committed baseline)
        "steps_per_s": mp_run.steps_per_s,
        "speedup_measured": measured,
        "speedup_projected": projected,
        "speedup_basis": basis,
        "speedup": measured if basis == "measured" else projected,
        "target_speedup": MP_TARGET_SPEEDUP,
        "bit_identical": True,
        "transport": dict(mp_run.transport),
    }


#: BENCH_optpipe.json target: pipelined mode must cut the optimizer I/O
#: tail by at least this fraction versus the serial reference schedule.
OPTPIPE_TAIL_TARGET = 0.30


def measure_opt_pipeline(*, spec: Optional[CalibSpec] = None) -> dict:
    """Serial vs pipelined chunked optimizer on the NVMe preset.

    The ``BENCH_optpipe.json`` body: runs the same NVMe workload twice —
    ``optimizer_pipeline`` off (the serial reference schedule) and on (the
    double-buffered stream) — under a tracer, asserts the two runs are
    bit-identical, and reports the ``optimizer_io_tail`` stall time of
    each.  ``steps_per_s`` is the *serial* run's throughput, so the perf
    gate's ratchet guards against regressing the pipeline-off path.
    """
    from dataclasses import replace as _replace

    from repro.obs.perfscope import build_step_ledgers, summarize_ledgers
    from repro.obs.tracer import Tracer, use_tracer

    spec = spec or CalibSpec(
        world=2,
        steps=3,
        stage=3,
        offload="nvme",
        hidden=64,
        seq=16,
        bsz_per_rank=4,
        chunk_numel=2048,
    )

    def timed(pipelined: bool) -> tuple[CalibRun, float]:
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            run = run_training(_replace(spec, optimizer_pipeline=pipelined))
        summary = summarize_ledgers(build_step_ledgers(tracer))
        tail = summary.stall_us_by_cause.get("optimizer_io_tail", 0.0)
        return run, tail

    serial, tail_serial = timed(False)
    piped, tail_piped = timed(True)
    if piped.numerics() != serial.numerics():
        raise AssertionError(
            "pipelined optimizer diverged from the serial oracle; an I/O"
            " overlap over wrong numerics is meaningless"
        )
    reduction = (
        1.0 - tail_piped / tail_serial if tail_serial > 0 else 0.0
    )
    return {
        "world": spec.world,
        "steps": spec.steps,
        "chunk_numel": spec.chunk_numel,
        # the perf gate ratchets this field (>= 0.4x committed baseline)
        "steps_per_s": serial.steps_per_s,
        "steps_per_s_pipelined": piped.steps_per_s,
        "tail_us_serial": tail_serial,
        "tail_us_pipelined": tail_piped,
        "tail_reduction": reduction,
        "target_reduction": OPTPIPE_TAIL_TARGET,
        "bit_identical": True,
    }


def run_mp_training(
    spec: CalibSpec,
    *,
    timeout: float = 120.0,
    trace: bool = False,
    live=None,
    faults: str = "",
    faults_seed: int = 0,
    on_view=None,
    view_interval: float = 0.5,
):
    """Run the spec with one process per rank; returns ``(run, shards)``.

    Every rank process returns its own :class:`CalibRun`; the replicated
    execution model makes them identical, which is asserted here before
    rank 0's is returned (``shards`` is None unless ``trace``).

    ``live`` (bool or :class:`~repro.obs.live.LiveConfig`) threads the
    telemetry plane through the launcher; ``faults`` installs a fault
    spec inside every worker (the schedule replicates per process, like
    the loop oracle's).  ``on_view`` receives parent-side
    :class:`~repro.obs.live.ClusterView` polls.
    """
    from repro.comm import run_multiproc

    def worker(backend):
        if faults:
            from repro.faults.runtime import use_faults

            with use_faults(faults, seed=faults_seed):
                return run_training(spec, comm_backend=backend)
        return run_training(spec, comm_backend=backend)

    out = run_multiproc(
        spec.world, worker, timeout=timeout, trace=trace, live=live,
        on_view=on_view, view_interval=view_interval,
    )
    runs = out.results
    for rank, run in enumerate(runs[1:], start=1):
        if run.numerics() != runs[0].numerics():
            raise AssertionError(
                f"rank {rank} diverged from rank 0 despite identical"
                f" digests: {run.numerics()[:2]} != {runs[0].numerics()[:2]}"
            )
    return runs[0], out.shards
