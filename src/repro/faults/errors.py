"""Fault taxonomy: injected failures and the terminal structured error.

Every injected fault is a :class:`FaultError` subclass that *also* inherits
the exception type the equivalent real failure would raise (``OSError`` for
device errors, ``MemoryError`` for pinned exhaustion), so the production
retry/fallback paths treat injected and organic faults identically — the
whole point of the chaos harness.

:class:`FaultUnrecoverable` is the one way resilience gives up: a structured,
attributed error naming the site, fault kind, key and attempt count, raised
only after every recovery tier (aio retry, checksum re-fetch, pinned
fallback, step replay) has been exhausted or is semantically unsafe
(mid-optimizer mutation).  "Never a hang, never silent corruption" — a
failing run ends in exactly one of these.
"""

from __future__ import annotations


class FaultError(Exception):
    """Base class of everything raised by the fault-injection plane."""


class InjectedIOError(FaultError, OSError):
    """Injected device/file I/O failure (``io_error`` kind).

    An ``OSError`` subclass so the bounded-retry machinery in
    :mod:`repro.nvme.aio` handles it exactly like a real ``pread``/``pwrite``
    failure.
    """

    def __init__(self, message: str, *, site: str = "", key: str = "") -> None:
        super().__init__(message)
        self.site = site
        self.key = key


class InjectedTornWrite(InjectedIOError):
    """Injected crash between spool flush and rename (``torn_write`` kind)."""


class InjectedExhaustion(FaultError, MemoryError):
    """Injected transient pinned-pool exhaustion (``pinned_exhaustion``).

    A ``MemoryError`` so the unpinned-fallback paths (prefetch staging,
    :class:`~repro.nvme.store.ChunkedSwapper` degradation) catch it exactly
    like a real :class:`~repro.nvme.buffers.PinnedBudgetExceeded`.
    """

    def __init__(self, message: str, *, site: str = "", key: str = "") -> None:
        super().__init__(message)
        self.site = site
        self.key = key


class ChecksumMismatch(FaultError):
    """A stored record's bytes no longer match its recorded CRC.

    Internal signal of the verify-on-fetch path; bounded re-fetches run
    first, and only persistent corruption escalates to
    :class:`FaultUnrecoverable`.  Deliberately *not* an ``OSError`` so the
    I/O retry tiers never mistake corruption for a transient device error.
    """

    def __init__(
        self, key: str, *, expected: int, actual: int, attempts: int = 0
    ) -> None:
        super().__init__(
            f"checksum mismatch for {key!r}: stored crc32 {expected:#010x},"
            f" read back {actual:#010x} ({attempts} re-fetch(es))"
        )
        self.key = key
        self.expected = expected
        self.actual = actual
        self.attempts = attempts


class FaultUnrecoverable(FaultError):
    """Terminal, attributed failure after recovery tiers are exhausted.

    Attributes
    ----------
    site:
        The named injection/recovery site that gave up
        (``"store.read"``, ``"engine.optimizer"``, ...).
    kind:
        Fault classification (``"checksum"``, ``"io_error"``, ...).
    key:
        The offload key or path involved, when one is attributable.
    attempts:
        How many recovery attempts ran before giving up.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str,
        kind: str,
        key: str = "",
        attempts: int = 0,
    ) -> None:
        detail = f"[site={site} kind={kind}"
        if key:
            detail += f" key={key}"
        detail += f" attempts={attempts}]"
        super().__init__(f"{message} {detail}")
        self.site = site
        self.kind = kind
        self.key = key
        self.attempts = attempts
