"""Fault-plane runtime: the process-global plane and its no-op fast path.

Mirrors ``repro.check.runtime``: instrumented hot-path code calls
:func:`get_faults` (a module-global read) and does nothing when it returns
``None``, so the disabled configuration costs one attribute load plus an
``is None`` test per site — the <2% budget ``benchmarks/
bench_faults_overhead.py`` enforces.

Enablement routes, all independent:

* ``repro train-demo --faults "io_error@aio.read:times=2"`` — the CLI
  installs a plane for the run and prints its summary;
* ``REPRO_FAULTS=<spec>`` (+ optional ``REPRO_FAULTS_SEED=N``) in the
  environment — installs a global plane at import time, so an unmodified
  tier-1 run becomes a chaos run;
* :func:`use_faults` — scoped installation for tests.

Time never comes from the wall clock: injected delays and retry backoff
advance a process-global :class:`VirtualClock`, so chaos schedules are a
pure function of the seed and chaos tests run at full speed.
"""

from __future__ import annotations

import os
import threading
import zlib
from contextlib import contextmanager
from typing import Optional, Union

import numpy as np

from repro.faults.errors import (
    InjectedExhaustion,
    InjectedIOError,
    InjectedTornWrite,
)
from repro.faults.spec import FaultRule, parse_faults
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace_instant


class VirtualClock:
    """Deterministic microsecond counter standing in for time.sleep.

    Backoff delays and injected slow-completions *advance* the clock
    instead of sleeping, so recovery schedules are reproducible and free.
    """

    def __init__(self) -> None:
        self._us = 0
        self._lock = threading.Lock()

    def advance(self, us: int) -> int:
        """Add ``us`` microseconds; returns the new reading."""
        with self._lock:
            self._us += int(us)
            now = self._us
        get_registry().gauge("faults.virtual_clock_us").set(now)
        return now

    def now_us(self) -> int:
        with self._lock:
            return self._us


_virtual_clock = VirtualClock()


def virtual_clock() -> VirtualClock:
    """The process-global virtual backoff clock."""
    return _virtual_clock


def _stable_unit(seed: int, rule_index: int, occurrence: int) -> float:
    """Deterministic hash of (seed, rule, occurrence) onto [0, 1)."""
    h = zlib.crc32(f"{seed}|{rule_index}|{occurrence}".encode())
    return h / 2**32


class FaultPlane:
    """One seeded fault schedule plus its injection bookkeeping.

    Thread-safe: decision state is lock-protected, and probability rules
    draw from a stable hash of the per-rule occurrence index, never from
    shared RNG state — two runs with the same seed inject identically.
    """

    def __init__(
        self, rules: Union[str, tuple[FaultRule, ...]], *, seed: int = 0
    ) -> None:
        if isinstance(rules, str):
            rules = parse_faults(rules)
        self.rules = tuple(rules)
        self.seed = int(seed)
        self.clock = virtual_clock()
        self._lock = threading.Lock()
        self._seen = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        self.events = 0
        self.injected: dict[str, int] = {}  # "kind@site" -> count
        # cumulative injected virtual delay per rank — the live watchdog's
        # straggler signal (stragglers advance only the virtual clock, so
        # wall-clock deadlines alone can never see them)
        self.delay_us_by_rank: dict[int, int] = {}

    # --- decision ---------------------------------------------------------------
    def _matches(
        self, rule: FaultRule, site: str, key: Optional[str], rank: Optional[int]
    ) -> bool:
        if rule.site != site:
            return False
        if rule.rank is not None and rank != rule.rank:
            return False
        if rule.key is not None and rule.key not in (key or ""):
            return False
        return True

    def _decide(self, index: int, rule: FaultRule) -> bool:
        """Consume one matching occurrence of ``rule``; True = inject."""
        with self._lock:
            occurrence = self._seen[index]
            self._seen[index] += 1
            cap = rule.max_fires
            if cap is not None and self._fired[index] >= cap:
                return False
            if occurrence < rule.after:
                return False
            if rule.at is not None and occurrence != rule.at:
                return False
            if rule.p < 1.0 and _stable_unit(self.seed, index, occurrence) >= rule.p:
                return False
            self._fired[index] += 1
        return True

    def _record(
        self, rule: FaultRule, key: Optional[str], rank: Optional[int] = None
    ) -> None:
        label = f"{rule.kind}@{rule.site}"
        with self._lock:
            self.injected[label] = self.injected.get(label, 0) + 1
        get_registry().counter(f"faults.injected.{rule.kind}").inc()
        trace_instant(
            "faults:inject", cat="faults",
            kind=rule.kind, site=rule.site, key=key or "",
        )
        from repro.obs.flightrec import get_flightrec  # lazy: import cycle

        fr = get_flightrec()
        if fr is not None:
            fr.record(
                "fault", label, rank=rank, key=key or "",
                delay_us=rule.delay_us if rule.kind in ("slow", "straggler") else 0,
            )

    # --- event sites ------------------------------------------------------------
    def on_event(
        self,
        site: str,
        *,
        key: Optional[str] = None,
        rank: Optional[int] = None,
        nbytes: Optional[int] = None,
    ) -> None:
        """Hot-path hook: may raise an injected error or advance the clock.

        ``key`` is the offload key or file path the event concerns (for
        ``key=`` filters and error attribution); ``rank`` the simulated
        rank, when the site has one.
        """
        self.events += 1
        for i, rule in enumerate(self.rules):
            if rule.kind == "bit_flip" or not self._matches(rule, site, key, rank):
                continue
            if not self._decide(i, rule):
                continue
            self._record(rule, key, rank)
            where = f"at {site}" + (f" on {key!r}" if key else "")
            if rule.kind == "io_error":
                raise InjectedIOError(
                    f"injected I/O error {where}", site=site, key=key or ""
                )
            if rule.kind == "torn_write":
                raise InjectedTornWrite(
                    f"injected torn write {where}", site=site, key=key or ""
                )
            if rule.kind == "pinned_exhaustion":
                raise InjectedExhaustion(
                    f"injected pinned exhaustion {where}", site=site, key=key or ""
                )
            # slow / straggler: virtual latency only
            self.clock.advance(rule.delay_us)
            get_registry().counter("faults.injected_delay_us").inc(rule.delay_us)
            if rank is not None:
                with self._lock:
                    self.delay_us_by_rank[rank] = (
                        self.delay_us_by_rank.get(rank, 0) + rule.delay_us
                    )

    def corrupt(
        self, site: str, buffer: np.ndarray, *, key: Optional[str] = None
    ) -> bool:
        """Bit-flip hook for read paths: corrupt ``buffer`` in place.

        Returns True when a flip was injected.  The flipped byte index is
        hash-chosen, so the same schedule corrupts the same byte.
        """
        flipped = False
        for i, rule in enumerate(self.rules):
            if rule.kind != "bit_flip" or not self._matches(rule, site, key, None):
                continue
            if not self._decide(i, rule):
                continue
            view = memoryview(buffer).cast("B")
            if len(view) == 0:
                continue
            pos = zlib.crc32(f"{self.seed}|pos|{i}|{key}".encode()) % len(view)
            view[pos] ^= 0xFF
            self._record(rule, key)
            flipped = True
        return flipped

    # --- reporting --------------------------------------------------------------
    @property
    def injected_total(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def injected_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        with self._lock:
            for label, n in self.injected.items():
                kind = label.split("@", 1)[0]
                counts[kind] = counts.get(kind, 0) + n
        return counts

    def summary(self) -> str:
        """One-line post-run report for the CLI."""
        with self._lock:
            injected = dict(self.injected)
        head = f"faults [seed {self.seed}, {len(self.rules)} rule(s)]"
        if not injected:
            return f"{head}: no injections ({self.events} events seen)"
        detail = ", ".join(
            f"{label} x{n}" for label, n in sorted(injected.items())
        )
        return (
            f"{head}: {sum(injected.values())} injection(s) — {detail};"
            f" virtual clock {self.clock.now_us()} us"
        )


# --- process-global plane ---------------------------------------------------------
_global_plane: Optional[FaultPlane] = None


def get_faults() -> Optional[FaultPlane]:
    """The installed plane, or ``None`` (the disabled fast path)."""
    return _global_plane


def install_faults(plane: Optional[FaultPlane]) -> None:
    global _global_plane
    _global_plane = plane


@contextmanager
def use_faults(
    spec: Union[str, tuple[FaultRule, ...], FaultPlane], *, seed: int = 0
):
    """Scoped installation of a fault plane (tests, demos).

    Accepts a spec string, parsed rules, or an existing plane.  Restores
    the previous global plane on exit.
    """
    plane = spec if isinstance(spec, FaultPlane) else FaultPlane(spec, seed=seed)
    previous = get_faults()
    install_faults(plane)
    try:
        yield plane
    finally:
        install_faults(previous)


def _install_from_env() -> None:
    """``REPRO_FAULTS=<spec> pytest`` turns any run into a chaos run."""
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec or spec.lower() in ("0", "none", "off"):
        return
    seed = int(os.environ.get("REPRO_FAULTS_SEED", "0") or "0")
    install_faults(FaultPlane(spec, seed=seed))


_install_from_env()
