"""Bounded retry-with-backoff over the deterministic virtual clock.

The shared recovery primitive of the resilience tiers: aio block ops,
checksum re-fetches and chunked-swap staging all loop through
:func:`run_with_retries`, which never sleeps — backoff advances the
process-global :class:`~repro.faults.runtime.VirtualClock` and is surfaced
per site in the ``faults.retries.<site>`` / ``faults.backoff_virtual_us``
metrics (``repro.obs``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.faults.runtime import virtual_clock
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace_instant

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Per-site retry budget: ``attempts`` retries after the first try."""

    attempts: int = 2
    backoff_us: int = 200
    backoff_mult: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise ValueError("attempts must be >= 0")
        if self.backoff_us < 0:
            raise ValueError("backoff_us must be >= 0")
        if self.backoff_mult <= 0:
            raise ValueError("backoff_mult must be positive")

    def delay_us(self, retry_index: int) -> int:
        """Virtual backoff before retry ``retry_index`` (0-based)."""
        return int(self.backoff_us * self.backoff_mult**retry_index)


def run_with_retries(
    site: str,
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    key: str = "",
    retryable: tuple[type[BaseException], ...] = (OSError,),
    on_retry: Optional[Callable[[], None]] = None,
) -> T:
    """Run ``fn`` with up to ``policy.attempts`` retries on ``retryable``.

    Each retry advances the virtual clock by the policy's exponential
    backoff and increments ``faults.retries.<site>``; the final failure is
    re-raised unchanged so callers keep the original error type (a deleted
    shard still surfaces as ``OSError``, not a wrapper).
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retryable as e:
            if attempt >= policy.attempts:
                raise
            delay = policy.delay_us(attempt)
            attempt += 1
            registry = get_registry()
            registry.counter(f"faults.retries.{site}").inc()
            registry.counter("faults.backoff_virtual_us").inc(delay)
            virtual_clock().advance(delay)
            trace_instant(
                "faults:retry", cat="faults",
                site=site, attempt=attempt, key=key, error=type(e).__name__,
            )
            if on_retry is not None:
                on_retry()
