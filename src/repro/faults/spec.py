"""Fault-schedule spec grammar: ``kind@site:opt=val,...`` rules.

A schedule is a semicolon-separated list of rules::

    io_error@aio.read:times=2; slow@aio.write:p=0.1,delay_us=500

Grammar::

    spec  := rule (";" rule)*
    rule  := kind "@" site [":" opt ("," opt)*]
    opt   := name "=" value

Kinds and the sites each may attach to:

================== ==========================  =====================================
kind               sites                       effect
================== ==========================  =====================================
io_error           aio.read, aio.write         raise :class:`InjectedIOError`
torn_write         store.commit                raise :class:`InjectedTornWrite`
                                               before the spool rename
bit_flip           aio.read                    flip one byte of the read buffer
slow               aio.read, aio.write         advance the virtual clock
pinned_exhaustion  pool.acquire                raise :class:`InjectedExhaustion`
straggler          rank.begin                  advance the virtual clock
================== ==========================  =====================================

Options (all optional):

``p=F``
    Injection probability per matching event, decided by a stable hash of
    ``(seed, rule, occurrence)`` — the schedule is a pure function of the
    seed, never of wall-clock or interleaving.
``times=N``
    Cap on total injections by this rule.  Defaults to 1 when neither
    ``p`` nor ``at`` is given (one-shot), unlimited otherwise.
``at=N``
    Inject only at the N-th matching event (0-based).
``after=N``
    Ignore the first N matching events.
``rank=N``
    Only events attributed to simulated rank N.
``key=S``
    Only events whose offload key or file path contains substring ``S``.
``delay_us=N``
    Virtual-clock delay for ``slow``/``straggler`` (default 1000).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

KINDS = (
    "io_error",
    "torn_write",
    "bit_flip",
    "slow",
    "pinned_exhaustion",
    "straggler",
)

SITES = ("aio.read", "aio.write", "store.commit", "pool.acquire", "rank.begin")

#: Which sites each fault kind may attach to.
KIND_SITES: dict[str, tuple[str, ...]] = {
    "io_error": ("aio.read", "aio.write"),
    "torn_write": ("store.commit",),
    "bit_flip": ("aio.read",),
    "slow": ("aio.read", "aio.write"),
    "pinned_exhaustion": ("pool.acquire",),
    "straggler": ("rank.begin",),
}

_INT_OPTS = ("times", "at", "after", "rank", "delay_us")


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One parsed injection rule (see module docstring for semantics)."""

    kind: str
    site: str
    p: float = 1.0
    times: Optional[int] = None
    at: Optional[int] = None
    after: int = 0
    rank: Optional[int] = None
    key: Optional[str] = None
    delay_us: int = 1000

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.site not in KIND_SITES[self.kind]:
            raise ValueError(
                f"fault kind {self.kind!r} cannot attach to site"
                f" {self.site!r}; valid sites: {KIND_SITES[self.kind]}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p={self.p} must be in [0, 1]")
        if self.times is not None and self.times < 0:
            raise ValueError("times must be >= 0")
        if self.at is not None and self.at < 0:
            raise ValueError("at must be >= 0")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay_us < 0:
            raise ValueError("delay_us must be >= 0")

    @property
    def max_fires(self) -> Optional[int]:
        """Injection cap: explicit ``times``, 1 for plain one-shot rules."""
        if self.times is not None:
            return self.times
        if self.at is not None:
            return 1
        if self.p >= 1.0:
            return 1  # a bare `kind@site` rule is one-shot by default
        return None

    def format(self) -> str:
        """Round-trippable spec text for this rule."""
        opts = []
        if self.p < 1.0:
            opts.append(f"p={self.p:g}")
        for name in ("times", "at", "rank"):
            v = getattr(self, name)
            if v is not None:
                opts.append(f"{name}={v}")
        if self.after:
            opts.append(f"after={self.after}")
        if self.key is not None:
            opts.append(f"key={self.key}")
        if self.delay_us != 1000:
            opts.append(f"delay_us={self.delay_us}")
        text = f"{self.kind}@{self.site}"
        return text + (":" + ",".join(opts) if opts else "")


def parse_faults(spec: str) -> tuple[FaultRule, ...]:
    """Parse a fault-schedule spec string into rules.

    Raises ``ValueError`` with the offending fragment on any grammar or
    validation error.
    """
    rules: list[FaultRule] = []
    for fragment in spec.split(";"):
        fragment = fragment.strip()
        if not fragment:
            continue
        head, _, tail = fragment.partition(":")
        kind, sep, site = head.partition("@")
        if not sep or not kind.strip() or not site.strip():
            raise ValueError(
                f"bad fault rule {fragment!r}: expected 'kind@site[:opts]'"
            )
        kwargs: dict = {}
        if tail.strip():
            for opt in tail.split(","):
                name, sep, value = opt.partition("=")
                name, value = name.strip(), value.strip()
                if not sep or not name or not value:
                    raise ValueError(
                        f"bad option {opt!r} in fault rule {fragment!r}:"
                        " expected 'name=value'"
                    )
                if name == "p":
                    kwargs["p"] = float(value)
                elif name in _INT_OPTS:
                    kwargs[name] = int(value)
                elif name == "key":
                    kwargs["key"] = value
                else:
                    raise ValueError(
                        f"unknown option {name!r} in fault rule {fragment!r}"
                    )
        rules.append(FaultRule(kind=kind.strip(), site=site.strip(), **kwargs))
    if not rules:
        raise ValueError(f"fault spec {spec!r} contains no rules")
    return tuple(rules)


def format_faults(rules: tuple[FaultRule, ...]) -> str:
    """Spec text that parses back to ``rules``."""
    return "; ".join(r.format() for r in rules)
