"""repro.faults: deterministic fault injection and the resilience tiers.

Offloaded training makes the storage path part of the correctness envelope
(PAPER Secs. 5-6): parameter, gradient and optimizer state round-trip
through CPU DRAM and NVMe every step, so an I/O fault anywhere on that path
is a training fault.  This package provides both halves of the answer:

* a **fault-injection plane** (:class:`~repro.faults.runtime.FaultPlane`)
  that deterministically injects I/O errors, torn writes, bit-flips, slow
  completions, pinned-pool exhaustion and straggler ranks at named sites in
  the nvme/offload hot path, driven by a seeded spec grammar
  (:mod:`repro.faults.spec`);
* the **recovery primitives** the production stack uses to survive them:
  bounded retry-with-backoff over a deterministic
  :class:`~repro.faults.runtime.VirtualClock`
  (:func:`~repro.faults.retry.run_with_retries`), and the structured
  terminal error taxonomy (:mod:`repro.faults.errors`) ending in
  :class:`~repro.faults.errors.FaultUnrecoverable`.

Recovery is tiered: aio block retries absorb transient device errors,
checksum verify-on-fetch re-reads corrupted records, pinned exhaustion
degrades async staging to sync unpinned I/O, and engine-level step replay
(via ``coordinator.abort_step``) re-executes a failed step bit-identically.
Only faults that none of those tiers can absorb raise
``FaultUnrecoverable``.  Enable via ``--faults`` on the CLI,
``REPRO_FAULTS=<spec>`` in the environment, or :func:`use_faults` in tests;
disabled, every site costs one global load plus an ``is None`` test
(enforced by ``benchmarks/bench_faults_overhead.py``).
"""

from repro.faults.errors import (
    ChecksumMismatch,
    FaultError,
    FaultUnrecoverable,
    InjectedExhaustion,
    InjectedIOError,
    InjectedTornWrite,
)
from repro.faults.retry import RetryPolicy, run_with_retries
from repro.faults.runtime import (
    FaultPlane,
    VirtualClock,
    get_faults,
    install_faults,
    use_faults,
    virtual_clock,
)
from repro.faults.spec import (
    KIND_SITES,
    KINDS,
    SITES,
    FaultRule,
    format_faults,
    parse_faults,
)

__all__ = [
    "ChecksumMismatch",
    "FaultError",
    "FaultPlane",
    "FaultRule",
    "FaultUnrecoverable",
    "InjectedExhaustion",
    "InjectedIOError",
    "InjectedTornWrite",
    "KINDS",
    "KIND_SITES",
    "RetryPolicy",
    "SITES",
    "VirtualClock",
    "format_faults",
    "get_faults",
    "install_faults",
    "parse_faults",
    "run_with_retries",
    "use_faults",
    "virtual_clock",
]
