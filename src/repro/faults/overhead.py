"""Fault-plane overhead measurement (the <2%-disabled contract).

Same measurement model as ``repro.check.overhead``: the disabled fast path
is an attribute load plus an ``is None`` test at each injection site, too
cheap to resolve by diffing whole steps, so it is modeled as *per-call cost
x sites hit per step*: microbenchmark the gate, count how many fault events
one NVMe-offloaded step actually dispatches (via a counting plane), and
express their product as a fraction of the measured step time.  The
enabled-but-idle cost (a plane installed whose rules never match) is
measured directly, interleaved so machine drift hits both configurations
equally.  ``benchmarks/bench_faults_overhead.py`` turns
:attr:`disabled_overhead` into the CI guard.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass

from repro.faults.runtime import FaultPlane, get_faults, use_faults


@dataclass
class FaultsOverheadReport:
    """What the injection plane costs on one engine step."""

    step_disabled_s: float  # min step time, no plane installed
    step_enabled_s: float  # min step time, idle plane installed
    events_per_step: int  # fault-gate events one step dispatches
    noop_gate_s: float  # per-call cost of the disabled gate

    @property
    def disabled_overhead(self) -> float:
        """Modeled disabled-gate overhead fraction of the step time."""
        return self.events_per_step * self.noop_gate_s / self.step_disabled_s

    @property
    def enabled_overhead(self) -> float:
        """Measured overhead fraction with an idle plane installed."""
        return self.step_enabled_s / self.step_disabled_s - 1.0

    def render(self) -> str:
        return "\n".join(
            [
                f"step (faults off):   {self.step_disabled_s * 1e3:8.2f} ms",
                f"step (idle plane):   {self.step_enabled_s * 1e3:8.2f} ms",
                f"events per step:     {self.events_per_step:8d}",
                f"disabled gate call:  {self.noop_gate_s * 1e9:8.1f} ns",
                f"disabled overhead:   {self.disabled_overhead:8.3%}",
                f"enabled overhead:    {self.enabled_overhead:8.3%}",
            ]
        )


class _CountingPlane(FaultPlane):
    """A plane with no rules that counts every site dispatch."""

    def __init__(self) -> None:
        super().__init__((), seed=0)
        self.calls = 0

    def on_event(self, site, **kwargs) -> None:  # noqa: D102
        self.calls += 1

    def corrupt(self, site, buffer, **kwargs) -> bool:  # noqa: D102
        self.calls += 1
        return False


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _gate_cost(calls: int) -> float:
    """Seconds per disabled-plane gate: global load + ``is None`` test."""
    t0 = time.perf_counter()
    hits = 0
    for _ in range(calls):
        if get_faults() is not None:  # the shape instrumented code uses
            hits += 1
    elapsed = time.perf_counter() - t0
    assert hits in (0, calls)  # keep the loop body live
    return elapsed / calls


def measure_faults_overhead(
    *,
    reps: int = 7,
    hidden_dim: int = 128,
    num_layers: int = 2,
    world_size: int = 2,
    micro_calls: int = 200_000,
) -> FaultsOverheadReport:
    """Run a small NVMe-offloaded engine step with and without a plane.

    NVMe placement matters: the injection sites live on the aio/store/pool
    hot path, so a resident-tier step would undercount them.
    """
    # Local imports: keep ``import repro.faults`` free of the engine stack.
    from repro.core.config import OffloadConfig, OffloadDevice, ZeroConfig
    from repro.core.engine import ZeroInfinityEngine
    from repro.nn import GPTModel, TransformerConfig
    from repro.utils.rng import seeded_rng

    model_cfg = TransformerConfig(
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        num_heads=4,
        vocab_size=128,
        max_seq=32,
    )
    cfg = ZeroConfig(
        world_size=world_size,
        offload=OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        ),
        loss_scale=1.0,
    )
    rng = seeded_rng(3)
    batches = [
        (rng.integers(0, 128, (2, 32)), rng.integers(0, 128, (2, 32)))
        for _ in range(world_size)
    ]

    gc_was_enabled = gc.isenabled()
    disabled_s = enabled_s = float("inf")
    with ZeroInfinityEngine(
        cfg, model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0))
    ) as engine:
        step = lambda: engine.train_step(batches)  # noqa: E731
        step()  # warm-up: caches primed, spool files created
        counting = _CountingPlane()
        with use_faults(counting):
            step()
        events_per_step = max(counting.calls, 1)
        idle_plane = FaultPlane((), seed=0)
        # GC disabled while timing (as timeit does) so collection pauses
        # landing in random reps do not swamp the signal.
        gc.disable()
        try:
            for _ in range(reps):
                gc.collect()
                disabled_s = min(disabled_s, _timed(step))
                gc.collect()
                with use_faults(idle_plane):
                    enabled_s = min(enabled_s, _timed(step))
        finally:
            if gc_was_enabled:
                gc.enable()

    return FaultsOverheadReport(
        step_disabled_s=disabled_s,
        step_enabled_s=enabled_s,
        events_per_step=events_per_step,
        noop_gate_s=_gate_cost(micro_calls),
    )
