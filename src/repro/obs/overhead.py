"""Tracer overhead measurement (the <2% / <10% contract).

Instrumentation that is always compiled in must be provably cheap, or the
next perf PR will rip it out.  :func:`measure_overhead` quantifies both
paths on a real (small) engine step:

* **disabled** — the no-op fast path.  An un-instrumented build does not
  exist to diff against, so the overhead model is *per-call cost x calls
  per step*: microbenchmark ``trace_span`` against a disabled tracer, count
  how many spans one traced step actually records, and express their
  product as a fraction of the measured step time.
* **enabled** — directly measured: min step time with an enabled tracer
  over min step time with tracing disabled, minus one.  The two
  configurations are timed *interleaved* (off, on, off, on, ...) so slow
  drift — thermal, cache, a neighbouring process — hits both equally
  instead of biasing whichever ran second.

Minimum-of-repetitions is used throughout because min is the
noise-robust estimator for "how fast can this code go".
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass

from repro.obs.memscope import MemScope, mem_alloc, use_memscope
from repro.obs.tracer import Tracer, trace_span, use_tracer


@dataclass
class OverheadReport:
    """What the tracer costs on one engine step."""

    step_disabled_s: float  # min step time, tracing disabled
    step_enabled_s: float  # min step time, tracing enabled
    spans_per_step: int  # spans one traced step records
    noop_call_s: float  # per-call cost of a disabled trace_span
    span_call_s: float  # per-call cost of an enabled span (commit incl.)

    @property
    def disabled_overhead(self) -> float:
        """Modeled no-op overhead fraction of the disabled step time."""
        return self.spans_per_step * self.noop_call_s / self.step_disabled_s

    @property
    def enabled_overhead(self) -> float:
        """Measured enabled-tracing overhead fraction."""
        return self.step_enabled_s / self.step_disabled_s - 1.0

    def render(self) -> str:
        return "\n".join(
            [
                f"step (tracing off):  {self.step_disabled_s * 1e3:8.2f} ms",
                f"step (tracing on):   {self.step_enabled_s * 1e3:8.2f} ms",
                f"spans per step:      {self.spans_per_step:8d}",
                f"no-op span call:     {self.noop_call_s * 1e9:8.1f} ns",
                f"enabled span call:   {self.span_call_s * 1e9:8.1f} ns",
                f"disabled overhead:   {self.disabled_overhead:8.3%}",
                f"enabled overhead:    {self.enabled_overhead:8.3%}",
            ]
        )


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _per_call_cost(calls: int, *, enabled: bool) -> float:
    """Seconds per trace_span() call against a fresh global tracer."""
    tracer = Tracer(enabled=enabled, max_spans=calls + 1)
    with use_tracer(tracer):
        t0 = time.perf_counter()
        for _ in range(calls):
            with trace_span("bench:noop", cat="bench"):
                pass
        elapsed = time.perf_counter() - t0
    return elapsed / calls


@dataclass
class MemScopeOverheadReport:
    """What the memory ledger costs on one engine step."""

    step_disabled_s: float  # min step time, memscope disabled
    step_enabled_s: float  # min step time, memscope enabled
    ops_per_step: int  # alloc/free/sample calls one scoped step makes
    noop_call_s: float  # per-call cost of a disabled mem_alloc
    op_call_s: float  # per-call cost of an enabled alloc (attribution incl.)

    @property
    def disabled_overhead(self) -> float:
        """Modeled no-op overhead fraction of the disabled step time."""
        return self.ops_per_step * self.noop_call_s / self.step_disabled_s

    @property
    def enabled_overhead(self) -> float:
        """Measured enabled-memscope overhead fraction."""
        return self.step_enabled_s / self.step_disabled_s - 1.0

    def render(self) -> str:
        return "\n".join(
            [
                f"step (memscope off): {self.step_disabled_s * 1e3:8.2f} ms",
                f"step (memscope on):  {self.step_enabled_s * 1e3:8.2f} ms",
                f"ledger ops per step: {self.ops_per_step:8d}",
                f"no-op ledger call:   {self.noop_call_s * 1e9:8.1f} ns",
                f"enabled ledger call: {self.op_call_s * 1e9:8.1f} ns",
                f"disabled overhead:   {self.disabled_overhead:8.3%}",
                f"enabled overhead:    {self.enabled_overhead:8.3%}",
            ]
        )


def _per_memop_cost(calls: int, *, enabled: bool) -> float:
    """Seconds per mem_alloc() call against a fresh global scope."""
    scope = MemScope(enabled=enabled)
    with use_memscope(scope):
        t0 = time.perf_counter()
        for _ in range(calls):
            mem_alloc("gpu", 1024, category="workspace", owner="bench")
        elapsed = time.perf_counter() - t0
    return elapsed / calls


def measure_memscope_overhead(
    *,
    reps: int = 7,
    hidden_dim: int = 160,
    num_layers: int = 2,
    world_size: int = 2,
    micro_calls: int = 20_000,
) -> MemScopeOverheadReport:
    """Run a small CPU-offloaded engine step with memscope off and on.

    Same protocol as :func:`measure_overhead`: the disabled path is
    modeled (per-call no-op cost x ledger ops per step, from
    :attr:`MemScope.op_count`), the enabled path is measured interleaved
    with GC off.
    """
    from repro.core.config import OffloadConfig, OffloadDevice, ZeroConfig
    from repro.nn import GPTModel, TransformerConfig
    from repro.core.engine import ZeroInfinityEngine
    from repro.utils.rng import seeded_rng

    model_cfg = TransformerConfig(
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        num_heads=4,
        vocab_size=128,
        max_seq=32,
    )
    zero_cfg = ZeroConfig(
        world_size=world_size,
        offload=OffloadConfig(
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
        ),
        loss_scale=1.0,
    )
    rng = seeded_rng(3)
    batches = [
        (rng.integers(0, 128, (2, 32)), rng.integers(0, 128, (2, 32)))
        for _ in range(world_size)
    ]
    with ZeroInfinityEngine(
        zero_cfg, model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0))
    ) as engine:
        step = lambda: engine.train_step(batches)  # noqa: E731
        step()  # warm-up: caches primed, buffers allocated
        scope = MemScope(enabled=True)
        with use_memscope(scope):
            step()
            ops_per_step = scope.op_count
        disabled_s = enabled_s = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(reps):
                gc.collect()
                disabled_s = min(disabled_s, _timed(step))
                gc.collect()
                with use_memscope(scope):
                    enabled_s = min(enabled_s, _timed(step))
        finally:
            if gc_was_enabled:
                gc.enable()

    return MemScopeOverheadReport(
        step_disabled_s=disabled_s,
        step_enabled_s=enabled_s,
        ops_per_step=ops_per_step,
        noop_call_s=_per_memop_cost(micro_calls, enabled=False),
        op_call_s=_per_memop_cost(micro_calls, enabled=True),
    )


@dataclass
class PerfScopeOverheadReport:
    """What perfscope's stall instrumentation costs on one engine step.

    The ledger/critical-path extraction is post-processing over committed
    spans, so the hot-path cost is the stall-span call sites (plus the
    counter samples they ride with); ``ledger_build_s`` reports the
    off-path analysis cost for context.
    """

    step_disabled_s: float  # min step time, tracing disabled
    step_enabled_s: float  # min step time, tracing enabled
    spans_per_step: int  # all spans one traced step records
    stall_ops_per_step: int  # stall spans + counter samples among them
    noop_call_s: float  # per-call cost of a disabled stall_span
    stall_call_s: float  # per-call cost of an enabled stall_span
    ledger_build_s: float  # build_step_ledgers over the traced step
    stall_fraction: float  # of the traced step's wall-clock
    overlap_fraction: float
    residual_us: float  # ledger accounting disagreement (should be ~0)

    @property
    def disabled_overhead(self) -> float:
        """Modeled no-op overhead fraction of the disabled step time."""
        return self.spans_per_step * self.noop_call_s / self.step_disabled_s

    @property
    def enabled_overhead(self) -> float:
        """Measured enabled-tracing overhead fraction."""
        return self.step_enabled_s / self.step_disabled_s - 1.0

    @property
    def steps_per_s(self) -> float:
        return 1.0 / self.step_disabled_s if self.step_disabled_s > 0 else 0.0

    def render(self) -> str:
        return "\n".join(
            [
                f"step (tracing off):  {self.step_disabled_s * 1e3:8.2f} ms",
                f"step (tracing on):   {self.step_enabled_s * 1e3:8.2f} ms",
                f"spans per step:      {self.spans_per_step:8d}",
                f"stall ops per step:  {self.stall_ops_per_step:8d}",
                f"no-op stall call:    {self.noop_call_s * 1e9:8.1f} ns",
                f"enabled stall call:  {self.stall_call_s * 1e9:8.1f} ns",
                f"ledger build:        {self.ledger_build_s * 1e3:8.2f} ms",
                f"stall fraction:      {self.stall_fraction:8.3%}",
                f"overlap fraction:    {self.overlap_fraction:8.3%}",
                f"ledger residual:     {self.residual_us:8.3f} us",
                f"disabled overhead:   {self.disabled_overhead:8.3%}",
                f"enabled overhead:    {self.enabled_overhead:8.3%}",
            ]
        )


def _per_stall_cost(calls: int, *, enabled: bool) -> float:
    """Seconds per stall_span() call against a fresh global tracer."""
    from repro.obs.perfscope import stall_span

    tracer = Tracer(enabled=enabled, max_spans=calls + 1)
    with use_tracer(tracer):
        t0 = time.perf_counter()
        for _ in range(calls):
            with stall_span("pinned_wait", owner="bench"):
                pass
        elapsed = time.perf_counter() - t0
    return elapsed / calls


def measure_perfscope_overhead(
    *,
    reps: int = 7,
    hidden_dim: int = 160,
    num_layers: int = 2,
    world_size: int = 2,
    micro_calls: int = 20_000,
) -> PerfScopeOverheadReport:
    """Run a small CPU-offloaded engine step with tracing off and on.

    Same protocol as :func:`measure_memscope_overhead`: the disabled path
    is modeled (per-call no-op cost x spans per step), the enabled path is
    measured interleaved with GC off; the traced step additionally runs
    through :func:`repro.obs.perfscope.build_step_ledgers` to report the
    post-processing cost and the ledger's own stall/overlap read-out.
    """
    from repro.core.config import OffloadConfig, OffloadDevice, ZeroConfig
    from repro.core.engine import ZeroInfinityEngine
    from repro.nn import GPTModel, TransformerConfig
    from repro.obs.perfscope import build_step_ledgers
    from repro.utils.rng import seeded_rng

    model_cfg = TransformerConfig(
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        num_heads=4,
        vocab_size=128,
        max_seq=32,
    )
    zero_cfg = ZeroConfig(
        world_size=world_size,
        offload=OffloadConfig(
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
        ),
        loss_scale=1.0,
    )
    rng = seeded_rng(3)
    batches = [
        (rng.integers(0, 128, (2, 32)), rng.integers(0, 128, (2, 32)))
        for _ in range(world_size)
    ]
    with ZeroInfinityEngine(
        zero_cfg, model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0))
    ) as engine:
        step = lambda: engine.train_step(batches)  # noqa: E731
        step()  # warm-up: caches primed, buffers allocated
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            step()
        records = tracer.records()
        spans_per_step = len(records)
        stall_ops = sum(1 for r in records if r.cat == "stall" or r.counter)
        t0 = time.perf_counter()
        ledgers = build_step_ledgers(records)
        ledger_build_s = time.perf_counter() - t0
        led = ledgers[-1]
        disabled_s = enabled_s = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(reps):
                gc.collect()
                disabled_s = min(disabled_s, _timed(step))
                tracer.clear()
                gc.collect()
                with use_tracer(tracer):
                    enabled_s = min(enabled_s, _timed(step))
        finally:
            if gc_was_enabled:
                gc.enable()

    return PerfScopeOverheadReport(
        step_disabled_s=disabled_s,
        step_enabled_s=enabled_s,
        spans_per_step=spans_per_step,
        stall_ops_per_step=stall_ops,
        noop_call_s=_per_stall_cost(micro_calls, enabled=False),
        stall_call_s=_per_stall_cost(micro_calls, enabled=True),
        ledger_build_s=ledger_build_s,
        stall_fraction=led.stall_fraction(),
        overlap_fraction=led.overlap_fraction(),
        residual_us=led.residual_us,
    )


@dataclass
class LiveOverheadReport:
    """What the live telemetry plane + flight recorder cost per step.

    The engine's hot-path hooks are ``get_live()`` / ``get_flightrec()``
    global reads (``None`` when the plane is not installed), so the
    disabled model is *per-lookup cost x hook sites per step*; the
    enabled path — sample serialization, transport publish, stall
    folding, flight-ring appends — is measured interleaved.
    """

    step_disabled_s: float  # min step time, plane not installed
    step_enabled_s: float  # min step time, plane + recorder installed
    ops_per_step: int  # live hooks + flight records one step makes
    noop_call_s: float  # per-call cost of a get_live() miss
    emit_call_s: float  # per-call cost of an enabled emit (publish incl.)
    samples_per_step: int  # telemetry samples one step publishes

    @property
    def disabled_overhead(self) -> float:
        """Modeled no-op overhead fraction of the disabled step time."""
        return self.ops_per_step * self.noop_call_s / self.step_disabled_s

    @property
    def enabled_overhead(self) -> float:
        """Measured enabled-plane overhead fraction."""
        return self.step_enabled_s / self.step_disabled_s - 1.0

    @property
    def steps_per_s(self) -> float:
        return 1.0 / self.step_disabled_s if self.step_disabled_s > 0 else 0.0

    def render(self) -> str:
        return "\n".join(
            [
                f"step (live off):     {self.step_disabled_s * 1e3:8.2f} ms",
                f"step (live on):      {self.step_enabled_s * 1e3:8.2f} ms",
                f"hook ops per step:   {self.ops_per_step:8d}",
                f"samples per step:    {self.samples_per_step:8d}",
                f"no-op hook call:     {self.noop_call_s * 1e9:8.1f} ns",
                f"enabled emit call:   {self.emit_call_s * 1e9:8.1f} ns",
                f"disabled overhead:   {self.disabled_overhead:8.3%}",
                f"enabled overhead:    {self.enabled_overhead:8.3%}",
            ]
        )


def _per_live_noop_cost(calls: int) -> float:
    """Seconds per disabled hook site: a get_live() miss plus the check."""
    from repro.obs.live import get_live

    t0 = time.perf_counter()
    for _ in range(calls):
        if get_live() is not None:  # pragma: no cover - plane not installed
            raise AssertionError("plane installed during no-op timing")
    elapsed = time.perf_counter() - t0
    return elapsed / calls


def _per_emit_cost(calls: int) -> float:
    """Seconds per enabled LivePlane.emit against a local transport."""
    from repro.obs.live import LiveConfig, LivePlane

    plane = LivePlane(world=1, rank=0, config=LiveConfig())
    try:
        t0 = time.perf_counter()
        for i in range(calls):
            plane.emit(step=i, phase="bench")
        elapsed = time.perf_counter() - t0
    finally:
        plane.close()
    return elapsed / calls


def measure_live_overhead(
    *,
    reps: int = 7,
    hidden_dim: int = 160,
    num_layers: int = 2,
    world_size: int = 2,
    micro_calls: int = 20_000,
) -> LiveOverheadReport:
    """Run a small CPU-offloaded engine step with the live plane off and on.

    Same protocol as :func:`measure_memscope_overhead`: the disabled path
    is modeled (per-call ``get_live()`` miss cost x hook sites per step,
    from :attr:`LivePlane.op_count` + :attr:`FlightRecorder.op_count`),
    the enabled path is measured interleaved with GC off against an
    in-process transport plus an installed flight recorder.
    """
    from repro.core.config import OffloadConfig, OffloadDevice, ZeroConfig
    from repro.core.engine import ZeroInfinityEngine
    from repro.nn import GPTModel, TransformerConfig
    from repro.obs.flightrec import FlightRecorder, use_flightrec
    from repro.obs.live import LiveConfig, LivePlane, use_live
    from repro.utils.rng import seeded_rng

    model_cfg = TransformerConfig(
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        num_heads=4,
        vocab_size=128,
        max_seq=32,
    )
    zero_cfg = ZeroConfig(
        world_size=world_size,
        offload=OffloadConfig(
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
        ),
        loss_scale=1.0,
    )
    rng = seeded_rng(3)
    batches = [
        (rng.integers(0, 128, (2, 32)), rng.integers(0, 128, (2, 32)))
        for _ in range(world_size)
    ]

    def fresh_plane() -> tuple[LivePlane, FlightRecorder]:
        return (
            LivePlane(world=world_size, config=LiveConfig()),
            FlightRecorder(),
        )

    with ZeroInfinityEngine(
        zero_cfg, model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0))
    ) as engine:
        step = lambda: engine.train_step(batches)  # noqa: E731
        step()  # warm-up: caches primed, buffers allocated
        plane, rec = fresh_plane()
        with use_flightrec(rec), use_live(plane):
            step()
            ops_per_step = plane.op_count + rec.op_count
            samples_per_step = plane.samples_published
        disabled_s = enabled_s = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(reps):
                gc.collect()
                disabled_s = min(disabled_s, _timed(step))
                gc.collect()
                plane, rec = fresh_plane()
                with use_flightrec(rec), use_live(plane):
                    enabled_s = min(enabled_s, _timed(step))
        finally:
            if gc_was_enabled:
                gc.enable()

    return LiveOverheadReport(
        step_disabled_s=disabled_s,
        step_enabled_s=enabled_s,
        ops_per_step=ops_per_step,
        noop_call_s=_per_live_noop_cost(micro_calls),
        emit_call_s=_per_emit_cost(micro_calls),
        samples_per_step=samples_per_step,
    )


def measure_overhead(
    *,
    reps: int = 7,
    hidden_dim: int = 160,
    num_layers: int = 2,
    world_size: int = 2,
    micro_calls: int = 20_000,
) -> OverheadReport:
    """Run a small CPU-offloaded engine step with tracing off and on."""
    # Local imports: keep ``import repro.obs`` free of the engine stack.
    from repro.core.config import OffloadConfig, OffloadDevice, ZeroConfig
    from repro.nn import GPTModel, TransformerConfig
    from repro.core.engine import ZeroInfinityEngine
    from repro.utils.rng import seeded_rng

    model_cfg = TransformerConfig(
        num_layers=num_layers,
        hidden_dim=hidden_dim,
        num_heads=4,
        vocab_size=128,
        max_seq=32,
    )
    # CPU offload: exercises the swap paths without file-I/O timing noise.
    zero_cfg = ZeroConfig(
        world_size=world_size,
        offload=OffloadConfig(
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
        ),
        loss_scale=1.0,
    )
    rng = seeded_rng(3)
    batches = [
        (rng.integers(0, 128, (2, 32)), rng.integers(0, 128, (2, 32)))
        for _ in range(world_size)
    ]
    with ZeroInfinityEngine(
        zero_cfg, model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0))
    ) as engine:
        step = lambda: engine.train_step(batches)  # noqa: E731
        step()  # warm-up: caches primed, buffers allocated
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            step()
            spans_per_step = len(tracer)
        disabled_s = enabled_s = float("inf")
        # GC disabled while timing (as timeit does): span recording
        # allocates thousands of small objects per step, and collection
        # pauses landing in random reps would swamp the signal.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(reps):
                gc.collect()
                disabled_s = min(disabled_s, _timed(step))
                tracer.clear()
                gc.collect()
                with use_tracer(tracer):
                    enabled_s = min(enabled_s, _timed(step))
        finally:
            if gc_was_enabled:
                gc.enable()

    return OverheadReport(
        step_disabled_s=disabled_s,
        step_enabled_s=enabled_s,
        spans_per_step=spans_per_step,
        noop_call_s=_per_call_cost(micro_calls, enabled=False),
        span_call_s=_per_call_cost(micro_calls, enabled=True),
    )
