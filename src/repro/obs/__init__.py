"""Unified telemetry: span tracing, metrics, and trace export.

The observability layer for the *real* execution paths (the simulator has
its own timeline in :mod:`repro.sim`).  Three pieces:

* :mod:`repro.obs.tracer` — a low-overhead, thread-aware span tracer with
  a no-op fast path, recording into a process-global :class:`Tracer`;
* :mod:`repro.obs.metrics` — a global registry of counters, gauges and
  histograms every layer aggregates into;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto), JSONL, and
  ASCII summary exporters;
* :mod:`repro.obs.memscope` — a live per-tier byte ledger with owner
  attribution, watermark timelines and an ASCII memory gantt;
* :mod:`repro.obs.memreport` — measured-vs-analytic-model drift reports
  (Eqs. 1-5) with tuning recommendations;
* :mod:`repro.obs.perfscope` — per-step time ledger (compute/comm/nvme/
  stall/overlap, exact to the wall-clock), stall attribution by cause and
  owner, and critical-path extraction over the span DAG;
* :mod:`repro.obs.perfreport` — measured-vs-model bandwidth drift reports
  (Eqs. 6-11) with stall-driven knob recommendations;
* :mod:`repro.obs.live` — the live telemetry plane: per-rank sample
  streaming (in-process or over the shm telemetry ring), a health
  watchdog (heartbeat skew, stragglers, pressure alarms), and the
  ``train-demo --live`` ASCII dashboard;
* :mod:`repro.obs.flightrec` — the crash flight recorder: bounded
  per-rank event rings dumped as a deterministic postmortem bundle on
  terminal failures.

Typical use::

    from repro.obs import use_tracer, write_chrome_trace, get_registry

    with use_tracer() as tracer:
        engine.train_step(batches)
    write_chrome_trace("trace.json", tracer, get_registry())
    # open trace.json at https://ui.perfetto.dev
"""

from repro.obs.tracer import (
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    trace_counter,
    trace_instant,
    trace_span,
    tracing_enabled,
    use_tracer,
)
from repro.obs.memscope import (
    CATEGORIES,
    TIERS,
    MemScope,
    WatermarkSample,
    attributed_empty,
    attributed_zeros,
    attribution_for_key,
    get_memscope,
    mem_alloc,
    mem_free,
    mem_sample,
    memscope_enabled,
    render_memory_gantt,
    set_memscope,
    use_memscope,
)
from repro.obs.memreport import (
    DriftRow,
    MemReport,
    build_memreport,
)
from repro.obs.perfscope import (
    PHASES,
    STALL_CAUSES,
    CriticalPath,
    PerfSummary,
    Segment,
    StallTotal,
    StepLedger,
    build_step_ledgers,
    classify_span,
    critical_path_from_sim,
    critical_path_from_trace,
    render_perf_breakdown,
    stall_span,
    summarize_ledgers,
)
from repro.obs.perfreport import (
    PerfDriftRow,
    PerfReport,
    build_perfreport,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    merged_chrome_trace,
    sim_to_chrome_trace,
    telemetry_summary,
    write_chrome_trace,
    write_merged_chrome_trace,
    write_metrics_jsonl,
    write_sim_trace,
    write_spans_jsonl,
)
from repro.obs.live import (
    ClusterView,
    HealthEvent,
    HealthWatchdog,
    LiveConfig,
    LivePlane,
    TelemetrySample,
    get_live,
    install_live,
    merge_telemetry_shards,
    render_dashboard,
    use_live,
)
from repro.obs.flightrec import (
    FlightEvent,
    FlightRecorder,
    dump_postmortem,
    get_flightrec,
    install_flightrec,
    use_flightrec,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_counter",
    "trace_instant",
    "trace_span",
    "tracing_enabled",
    "use_tracer",
    "CATEGORIES",
    "TIERS",
    "MemScope",
    "WatermarkSample",
    "attributed_empty",
    "attributed_zeros",
    "attribution_for_key",
    "get_memscope",
    "mem_alloc",
    "mem_free",
    "mem_sample",
    "memscope_enabled",
    "render_memory_gantt",
    "set_memscope",
    "use_memscope",
    "DriftRow",
    "MemReport",
    "build_memreport",
    "PHASES",
    "STALL_CAUSES",
    "CriticalPath",
    "PerfSummary",
    "Segment",
    "StallTotal",
    "StepLedger",
    "build_step_ledgers",
    "classify_span",
    "critical_path_from_sim",
    "critical_path_from_trace",
    "render_perf_breakdown",
    "stall_span",
    "summarize_ledgers",
    "PerfDriftRow",
    "PerfReport",
    "build_perfreport",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "chrome_trace",
    "chrome_trace_events",
    "merged_chrome_trace",
    "sim_to_chrome_trace",
    "telemetry_summary",
    "write_chrome_trace",
    "write_merged_chrome_trace",
    "write_metrics_jsonl",
    "write_sim_trace",
    "write_spans_jsonl",
    "ClusterView",
    "HealthEvent",
    "HealthWatchdog",
    "LiveConfig",
    "LivePlane",
    "TelemetrySample",
    "get_live",
    "install_live",
    "merge_telemetry_shards",
    "render_dashboard",
    "use_live",
    "FlightEvent",
    "FlightRecorder",
    "dump_postmortem",
    "get_flightrec",
    "install_flightrec",
    "use_flightrec",
]
