"""Unified telemetry: span tracing, metrics, and trace export.

The observability layer for the *real* execution paths (the simulator has
its own timeline in :mod:`repro.sim`).  Three pieces:

* :mod:`repro.obs.tracer` — a low-overhead, thread-aware span tracer with
  a no-op fast path, recording into a process-global :class:`Tracer`;
* :mod:`repro.obs.metrics` — a global registry of counters, gauges and
  histograms every layer aggregates into;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto), JSONL, and
  ASCII summary exporters.

Typical use::

    from repro.obs import use_tracer, write_chrome_trace, get_registry

    with use_tracer() as tracer:
        engine.train_step(batches)
    write_chrome_trace("trace.json", tracer, get_registry())
    # open trace.json at https://ui.perfetto.dev
"""

from repro.obs.tracer import (
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    trace_instant,
    trace_span,
    tracing_enabled,
    use_tracer,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    sim_to_chrome_trace,
    telemetry_summary,
    write_chrome_trace,
    write_sim_trace,
    write_spans_jsonl,
)

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "trace_instant",
    "trace_span",
    "tracing_enabled",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "chrome_trace",
    "chrome_trace_events",
    "sim_to_chrome_trace",
    "telemetry_summary",
    "write_chrome_trace",
    "write_sim_trace",
    "write_spans_jsonl",
]
