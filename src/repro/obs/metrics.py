"""Global metrics registry: counters, gauges, histograms.

Where the tracer answers "when did it happen", the registry answers "how
much, in total": prefetch hits/misses/mis-predicts, per-collective byte
volumes, pinned-pool occupancy high-water marks, NVMe queue depth and
request latency.  Instruments are cheap enough to leave always-on — an
increment is a lock acquire and an add — and the registry snapshot feeds
``EngineReport.telemetry``, the JSONL exporter, and the ASCII summary.

Instruments are get-or-create by name, so layers that cannot share object
references (the pinned pool, the aio engine, the collectives) still
aggregate into one place.  Names are dotted paths (``comm.bytes.allgather``,
``nvme.read_us``) — the convention the summary table groups by.
"""

from __future__ import annotations

import bisect
import threading
from typing import Optional, Union


class Counter:
    """Monotonically increasing count (events, bytes)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: Union[int, float] = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A level that moves both ways, with a high-water mark."""

    __slots__ = ("name", "_value", "_high_water", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._high_water = 0
        self._lock = threading.Lock()

    def set(self, v: Union[int, float]) -> None:
        with self._lock:
            self._value = v
            if v > self._high_water:
                self._high_water = v

    def add(self, delta: Union[int, float]) -> None:
        with self._lock:
            self._value += delta
            if self._value > self._high_water:
                self._high_water = self._value

    @property
    def value(self) -> Union[int, float]:
        return self._value

    @property
    def high_water(self) -> Union[int, float]:
        return self._high_water

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value, "high_water": self._high_water}


# Geometric 1-2-5 bucket bounds from 1 to 10^7 (µs scale by convention, but
# unit-agnostic): latency distributions are long-tailed, so log-ish buckets.
_DEFAULT_BOUNDS = tuple(
    m * 10**e for e in range(0, 8) for m in (1, 2, 5)
)


class Histogram:
    """Bucketed distribution with count/sum/min/max and quantile estimates."""

    __slots__ = ("name", "bounds", "_counts", "count", "total", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Optional[tuple] = None) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else _DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self._counts = [0] * (len(self.bounds) + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, v: Union[int, float]) -> None:
        idx = bisect.bisect_left(self.bounds, v)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.total += v
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile: upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= target and c:
                return float(self.bounds[i]) if i < len(self.bounds) else self._max
        return self._max

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self._min if self.count else 0.0,
            "max": self._max if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Name-keyed get-or-create home for every instrument."""

    def __init__(self) -> None:
        self._instruments: dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, *args):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, *args)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as"
                    f" {type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, bounds: Optional[tuple] = None) -> Histogram:
        if bounds is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, bounds)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str):
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self) -> dict[str, dict]:
        """``{name: {"type": ..., "value"/"count"/...}}`` for every instrument."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(instruments)}

    def reset(self) -> None:
        """Drop every instrument (tests and per-run isolation)."""
        with self._lock:
            self._instruments.clear()


_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry the instrumented layers aggregate into."""
    return _global_registry
