"""Low-overhead span tracer for the real execution paths.

The paper's claims are all about *overlap* — compute hidden behind NVMe
swaps, allgathers, and offloaded optimizer steps (Secs. 5-6, Fig. 6d) — and
a timeline trace is the only way to see whether the functional layer
actually achieves it.  :class:`Tracer` records nestable, thread-aware spans:

    with trace_span("offload:swap_in", cat="nvme", bytes=n):
        ...

Each span lands on the lane of the thread that executed it, so
``AsyncIOEngine`` worker I/O shows up on its own rows next to the main
thread's compute — exactly the per-stream view Perfetto renders from the
Chrome trace export (:mod:`repro.obs.export`).

Design constraints:

* **disabled is (almost) free** — ``trace_span`` on a disabled tracer
  returns a shared no-op context manager without touching the clock or any
  lock, so always-on instrumentation in hot paths costs one attribute check
  per call site (enforced by ``benchmarks/bench_obs_overhead.py``);
* **recording is cheap** — one ``perf_counter_ns`` pair per span and a
  single short lock hold on exit; no string formatting on the hot path;
* **bounded** — the record buffer caps at ``max_spans``; overflow drops
  spans (counted) instead of growing without bound.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(slots=True)
class SpanRecord:
    """One completed span: a named interval on a thread lane."""

    name: str
    cat: str
    ts_us: float  # start, microseconds since the tracer epoch
    dur_us: float  # duration in microseconds; 0.0 for instant events
    tid: int  # dense per-tracer lane id (0 = first thread seen)
    thread: str  # thread name at record time
    args: dict = field(default_factory=dict)
    instant: bool = False
    counter: bool = False  # Chrome counter-track sample ("C" event)


class _NoopSpan:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """Context manager that commits a :class:`SpanRecord` on exit.

    Open spans register in the tracer's ``_open`` table so an aborted step
    can force-close whatever a worker thread left dangling
    (:meth:`Tracer.force_close_open`).  ``dict.pop`` on the table is the
    commit token: whoever pops the key commits the record, so a racing
    normal exit and force-close cannot double-record.
    """

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_t0", "_ident")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._ident = threading.get_ident()
        self._t0 = time.perf_counter_ns()
        # plain dict store: atomic under the GIL, no lock on the hot path
        self._tracer._open[id(self)] = self
        return self

    def __exit__(self, *exc) -> bool:
        if self._tracer._open.pop(id(self), None) is None:
            return False  # already force-closed by an abort unwind
        self._tracer._commit(
            self._name, self._cat, self._args, self._t0, time.perf_counter_ns()
        )
        return False


class Tracer:
    """Collects spans; one instance per traced run.

    Thread lanes are assigned densely in the order threads first record, so
    the main thread is almost always lane 0 and each AsyncIOEngine worker
    gets its own stable lane.
    """

    def __init__(self, *, enabled: bool = False, max_spans: int = 1_000_000) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.max_spans = max_spans
        self._enabled = enabled
        self._epoch_ns = time.perf_counter_ns()
        # raw tuples on the hot path (~4x cheaper to build than the
        # dataclass); materialised as SpanRecords only in records()
        self._records: list[tuple] = []
        self._lanes: dict[int, int] = {}  # thread ident -> dense lane id
        self._tls = threading.local()  # caches (lane, name) per thread
        self._lock = threading.Lock()
        self._open: dict[int, "_Span"] = {}  # id(span) -> span, while entered
        self.dropped = 0
        self.force_closed = 0

    # --- state -----------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def records(self) -> list[SpanRecord]:
        """Snapshot of all committed spans (copy; safe to iterate)."""
        with self._lock:
            raw = list(self._records)
        return [SpanRecord(*r) for r in raw]

    @property
    def epoch_ns(self) -> int:
        """Monotonic-clock origin all record timestamps are relative to.

        Carried on trace shards so the merged multi-rank exporter can
        normalize per-process clock origins onto one timeline.
        """
        return self._epoch_ns

    def raw_since(self, index: int) -> tuple[int, list[tuple]]:
        """``(new_index, raw records[index:])`` — incremental cheap reads.

        Used by the live telemetry plane to fold the stall spans committed
        since the previous sample without materialising SpanRecords.
        """
        with self._lock:
            return len(self._records), self._records[index:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # --- recording --------------------------------------------------------------
    def span(self, name: str, *, cat: str = "misc", **args):
        """Context manager timing one interval; no-op when disabled."""
        if not self._enabled:
            return _NOOP_SPAN
        return _Span(self, name, cat, args)

    def instant(self, name: str, *, cat: str = "misc", **args) -> None:
        """Record a zero-duration marker event; no-op when disabled."""
        if not self._enabled:
            return
        now = time.perf_counter_ns()
        self._append(name, cat, args, now, now, instant=True)

    def counter(self, name: str, *, cat: str = "counter", **values) -> None:
        """Record one sample on a Chrome counter track; no-op when disabled.

        ``values`` are the track's series (e.g. ``gpu=…, cpu=…``); each
        distinct ``name`` renders as its own counter track in Perfetto,
        aligned with the span lanes.
        """
        if not self._enabled:
            return
        now = time.perf_counter_ns()
        self._append(name, cat, values, now, now, counter=True)

    def _commit(self, name: str, cat: str, args: dict, t0: int, t1: int) -> None:
        if not self._enabled:  # disabled mid-span: drop silently
            return
        self._append(name, cat, args, t0, t1)

    def _append(
        self,
        name: str,
        cat: str,
        args: dict,
        t0: int,
        t1: int,
        *,
        instant: bool = False,
        counter: bool = False,
        lane: Optional[int] = None,
        thread_name: Optional[str] = None,
    ) -> None:
        if lane is None:
            tls = self._tls
            try:
                lane = tls.lane
                thread_name = tls.name
            except AttributeError:  # first span from this thread
                ident = threading.get_ident()
                thread_name = threading.current_thread().name
                with self._lock:
                    lane = self._lanes.get(ident)
                    if lane is None:
                        lane = self._lanes[ident] = len(self._lanes)
                tls.lane = lane
                tls.name = thread_name
        rec = (
            name,
            cat,
            (t0 - self._epoch_ns) / 1e3,
            (t1 - t0) / 1e3,
            lane,
            thread_name,
            args,
            instant,
            counter,
        )
        with self._lock:
            if len(self._records) >= self.max_spans:
                self.dropped += 1
                return
            self._records.append(rec)

    # --- abort handling ---------------------------------------------------------
    def open_span_names(self) -> list[str]:
        """Names of spans currently entered but not yet exited."""
        return [s._name for s in list(self._open.values())]

    def force_close_open(
        self, *, exclude_current_thread: bool = True, **extra_args
    ) -> int:
        """Commit every dangling open span now, marked ``aborted=True``.

        Called from the step-abort unwind paths so Chrome traces from
        faulted/replayed steps stay well-formed instead of silently losing
        whatever a worker thread had open when its request was abandoned.

        Spans belonging to the calling thread are skipped by default: an
        exception unwinding through ``with`` blocks exits those normally,
        and the enclosing ``engine:step`` span must stay open for the
        retry.  Returns the number of spans closed; each closed span's
        record carries ``aborted=True`` plus ``extra_args``.
        """
        if not self._enabled:
            return 0
        me = threading.get_ident()
        now = time.perf_counter_ns()
        closed = 0
        for key, span in list(self._open.items()):
            if exclude_current_thread and span._ident == me:
                continue
            if self._open.pop(key, None) is None:
                continue  # the owning thread exited it while we looked
            with self._lock:
                lane = self._lanes.get(span._ident)
                if lane is None:
                    lane = self._lanes[span._ident] = len(self._lanes)
            args = dict(span._args)
            args["aborted"] = True
            args.update(extra_args)
            self._append(
                span._name,
                span._cat,
                args,
                span._t0,
                now,
                lane=lane,
                thread_name=f"lane{lane}",
            )
            closed += 1
        self.force_closed += closed
        return closed

    def lane_names(self) -> dict[int, str]:
        """lane id -> representative thread name (first span wins)."""
        names: dict[int, str] = {}
        for r in self.records():
            names.setdefault(r.tid, r.thread)
        return names

    def categories(self) -> set[str]:
        return {r.cat for r in self.records()}


# --- module-global tracer ----------------------------------------------------
#
# Cross-cutting instrumentation (collectives, the async I/O engine, the
# pinned pool) cannot thread a tracer object through every call, so the hot
# paths consult one process-global tracer — the nvtx/torch.profiler pattern.
# It starts disabled; ``use_tracer`` scopes an enabled tracer to a block.

_global_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer the instrumented hot paths record into."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope an (enabled) tracer to a with-block, restoring the old one.

    >>> with use_tracer() as t:
    ...     engine.train_step(batches)
    >>> write_chrome_trace("out.json", t)
    """
    t = tracer if tracer is not None else Tracer(enabled=True)
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)


def trace_span(name: str, *, cat: str = "misc", **args):
    """Span on the global tracer — the one-liner hot paths call."""
    t = _global_tracer
    if not t._enabled:
        return _NOOP_SPAN
    return _Span(t, name, cat, args)


def trace_instant(name: str, *, cat: str = "misc", **args) -> None:
    """Instant marker on the global tracer."""
    t = _global_tracer
    if t._enabled:
        t.instant(name, cat=cat, **args)


def trace_counter(name: str, *, cat: str = "counter", **values) -> None:
    """Counter-track sample on the global tracer — the hot-path one-liner."""
    t = _global_tracer
    if t._enabled:
        t.counter(name, cat=cat, **values)


def tracing_enabled() -> bool:
    return _global_tracer._enabled
