"""Trace and metrics exporters.

Three sinks, one source of truth:

* **Chrome trace-event JSON** — :func:`chrome_trace` /
  :func:`write_chrome_trace` emit the ``chrome://tracing`` / Perfetto
  format (complete ``"X"`` events plus thread-name metadata), so a traced
  run opens directly in ``https://ui.perfetto.dev``.  Simulated timelines
  export through :func:`sim_to_chrome_trace` with one lane per stream.
* **JSONL** — :func:`write_spans_jsonl` reuses the
  :class:`~repro.workloads.metrics.MetricsLogger` record format (one JSON
  object per line, ``event``/``seq`` fields) so span logs and step logs
  land in the same ingestion pipeline.
* **ASCII** — :func:`telemetry_summary` renders per-category span totals
  and the metrics-registry snapshot as aligned tables for terminal runs.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import Tracer
from repro.utils.tables import Table

TRACE_PID = 0  # single-process system: everything under one pid


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Spans as Chrome trace-event dicts, sorted by (lane, start time).

    Spans are committed at *exit* (an enclosing span lands after its
    children), so records are re-sorted here to give each lane
    monotonically non-decreasing ``ts``; ties break longest-first so
    complete events nest correctly.

    Stall spans (``cat == "stall"``, from :mod:`repro.obs.perfscope`) are
    additionally *mirrored* onto one synthetic "stalls" lane below every
    thread lane, so wait time reads as a single dedicated track in
    Perfetto without hunting through the nesting.
    """
    events: list[dict] = []
    lanes = tracer.lane_names()
    stall_lane = (max(lanes) + 1) if lanes else 0
    records = tracer.records()
    has_stalls = any(
        r.cat == "stall" and not r.counter and not r.instant for r in records
    )
    if has_stalls:
        lanes = dict(lanes)
        lanes[stall_lane] = "stalls"
    for lane, name in sorted(lanes.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": lane,
                "args": {"name": name},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": TRACE_PID,
                "tid": lane,
                "args": {"sort_index": lane},
            }
        )
    spans = sorted(records, key=lambda r: (r.tid, r.ts_us, -r.dur_us))
    mirrors: list[dict] = []
    for r in spans:
        ev = {
            "name": r.name,
            "cat": r.cat,
            "ts": r.ts_us,
            "pid": TRACE_PID,
            "tid": r.tid,
        }
        if r.args:
            ev["args"] = dict(r.args)
        if r.counter:
            # counter tracks are process-scoped: drop the lane id so
            # Perfetto renders one track per name, series from args
            ev.pop("tid", None)
            ev["ph"] = "C"
        elif r.instant:
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant
        else:
            ev["ph"] = "X"
            ev["dur"] = r.dur_us
        events.append(ev)
        if r.cat == "stall" and not r.counter and not r.instant:
            mirror = dict(ev)
            mirror["tid"] = stall_lane
            args = dict(mirror.get("args", {}))
            args["lane"] = r.tid  # back-pointer to the originating thread
            mirror["args"] = args
            mirrors.append(mirror)
    events.extend(sorted(mirrors, key=lambda e: (e["ts"], -e["dur"])))
    return events


def chrome_trace(
    tracer: Tracer, metrics: Optional[MetricsRegistry] = None
) -> dict:
    """Full trace document; metrics snapshot rides along in ``otherData``."""
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "dropped_spans": tracer.dropped},
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = metrics.snapshot()
    return doc


def write_chrome_trace(
    path: str, tracer: Tracer, metrics: Optional[MetricsRegistry] = None
) -> int:
    """Write the trace JSON to ``path``; returns the number of span events."""
    doc = chrome_trace(tracer, metrics)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return sum(1 for e in doc["traceEvents"] if e["ph"] in ("X", "i"))


class _ShardView:
    """Duck-typed Tracer facade over one rank's exported trace shard."""

    def __init__(self, shard) -> None:
        self._shard = shard
        self.dropped = shard.dropped

    def records(self):
        return self._shard.records

    def lane_names(self):
        return self._shard.lanes


def merged_chrome_trace(shards) -> dict:
    """Per-rank trace shards merged into one multi-process Chrome trace.

    Each :class:`~repro.comm.launcher.TraceShard` becomes its own trace
    *process* (``pid`` = rank, named ``rank N``), keeping every rank's
    lanes and stall track intact — the view Perfetto gives a real
    multi-process distributed run.

    Each rank's Tracer subtracts its *own* construction-time monotonic
    epoch from every timestamp, so raw shard times each start near zero.
    The shards carry that epoch (``TraceShard.epoch_ns``, exchanged at
    the result-collection rendezvous); here every shard is shifted by its
    offset from the earliest epoch so spans from different pids align on
    one run timeline.  CLOCK_MONOTONIC is system-wide across forked
    processes on Linux, so the offsets are directly comparable.  Shards
    without an epoch (older captures) are left at their own zero.
    """
    events: list[dict] = []
    dropped = 0
    epochs = [int(getattr(s, "epoch_ns", 0) or 0) for s in shards]
    known = [e for e in epochs if e]
    origin = min(known) if known else 0
    for shard in sorted(shards, key=lambda s: s.rank):
        epoch = int(getattr(shard, "epoch_ns", 0) or 0)
        shift_us = (epoch - origin) / 1e3 if epoch else 0.0
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": shard.rank,
                "args": {"name": f"rank {shard.rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": shard.rank,
                "args": {"sort_index": shard.rank},
            }
        )
        for ev in chrome_trace_events(_ShardView(shard)):
            ev["pid"] = shard.rank
            if shift_us and "ts" in ev:
                ev["ts"] += shift_us
            events.append(ev)
        dropped += shard.dropped
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "ranks": len(shards),
            "dropped_spans": dropped,
            "clock": "normalized" if known else "per-rank",
        },
    }


def write_merged_chrome_trace(path: str, shards) -> int:
    """Write merged per-rank shards to ``path``; returns span event count."""
    doc = merged_chrome_trace(shards)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return sum(1 for e in doc["traceEvents"] if e.get("ph") in ("X", "i"))


def sim_to_chrome_trace(result) -> dict:
    """A simulated timeline (:class:`~repro.sim.events.SimulationResult`)
    as a Chrome trace: one lane per stream, one complete event per task.

    Simulated seconds map to trace microseconds 1:1 scaled by 1e6, so a
    4.2 s makespan reads as 4.2 s in Perfetto.
    """
    streams = sorted({t.stream for t in result.tasks})
    lane_of = {s: i for i, s in enumerate(streams)}
    events: list[dict] = []
    for stream, lane in lane_of.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": lane,
                "args": {"name": f"stream:{stream}"},
            }
        )
    for t in sorted(result.tasks, key=lambda t: (lane_of[t.stream], t.start)):
        events.append(
            {
                "name": t.name,
                "cat": t.stream,
                "ph": "X",
                "ts": t.start * 1e6,
                "dur": (t.finish - t.start) * 1e6,
                "pid": TRACE_PID,
                "tid": lane_of[t.stream],
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.sim", "makespan_s": result.makespan},
    }


def write_sim_trace(path: str, result) -> int:
    """Write a simulated timeline as Chrome trace JSON; returns task count."""
    doc = sim_to_chrome_trace(result)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return sum(1 for e in doc["traceEvents"] if e["ph"] == "X")


def write_spans_jsonl(path: str, tracer: Tracer, *, run_name: str = "") -> int:
    """Append every span to ``path`` in the MetricsLogger JSONL format.

    Each line is an ``event="span"`` record, so :func:`read_metrics`
    filters them with ``event="span"`` like any other run event.
    """
    # Local import: workloads pulls in the trainer/engine stack, which
    # itself imports repro.obs — a module-level import would be circular.
    from repro.workloads.metrics import MetricsLogger

    records = tracer.records()
    with MetricsLogger(path, run_name=run_name, flush_every=256) as log:
        for r in records:
            log.log(
                "span",
                name=r.name,
                cat=r.cat,
                ts_us=r.ts_us,
                dur_us=r.dur_us,
                tid=r.tid,
                thread=r.thread,
                **{k: v for k, v in r.args.items() if k not in ("name", "cat")},
            )
    return len(records)


def write_metrics_jsonl(
    path: str,
    metrics: Optional[MetricsRegistry] = None,
    *,
    run_name: str = "",
) -> int:
    """Export the registry snapshot to ``path`` as JSONL.

    One ``event="metric"`` record per instrument, carrying the full
    snapshot — histograms include the ``p50``/``p95``/``p99`` quantiles,
    so downstream dashboards get the same view the live dashboard shows.
    """
    from repro.workloads.metrics import MetricsLogger  # local: circular import

    snap = (metrics if metrics is not None else get_registry()).snapshot()
    with MetricsLogger(path, run_name=run_name, flush_every=256) as log:
        for name, s in snap.items():
            log.log("metric", name=name, **s)
    return len(snap)


def telemetry_summary(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """ASCII tables: span time by category, plus the metrics snapshot."""
    parts: list[str] = []
    if tracer is not None:
        by_cat: dict[str, tuple[int, float]] = {}
        for r in tracer.records():
            if r.counter:  # counter samples carry no duration
                continue
            n, total = by_cat.get(r.cat, (0, 0.0))
            by_cat[r.cat] = (n + 1, total + r.dur_us)
        t = Table(
            ["category", "spans", "total ms", "mean us"],
            title="Span time by category",
        )
        for cat in sorted(by_cat):
            n, total = by_cat[cat]
            t.add_row([cat, n, total / 1e3, total / n])
        parts.append(t.render())
    snap = (metrics if metrics is not None else get_registry()).snapshot()
    if snap:
        t = Table(["metric", "kind", "value", "extra"], title="Metrics registry")
        for name, s in snap.items():
            kind = s["type"]
            if kind == "counter":
                value, extra = s["value"], ""
            elif kind == "gauge":
                value, extra = s["value"], f"high-water {s['high_water']}"
            else:
                value = s["count"]
                extra = (
                    f"mean {s['mean']:.1f} p50 {s['p50']:.1f}"
                    f" p95 {s['p95']:.1f} p99 {s['p99']:.1f}"
                    f" max {s['max']:.1f}"
                )
            t.add_row([name, kind, value, extra])
        parts.append(t.render())
    return "\n\n".join(parts) if parts else "(no telemetry recorded)"
