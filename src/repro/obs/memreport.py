"""Measured-vs-model memory drift reports.

The analytic model (:mod:`repro.analytics.memory_model`, Eqs. 1-5) predicts
where the bytes should be; :class:`~repro.obs.memscope.MemScope` measures
where they actually were.  :func:`build_memreport` compares the two for a
finished run: per-tier peaks with category attribution (whose sums equal the
tier totals by the scope's construction), a drift table flagging components
whose measured/predicted ratio leaves the tolerance band, and a
recommendation block when a tier's watermark approaches its configured
capacity (offload tier, ``reduce_bucket_numel``, tiling factor, pinned
budget) — the knobs Sec. 3/5 of the paper turns.

Exposed as ``repro memreport`` and ``repro train-demo --memreport``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.memscope import MemScope, render_memory_gantt

#: Default measured/predicted tolerance band.  The analytic model counts
#: ideal bytes (no padding, no staging); a 2x departure in either
#: direction means a component is behaving unlike the model, which is
#: the drift worth flagging.
DEFAULT_TOLERANCE = (0.5, 2.0)

#: A tier whose peak exceeds this fraction of its configured capacity
#: triggers the recommendation block.
CAPACITY_PRESSURE = 0.8


def _fmt_bytes(n: int) -> str:
    x = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if x < 1024.0 or unit == "GiB":
            return f"{x:.1f} {unit}" if unit != "B" else f"{int(x)} B"
        x /= 1024.0
    return f"{x:.1f} GiB"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class DriftRow:
    """One measured-vs-predicted comparison."""

    component: str
    measured: int
    predicted: int
    note: str = ""

    @property
    def ratio(self) -> float:
        if self.predicted <= 0:
            return math.inf if self.measured > 0 else 1.0
        return self.measured / self.predicted

    def flagged(self, tolerance: tuple[float, float]) -> bool:
        lo, hi = tolerance
        return not (lo <= self.ratio <= hi)


@dataclass
class MemReport:
    """Everything :func:`build_memreport` derives from one run."""

    tier_peaks: dict[str, int]
    tier_current: dict[str, int]
    peak_breakdowns: dict[str, dict[str, int]]
    breakdowns: dict[str, dict[str, int]]
    peak_labels: dict[str, str]
    drift: list[DriftRow]
    recommendations: list[str]
    tolerance: tuple[float, float] = DEFAULT_TOLERANCE
    top_owners: dict[str, list[tuple[str, str, int]]] = field(default_factory=dict)
    gantt: str = ""

    # -- queries -----------------------------------------------------

    def flagged(self) -> list[DriftRow]:
        return [r for r in self.drift if r.flagged(self.tolerance)]

    def drift_row(self, component: str) -> Optional[DriftRow]:
        for r in self.drift:
            if r.component == component:
                return r
        return None

    # -- rendering ---------------------------------------------------

    def render(self) -> str:
        from repro.utils.tables import Table

        parts: list[str] = []
        t = Table(
            ["tier", "peak", "current", "peak at"],
            title="Per-tier memory watermarks",
        )
        for tier, peak in sorted(self.tier_peaks.items()):
            t.add_row(
                [
                    tier,
                    _fmt_bytes(peak),
                    _fmt_bytes(self.tier_current.get(tier, 0)),
                    self.peak_labels.get(tier, ""),
                ]
            )
        parts.append(t.render())

        t = Table(
            ["tier", "category", "at peak", "now", "% of peak"],
            title="Attribution (category sums equal the tier totals)",
        )
        for tier in sorted(self.tier_peaks):
            peak = self.tier_peaks[tier]
            pb = self.peak_breakdowns.get(tier, {})
            now = self.breakdowns.get(tier, {})
            for cat in sorted(set(pb) | set(now), key=lambda c: -pb.get(c, 0)):
                pct = 100.0 * pb.get(cat, 0) / peak if peak else 0.0
                t.add_row(
                    [
                        tier,
                        cat,
                        _fmt_bytes(pb.get(cat, 0)),
                        _fmt_bytes(now.get(cat, 0)),
                        f"{pct:.1f}",
                    ]
                )
            t.add_row(
                [
                    tier,
                    "= total",
                    _fmt_bytes(sum(pb.values())),
                    _fmt_bytes(sum(now.values())),
                    "100.0" if peak else "0.0",
                ]
            )
        parts.append(t.render())

        if self.drift:
            lo, hi = self.tolerance
            t = Table(
                ["component", "measured", "predicted", "ratio", "status"],
                title=f"Analytic-model drift (tolerance {lo:g}..{hi:g})",
            )
            for r in self.drift:
                ratio = "inf" if math.isinf(r.ratio) else f"{r.ratio:.3f}"
                status = "DRIFT" if r.flagged(self.tolerance) else "ok"
                name = r.component + (f" [{r.note}]" if r.note else "")
                t.add_row(
                    [name, _fmt_bytes(r.measured), _fmt_bytes(r.predicted), ratio, status]
                )
            parts.append(t.render())

        if self.top_owners:
            t = Table(
                ["tier", "owner", "category", "bytes"], title="Top owners (current)"
            )
            for tier, rows in sorted(self.top_owners.items()):
                for owner, cat, nbytes in rows:
                    t.add_row([tier, owner, cat, _fmt_bytes(nbytes)])
            parts.append(t.render())

        if self.recommendations:
            parts.append(
                "Recommendations:\n"
                + "\n".join(f"  * {r}" for r in self.recommendations)
            )
        else:
            parts.append("Recommendations: none — no tier under pressure.")
        if self.gantt:
            parts.append(self.gantt)
        return "\n\n".join(parts)


def _model_dims(model) -> Optional[tuple[int, int, int]]:
    """(num_layers, hidden_dim, num_heads) from a GPT-style model config."""
    cfg = getattr(model, "config", None)
    if cfg is None:
        return None
    try:
        return int(cfg.num_layers), int(cfg.hidden_dim), int(cfg.num_heads)
    except (AttributeError, TypeError, ValueError):
        return None


def build_memreport(
    engine,
    scope: MemScope,
    *,
    bsz: int = 1,
    seq: Optional[int] = None,
    ci: int = 1,
    tolerance: tuple[float, float] = DEFAULT_TOLERANCE,
    top_owners: int = 5,
) -> MemReport:
    """Compare a traced run against the Sec. 3 analytic memory model.

    ``engine`` is the :class:`~repro.core.engine.ZeroInfinityEngine` that
    ran under ``scope``; ``bsz``/``seq``/``ci`` describe the workload for
    the activation-side equations (Eq. 3).  Measured model states use the
    real parameter count (Eq. 2 is exact at 20 bytes/param); gather
    working memory compares against Eq. 4's largest-linear bound.
    """
    from repro.analytics.memory_model import (
        activation_checkpoint_bytes,
        model_states_bytes,
        mswm_bytes,
    )

    # owner aliases: p{uid} -> parameter name, for the owner table
    for name, p in engine.model.named_parameters():
        scope.alias(f"p{p.unique_id}", name)

    tiers = scope.tiers()
    tier_peaks = {t: scope.peak_bytes(t) for t in tiers}
    tier_current = {t: scope.tier_bytes(t) for t in tiers}
    peak_breakdowns = {t: scope.peak_breakdown(t) for t in tiers}
    breakdowns = {t: scope.breakdown(t) for t in tiers}
    peak_labels = {t: scope.peak_label(t) for t in tiers}

    def total_category(cat: str, *, at_peak: bool = False) -> int:
        src = peak_breakdowns if at_peak else breakdowns
        return sum(bd.get(cat, 0) for bd in src.values())

    drift: list[DriftRow] = []
    n_params = engine.model.num_parameters()
    measured_states = (
        total_category("param_fp16")
        + total_category("grad")
        + total_category("optimizer_state")
    )
    drift.append(
        DriftRow(
            "model_states (Eq. 2)",
            measured_states,
            model_states_bytes(n_params),
            note="fp16 p+g, fp32 Adam: 20 B/param",
        )
    )

    dims = _model_dims(engine.model)
    if dims is not None:
        nl, hd, _heads = dims
        measured_gather = max(
            (bd.get("gather_buffer", 0) for bd in peak_breakdowns.values()),
            default=0,
        )
        if measured_gather:
            drift.append(
                DriftRow(
                    "gather working set (Eq. 4)",
                    measured_gather,
                    mswm_bytes(hd),
                    note="coalesced staging roughly doubles the Eq. 4 bound",
                )
            )
        measured_act = total_category("activation_ckpt", at_peak=True)
        if measured_act and seq is not None:
            drift.append(
                DriftRow(
                    "activation checkpoints (Eq. 3)",
                    measured_act,
                    activation_checkpoint_bytes(
                        bsz=bsz, seq=seq, hidden_dim=hd, num_layers=nl, ci=ci
                    ),
                    note="fp32 checkpoints measure 2x the fp16 equation",
                )
            )

    recommendations = _recommend(engine, tier_peaks, peak_breakdowns)

    owners = {
        t: scope.owners(t, top=top_owners) for t in tiers if scope.owners(t)
    }
    return MemReport(
        tier_peaks=tier_peaks,
        tier_current=tier_current,
        peak_breakdowns=peak_breakdowns,
        breakdowns=breakdowns,
        peak_labels=peak_labels,
        drift=drift,
        recommendations=recommendations,
        tolerance=tolerance,
        top_owners=owners,
        gantt=render_memory_gantt(scope),
    )


def _recommend(
    engine,
    tier_peaks: dict[str, int],
    peak_breakdowns: dict[str, dict[str, int]],
) -> list[str]:
    """Knob suggestions when a tier's watermark nears a modeled capacity."""
    recs: list[str] = []
    cfg = engine.config
    ledger = getattr(engine, "ledger", None)
    capacities = dict(ledger.capacities) if ledger is not None else {}

    for tier in ("gpu", "cpu"):
        cap = capacities.get(tier)
        peak = tier_peaks.get(tier, 0)
        if not cap or peak < CAPACITY_PRESSURE * cap:
            continue
        bd = peak_breakdowns.get(tier, {})
        dominant = max(bd, key=bd.get) if bd else ""
        recs.append(
            f"{tier} peak {_fmt_bytes(peak)} is {100.0 * peak / cap:.0f}% of"
            f" its {_fmt_bytes(cap)} capacity (dominant: {dominant or 'n/a'})"
        )
        if dominant == "optimizer_state":
            recs.append(
                "  -> offload optimizer state down a tier"
                " (OffloadConfig.optimizer_device = cpu or nvme)"
            )
        elif dominant == "param_fp16":
            recs.append(
                "  -> offload parameter shards down a tier"
                " (OffloadConfig.param_device = cpu or nvme)"
            )
        elif dominant == "activation_ckpt":
            recs.append(
                "  -> move activation checkpoints down a tier"
                " (OffloadConfig.activation_device) or raise"
                " checkpoint_interval (ci)"
            )

    gpu_peak = tier_peaks.get("gpu", 0)
    if gpu_peak:
        gpu_bd = peak_breakdowns.get("gpu", {})
        bucket = gpu_bd.get("bucket", 0)
        if bucket > 0.25 * gpu_peak and cfg.reduce_bucket_numel > 0:
            recs.append(
                f"bucket buffers hold {_fmt_bytes(bucket)}"
                f" ({100.0 * bucket / gpu_peak:.0f}% of the gpu peak):"
                f" halve reduce_bucket_numel"
                f" ({cfg.reduce_bucket_numel:,} -> {cfg.reduce_bucket_numel // 2:,})"
            )
        gather = gpu_bd.get("gather_buffer", 0)
        if gather > 0.25 * gpu_peak:
            factor = max(2, 2 * max(1, cfg.tile_factor))
            recs.append(
                f"gather buffers hold {_fmt_bytes(gather)}"
                f" ({100.0 * gather / gpu_peak:.0f}% of the gpu peak):"
                f" tile oversized linears (tile_factor >= {factor})"
            )

    pinned_budget = cfg.offload.pinned_budget_bytes
    pinned_peak = tier_peaks.get("pinned", 0)
    if pinned_budget and pinned_peak >= CAPACITY_PRESSURE * pinned_budget:
        recs.append(
            f"pinned pool peaked at {_fmt_bytes(pinned_peak)} of its"
            f" {_fmt_bytes(pinned_budget)} budget: raise"
            " OffloadConfig.pinned_budget_bytes to keep prefetch staging"
            " off the unpinned fallback path"
        )
    return recs
