"""Live telemetry plane: streaming samples, health watchdog, dashboard.

Three cooperating pieces (ISSUE 9):

* **Streaming** — every rank publishes a compact :class:`TelemetrySample`
  (step, phase, steps/s, per-tier bytes from the memscope ledger, stall
  split folded from the perfscope span stream, inflight aio, fault/retry
  counters, injected virtual delay) through a transport: an in-process
  slot table on the loop backend, or the lock-free
  :class:`~repro.comm.shm.TelemetryRing` seqlock segment beside the PR 7
  data ring under ``MultiprocBackend``.  The aggregator (loop driver or
  the mp launcher parent) polls the transport into a
  :class:`ClusterView`.
* **Health watchdog** — heartbeat skew (a rank > *k* heartbeats behind
  the median), injected-straggler delay excess over the median,
  wall-clock heartbeat deadlines, pinned-pool pressure and retry storms.
  Transitions surface as ``health.*`` registry counters, trace instants,
  volatile flight-recorder events and rows on the ``train-demo --live``
  ASCII dashboard.
* **Postmortem hook** — :meth:`LivePlane.on_terminal` flushes exporters
  and dumps the crash flight recorder
  (:mod:`repro.obs.flightrec`) as a bundle directory.

Disabled fast path: every hook site reads one module global and checks
``is None`` — the same contract as the tracer/memscope/faults planes,
held to <2% of a step by ``benchmarks/bench_live_overhead.py``.

Only this module may write the telemetry ring (``put_sample``); the
``telemetry-ring-write`` lint rule bans other call sites.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.obs.memscope import TIERS, get_memscope
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer, trace_instant

LIVE_SCHEMA_VERSION = 1

_STALL_PREFIX = "stall:"

#: Watchdog per-rank states, ordered by increasing severity.
HEALTH_STATES = ("ok", "behind", "straggler", "stalled", "dead")


@dataclass
class LiveConfig:
    """Thresholds and sinks for the live plane (defaults match docs)."""

    skew_heartbeats: int = 3  # k: flag a rank this far behind the median
    deadline_s: float = 5.0  # wall-clock heartbeat deadline -> "stalled"
    dead_after_s: float = 30.0  # no sample at all for this long -> "dead"
    straggler_delay_us: int = 1000  # injected-delay excess over the median
    pinned_capacity_bytes: Optional[int] = None  # enables the pinned alarm
    pinned_alarm_fraction: float = 0.9
    retry_storm: int = 8  # total retries observed at one rank
    flight_capacity: int = 64  # canonical events kept per rank
    trace_tail: int = 200  # spans in the postmortem trace tail
    postmortem_dir: Optional[str] = None
    jsonl_path: Optional[str] = None  # per-rank shard: "<path>.rank{r}"
    slot_capacity: int = 4096  # telemetry ring payload bytes per rank
    dashboard: bool = False
    refresh_steps: int = 1


@dataclass
class TelemetrySample:
    """One rank's periodic published state (compact, JSON-encodable)."""

    rank: int
    hb: int  # heartbeat counter (one per local rank turn)
    step: int
    phase: str
    steps_per_s: float
    tier_bytes: dict = field(default_factory=dict)
    stall_us: dict = field(default_factory=dict)
    inflight_aio: int = 0
    faults_injected: int = 0
    step_retries: int = 0
    io_retries: int = 0
    delay_us: int = 0  # cumulative injected virtual delay for this rank
    vclock_us: int = 0
    mono_us: float = 0.0
    schema: int = LIVE_SCHEMA_VERSION

    def to_bytes(self) -> bytes:
        return json.dumps(self.__dict__, sort_keys=True, separators=(",", ":")).encode(
            "ascii"
        )

    @staticmethod
    def from_bytes(payload: bytes) -> "TelemetrySample":
        return TelemetrySample(**json.loads(payload))


@dataclass
class HealthEvent:
    """One watchdog transition or alarm (volatile — wall-clock stamped)."""

    kind: str  # behind | straggler | stalled | dead | recovered | alarm kind
    rank: int
    detail: dict = field(default_factory=dict)
    wall_s: float = 0.0


@dataclass
class ClusterView:
    """Aggregated run-wide view from one watchdog poll."""

    samples: list[Optional[TelemetrySample]]
    states: dict[int, str]
    events: list[HealthEvent]  # transitions raised by *this* poll
    alarms: list[HealthEvent]  # pressure alarms active this poll

    @property
    def worst_state(self) -> str:
        worst = "ok"
        for state in self.states.values():
            if HEALTH_STATES.index(state) > HEALTH_STATES.index(worst):
                worst = state
        return worst


# ------------------------------------------------------------------ transports


class LocalTransport:
    """In-process latest-sample slots (loop backend)."""

    def __init__(self, world: int) -> None:
        self._slots: list[Optional[bytes]] = [None] * world

    def publish(self, rank: int, payload: bytes) -> None:
        self._slots[rank] = payload

    def poll(self) -> list[Optional[bytes]]:
        return list(self._slots)


class ShmTransport:
    """Publishes through a :class:`repro.comm.shm.TelemetryRing`."""

    def __init__(self, ring) -> None:
        self._ring = ring

    def publish(self, rank: int, payload: bytes) -> None:
        self._ring.put_sample(rank, payload)

    def poll(self) -> list[Optional[bytes]]:
        return self._ring.read_all()


# -------------------------------------------------------------------- watchdog


class HealthWatchdog:
    """Classifies per-rank health from polled samples; emits transitions."""

    def __init__(
        self, world: int, config: LiveConfig, *, recorder=None
    ) -> None:
        self.world = world
        self.config = config
        self.recorder = recorder
        self.states: dict[int, str] = {r: "ok" for r in range(world)}
        self._last_hb: dict[int, int] = {}
        self._last_change_s: dict[int, float] = {}
        self._started_s: Optional[float] = None
        self._alarmed: set[tuple[str, int]] = set()
        self.events: list[HealthEvent] = []  # full transition history

    def _classify(
        self, rank: int, sample: Optional[TelemetrySample], now_s: float, med_hb: float, med_delay: float
    ) -> str:
        cfg = self.config
        if sample is None:
            started = self._started_s if self._started_s is not None else now_s
            return "dead" if now_s - started > cfg.dead_after_s else "ok"
        last_change = self._last_change_s.get(rank, now_s)
        if now_s - last_change > cfg.dead_after_s:
            return "dead"
        if now_s - last_change > cfg.deadline_s:
            return "stalled"
        if sample.delay_us - med_delay >= cfg.straggler_delay_us:
            return "straggler"
        if med_hb - sample.hb > cfg.skew_heartbeats:
            return "behind"
        return "ok"

    def observe(
        self, samples: list[Optional[TelemetrySample]], now_s: Optional[float] = None
    ) -> tuple[list[HealthEvent], list[HealthEvent]]:
        """Fold one poll; returns ``(new transitions, active alarms)``."""
        if now_s is None:
            now_s = time.monotonic()
        if self._started_s is None:
            self._started_s = now_s
        cfg = self.config
        for rank, sample in enumerate(samples):
            if sample is None:
                continue
            if self._last_hb.get(rank) != sample.hb:
                self._last_hb[rank] = sample.hb
                self._last_change_s[rank] = now_s
        live = [s for s in samples if s is not None]
        med_hb = statistics.median([s.hb for s in live]) if live else 0.0
        med_delay = statistics.median([s.delay_us for s in live]) if live else 0.0

        transitions: list[HealthEvent] = []
        for rank in range(self.world):
            sample = samples[rank] if rank < len(samples) else None
            state = self._classify(rank, sample, now_s, med_hb, med_delay)
            prev = self.states[rank]
            if state == prev:
                continue
            self.states[rank] = state
            kind = state if state != "ok" else "recovered"
            detail = {"from": prev, "to": state}
            if sample is not None:
                detail.update(hb=sample.hb, step=sample.step, delay_us=sample.delay_us)
            transitions.append(HealthEvent(kind, rank, detail, now_s))

        alarms: list[HealthEvent] = []
        for sample in live:
            pinned = sample.tier_bytes.get("pinned", 0)
            cap = cfg.pinned_capacity_bytes
            if cap and pinned >= cfg.pinned_alarm_fraction * cap:
                alarms.append(
                    HealthEvent(
                        "pinned_pressure",
                        sample.rank,
                        {"pinned_bytes": pinned, "capacity": cap},
                        now_s,
                    )
                )
            retries = sample.step_retries + sample.io_retries
            if retries >= cfg.retry_storm:
                alarms.append(
                    HealthEvent("retry_storm", sample.rank, {"retries": retries}, now_s)
                )

        for ev in transitions:
            self._surface(ev)
        for ev in alarms:
            key = (ev.kind, ev.rank)
            if key not in self._alarmed:  # surface each alarm kind once per rank
                self._alarmed.add(key)
                self._surface(ev)
        self.events.extend(transitions)
        return transitions, alarms

    def _surface(self, ev: HealthEvent) -> None:
        get_registry().counter(f"health.{ev.kind}").inc()
        trace_instant(f"health:{ev.kind}", cat="health", rank=ev.rank, **ev.detail)
        if self.recorder is not None:
            self.recorder.record(
                "health", ev.kind, rank=ev.rank, volatile=True, **ev.detail
            )


# ------------------------------------------------------------------- the plane


class LivePlane:
    """Per-process half of the live telemetry plane.

    ``rank=None`` is the loop-backend (or mp-parent aggregator) form: it
    publishes samples for every rank and owns the watchdog/dashboard.
    An mp worker installs one with its own ``rank`` and only publishes.
    """

    def __init__(
        self,
        *,
        world: int,
        rank: Optional[int] = None,
        config: Optional[LiveConfig] = None,
        transport=None,
        recorder=None,
    ) -> None:
        self.world = world
        self.rank = rank
        self.config = config or LiveConfig()
        self.transport = transport or LocalTransport(world)
        self.recorder = recorder
        self.watchdog = HealthWatchdog(world, self.config, recorder=recorder)
        self.tracer = None  # set explicitly by mp workers; else the global
        self._hb = [0] * world
        self._last_step_end_us: Optional[float] = None
        self._steps_per_s = 0.0
        self._rec_idx = 0  # tracer raw-record cursor for the stall fold
        self._stall_us: dict[str, float] = {}
        self._flushables: list[Callable[[], None]] = []
        self._loggers: dict[int, object] = {}
        self._closed = False
        self._terminal_done = False
        self.op_count = 0  # hook invocations (overhead modeling)
        self.samples_published = 0

    # ------------------------------------------------------------- hot hooks

    def heartbeat(self, rank: int, step: int) -> None:
        """One local rank turn started; bump and publish its heartbeat."""
        self.op_count += 1
        self._hb[rank] += 1
        self._publish(rank, step, "turn")

    def emit(self, *, step: int, phase: str) -> None:
        """Publish a full sample at a phase boundary.

        Loop/aggregator planes publish one sample per rank (the ranks run
        in lockstep in-process); an mp worker publishes only its own.
        """
        self.op_count += 1
        self._fold_stalls()
        if self.rank is None:
            for rank in range(self.world):
                self._publish(rank, step, phase)
        else:
            self._publish(self.rank, step, phase)
        if phase == "step_end":
            now_us = time.perf_counter_ns() / 1e3
            if self._last_step_end_us is not None:
                dt = now_us - self._last_step_end_us
                if dt > 0:
                    self._steps_per_s = 1e6 / dt
            self._last_step_end_us = now_us
            if (
                self.config.dashboard
                and self.rank is None
                and step % max(1, self.config.refresh_steps) == 0
            ):
                view = self.view()
                sys.stdout.write(render_dashboard(view, registry=get_registry()) + "\n")

    # ------------------------------------------------------------- internals

    def _fold_stalls(self) -> None:
        tracer = self.tracer or get_tracer()
        if not tracer.enabled and self._rec_idx == 0:
            return
        self._rec_idx, fresh = tracer.raw_since(self._rec_idx)
        for rec in fresh:
            # raw tuple: (name, cat, ts, dur, lane, thread, args, instant, counter)
            if rec[1] == "stall":
                cause = rec[0][len(_STALL_PREFIX):]
                self._stall_us[cause] = self._stall_us.get(cause, 0.0) + rec[3]

    def _counter_value(self, name: str) -> int:
        inst = get_registry().get(name)
        return int(inst.value) if inst is not None else 0

    def _io_retries(self) -> int:
        reg = get_registry()
        total = 0
        for name in reg.names():
            if name.startswith("faults.retries."):
                total += int(reg.get(name).value)
        return total

    def build_sample(self, rank: int, step: int, phase: str) -> TelemetrySample:
        from repro.faults.runtime import get_faults, virtual_clock  # lazy: cycle

        scope = get_memscope()
        tiers = (
            {t: int(scope.tier_bytes(t)) for t in TIERS} if scope.enabled else {}
        )
        fp = get_faults()
        delay_us = 0
        injected = 0
        if fp is not None:
            delay_us = int(fp.delay_us_by_rank.get(rank, 0))
            injected = sum(fp.injected.values())
        depth = get_registry().get("nvme.queue_depth")
        return TelemetrySample(
            rank=rank,
            hb=self._hb[rank],
            step=step,
            phase=phase,
            steps_per_s=round(self._steps_per_s, 3),
            tier_bytes=tiers,
            stall_us={k: round(v, 1) for k, v in sorted(self._stall_us.items())},
            inflight_aio=int(depth.value) if depth is not None else 0,
            faults_injected=injected,
            step_retries=self._counter_value("faults.step_retries"),
            io_retries=self._io_retries(),
            delay_us=delay_us,
            vclock_us=virtual_clock().now_us(),
            mono_us=round(time.perf_counter_ns() / 1e3, 1),
        )

    def _publish(self, rank: int, step: int, phase: str) -> None:
        sample = self.build_sample(rank, step, phase)
        self.transport.publish(rank, sample.to_bytes())
        self.samples_published += 1
        if self.recorder is not None:
            self.recorder.note_state(
                rank, step=step, phase=phase, hb=sample.hb, vclock_us=sample.vclock_us
            )
        if self.config.jsonl_path:
            self._logger_for(rank).log("telemetry", **sample.__dict__)

    def _logger_for(self, rank: int):
        logger = self._loggers.get(rank)
        if logger is None:
            from repro.workloads.metrics import MetricsLogger  # lazy: cycle

            logger = MetricsLogger(
                f"{self.config.jsonl_path}.rank{rank}",
                run_name=f"rank{rank}",
                flush_every=32,
            )
            self._loggers[rank] = logger
        return logger

    # ------------------------------------------------------------ aggregation

    def view(self, now_s: Optional[float] = None) -> ClusterView:
        """Poll the transport and fold one watchdog observation."""
        raw = self.transport.poll()
        samples: list[Optional[TelemetrySample]] = []
        for payload in raw:
            if payload is None:
                samples.append(None)
                continue
            try:
                samples.append(TelemetrySample.from_bytes(payload))
            except (ValueError, TypeError):
                samples.append(None)  # torn or stale slot — treat as no news
        events, alarms = self.watchdog.observe(samples, now_s)
        return ClusterView(
            samples=samples, states=dict(self.watchdog.states), events=events, alarms=alarms
        )

    # -------------------------------------------------------------- lifecycle

    def register_flushable(self, fn: Callable[[], None]) -> None:
        """Register an exporter flush hook run on every abort/terminal path."""
        self._flushables.append(fn)

    def flush(self) -> None:
        """Flush every sink; idempotent and exception-free (abort-path safe)."""
        for logger in self._loggers.values():
            try:
                logger.flush()
            except Exception:
                pass
        for fn in self._flushables:
            try:
                fn()
            except Exception:
                pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush()
        for logger in self._loggers.values():
            try:
                logger.close()
            except Exception:
                pass

    def on_terminal(self, reason: str) -> Optional[str]:
        """Terminal-failure hook: flush sinks, dump the postmortem bundle.

        Idempotent — the engine's terminal handler and an mp worker's
        outer exception handler may both reach it.  Returns the bundle
        directory when one was written.
        """
        self.flush()
        if self.recorder is not None:
            self.recorder.record(
                "abort", reason, rank=self.rank, volatile=True
            )
        if self._terminal_done:
            return self.config.postmortem_dir
        self._terminal_done = True
        if self.recorder is None or not self.config.postmortem_dir:
            return None
        from repro.obs.flightrec import dump_postmortem  # local: keep import light

        tracer = self.tracer or get_tracer()
        dump_postmortem(
            self.config.postmortem_dir,
            reason,
            recorder=self.recorder,
            world=self.world,
            rank=self.rank,
            tracer=tracer if tracer.enabled or len(tracer) else None,
            trace_tail=self.config.trace_tail,
        )
        return self.config.postmortem_dir


# --------------------------------------------------------------------- globals

_global_live: Optional[LivePlane] = None


def get_live() -> Optional[LivePlane]:
    """The process-global live plane, or ``None`` (the disabled fast path)."""
    return _global_live


def install_live(plane: Optional[LivePlane]) -> Optional[LivePlane]:
    global _global_live
    prev = _global_live
    _global_live = plane
    return prev


@contextmanager
def use_live(plane: LivePlane) -> Iterator[LivePlane]:
    prev = install_live(plane)
    try:
        yield plane
    finally:
        install_live(prev)
        plane.close()


# ------------------------------------------------------------------- dashboard


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}TB"


def render_dashboard(view: ClusterView, *, registry=None) -> str:
    """``repro top``-style ASCII view of the cluster state."""
    lines = []
    steps = [s.step for s in view.samples if s is not None]
    head = f"repro live — world {len(view.samples)}"
    if steps:
        head += f"  step {max(steps)}"
    head += f"  health {view.worst_state}"
    lines.append(head)
    lines.append(
        f"{'rank':>4} {'state':<9} {'step':>5} {'phase':<14} {'steps/s':>8}"
        f" {'hb':>5} {'gpu':>9} {'cpu':>9} {'nvme':>9} {'pinned':>9}"
        f" {'stall_ms':>9} {'aio':>4} {'retry':>5} {'delay_us':>8}"
    )
    for rank, sample in enumerate(view.samples):
        state = view.states.get(rank, "ok")
        if sample is None:
            lines.append(f"{rank:>4} {state:<9} {'-':>5} {'no sample':<14}")
            continue
        tb = sample.tier_bytes
        stall_ms = sum(sample.stall_us.values()) / 1e3
        lines.append(
            f"{rank:>4} {state:<9} {sample.step:>5} {sample.phase:<14}"
            f" {sample.steps_per_s:>8.2f} {sample.hb:>5}"
            f" {_fmt_bytes(tb.get('gpu', 0)):>9} {_fmt_bytes(tb.get('cpu', 0)):>9}"
            f" {_fmt_bytes(tb.get('nvme', 0)):>9} {_fmt_bytes(tb.get('pinned', 0)):>9}"
            f" {stall_ms:>9.1f} {sample.inflight_aio:>4}"
            f" {sample.step_retries + sample.io_retries:>5} {sample.delay_us:>8}"
        )
    for ev in view.alarms:
        lines.append(f"  ALARM {ev.kind} rank {ev.rank}: {ev.detail}")
    for ev in view.events:
        lines.append(f"  health {ev.kind} rank {ev.rank}: {ev.detail}")
    if registry is not None:
        hist_lines = []
        for name, snap in registry.snapshot().items():
            if snap.get("type") == "histogram" and snap.get("count"):
                hist_lines.append(
                    f"  {name}: p50 {snap['p50']:.1f} p95 {snap['p95']:.1f}"
                    f" p99 {snap['p99']:.1f} max {snap['max']:.1f}"
                )
        if hist_lines:
            lines.append("latency quantiles (us):")
            lines.extend(hist_lines)
    return "\n".join(lines)


def merge_telemetry_shards(paths: list[str]) -> list[dict]:
    """Merge per-rank telemetry JSONL shards onto one monotonic timeline."""
    from repro.workloads.metrics import read_metrics  # lazy: cycle

    merged: list[dict] = []
    for path in paths:
        merged.extend(read_metrics(path, event="telemetry"))
    merged.sort(key=lambda r: (r.get("mono_us", 0.0), r.get("rank", 0)))
    return merged
