"""Measured-vs-model bandwidth drift reports (the time-side memreport).

The analytic model (:mod:`repro.analytics.bandwidth_model`, Eqs. 6-11)
predicts what bandwidth each tier must deliver for a target efficiency;
the tracer measures what it actually delivered.  :func:`build_perfreport`
compares the two for a finished traced run: per-tier measured bandwidth
and arithmetic intensity derived from the span timeline, an Eq. (6) drift
table flagging tiers whose measured/required ratio leaves the tolerance
band, and a recommendation block driven by the stall attribution (prefetch
depth, ``reduce_bucket_numel``, pinned budget, tiling, optimizer chunking)
— the knobs Secs. 5-6 of the paper turn.

Exposed as ``repro perfreport`` and ``repro train-demo --perfreport``,
mirroring :mod:`repro.obs.memreport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.obs.perfscope import (
    COMM,
    NVME_IO,
    CriticalPath,
    PerfSummary,
    StepLedger,
    _union,
    build_step_ledgers,
    classify_span,
    critical_path_from_trace,
    render_perf_breakdown,
    summarize_ledgers,
)
from repro.obs.tracer import SpanRecord, Tracer

#: Default measured/required bandwidth tolerance band.  Measured below
#: ``lo`` x required means the tier cannot sustain the target efficiency
#: (the drift worth flagging); far above ``hi`` means the target (or the
#: modeled AIT) is badly conservative for this run.
DEFAULT_TOLERANCE = (0.5, 1e9)

#: Eq. (6) efficiency the required-bandwidth inversion targets.
DEFAULT_TARGET_EFFICIENCY = 0.5

#: A stall cause consuming more than this fraction of the traced
#: wall-clock triggers its knob recommendation.
STALL_PRESSURE = 0.05


def _fmt_bw(bps: float) -> str:
    x = float(bps)
    for unit in ("B/s", "KB/s", "MB/s", "GB/s"):
        if x < 1000.0 or unit == "GB/s":
            return f"{x:.2f} {unit}"
        x /= 1000.0
    return f"{x:.2f} GB/s"  # pragma: no cover - unreachable


@dataclass(frozen=True)
class PerfDriftRow:
    """One measured-vs-required comparison (bandwidth, AIT or efficiency)."""

    component: str
    measured: float
    predicted: float
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> float:
        if self.predicted <= 0:
            return math.inf if self.measured > 0 else 1.0
        return self.measured / self.predicted

    def flagged(self, tolerance: tuple[float, float]) -> bool:
        lo, hi = tolerance
        return not (lo <= self.ratio <= hi)

    def fmt(self, value: float) -> str:
        if self.unit == "B/s":
            return _fmt_bw(value)
        if self.unit:
            return f"{value:.3f} {self.unit}"
        return f"{value:.3f}"


@dataclass
class PerfReport:
    """Everything :func:`build_perfreport` derives from one traced run."""

    ledgers: list[StepLedger]
    summary: PerfSummary
    critical: Optional[CriticalPath]
    #: tier -> {"bytes": moved, "busy_us": union busy time, "bw": bytes/s}
    tier_bandwidth: dict[str, dict[str, float]]
    #: tier -> analytic AIT (FLOP/byte) of the components placed there
    ait: dict[str, float]
    drift: list[PerfDriftRow]
    recommendations: list[str]
    tolerance: tuple[float, float] = DEFAULT_TOLERANCE
    target_efficiency: float = DEFAULT_TARGET_EFFICIENCY
    top_owners: list[tuple[str, float]] = field(default_factory=list)

    # -- queries -----------------------------------------------------

    def flagged(self) -> list[PerfDriftRow]:
        return [r for r in self.drift if r.flagged(self.tolerance)]

    def drift_row(self, component: str) -> Optional[PerfDriftRow]:
        for r in self.drift:
            if r.component == component:
                return r
        return None

    # -- rendering ---------------------------------------------------

    def render(self) -> str:
        from repro.utils.tables import Table

        parts: list[str] = []
        t = Table(
            ["tier", "bytes moved", "busy ms", "bandwidth", "ait (flop/B)"],
            title="Per-tier measured bandwidth (trace-derived)",
        )
        for tier, row in sorted(self.tier_bandwidth.items()):
            t.add_row(
                [
                    tier,
                    f"{int(row['bytes']):,}",
                    f"{row['busy_us'] / 1e3:.3f}",
                    _fmt_bw(row["bw"]),
                    (
                        f"{self.ait[tier]:.1f}"
                        if tier in self.ait
                        else "-"
                    ),
                ]
            )
        parts.append(t.render())

        if self.drift:
            lo, hi = self.tolerance
            t = Table(
                ["component", "measured", "required", "ratio", "status"],
                title=(
                    f"Eq. (6) bandwidth drift (tolerance {lo:g}..{hi:g},"
                    f" target efficiency {self.target_efficiency:.0%})"
                ),
            )
            for r in self.drift:
                ratio = "inf" if math.isinf(r.ratio) else f"{r.ratio:.3f}"
                status = "DRIFT" if r.flagged(self.tolerance) else "ok"
                name = r.component + (f" [{r.note}]" if r.note else "")
                t.add_row(
                    [name, r.fmt(r.measured), r.fmt(r.predicted), ratio, status]
                )
            parts.append(t.render())

        if self.recommendations:
            parts.append(
                "Recommendations:\n"
                + "\n".join(f"  * {r}" for r in self.recommendations)
            )
        else:
            parts.append(
                "Recommendations: none — no tier outside tolerance, no"
                " stall cause above pressure."
            )
        parts.append(render_perf_breakdown(self.ledgers, self.critical))
        return "\n\n".join(parts)


# --- measurement --------------------------------------------------------------


def _measure_tier_bandwidth(
    records: Sequence[SpanRecord],
    windows: list[tuple[float, float]],
    comm_bytes: int,
) -> dict[str, dict[str, float]]:
    """Bytes moved and busy time per tier, within the step windows.

    ``nvme`` uses the worker-lane ``nvme:pwrite``/``nvme:pread`` spans
    (which carry a ``bytes`` arg); busy time is the union of their
    intervals, so parallel workers measure as aggregate delivered
    bandwidth.  ``comm`` uses the collective spans' union busy time with
    the process group's byte counters (collective spans carry numel, not
    bytes, so the engine supplies the volume).
    """
    nvme_iv: list[tuple[float, float]] = []
    nvme_bytes = 0.0
    comm_iv: list[tuple[float, float]] = []

    def in_window(s: float, e: float) -> bool:
        return any(e > a and s < b for a, b in windows)

    for r in records:
        if r.counter or r.instant or r.dur_us <= 0:
            continue
        s, e = r.ts_us, r.ts_us + r.dur_us
        if windows and not in_window(s, e):
            continue
        if r.name in ("nvme:pwrite", "nvme:pread"):
            nvme_iv.append((s, e))
            nvme_bytes += float(r.args.get("bytes", 0))
        elif classify_span(r.name, r.cat) == COMM:
            comm_iv.append((s, e))

    out: dict[str, dict[str, float]] = {}
    busy = sum(b - a for a, b in _union(nvme_iv))
    if busy > 0:
        out["nvme"] = {
            "bytes": nvme_bytes,
            "busy_us": busy,
            "bw": nvme_bytes / (busy * 1e-6),
        }
    busy = sum(b - a for a, b in _union(comm_iv))
    if busy > 0 and comm_bytes > 0:
        out["comm"] = {
            "bytes": float(comm_bytes),
            "busy_us": busy,
            "bw": comm_bytes / (busy * 1e-6),
        }
    return out


def _nvme_ait(cfg, *, bsz: int, seq: int, hidden_dim: Optional[int], ci: int) -> float:
    """Summed analytic AIT of every component placed on NVMe.

    Components sharing a tier contend for its bandwidth, so the combined
    intensity is flops over *summed* bytes: 1/ait = sum(1/ait_i).
    """
    from repro.analytics.bandwidth_model import (
        ait_activation_checkpoints,
        ait_optimizer_states,
        ait_param_grad,
    )
    from repro.core.config import OffloadDevice

    off = cfg.offload
    inv = 0.0
    if OffloadDevice.NVME in (off.param_device, off.grad_device):
        inv += 1.0 / ait_param_grad(seq=seq, bsz=bsz)
    if off.optimizer_device is OffloadDevice.NVME:
        inv += 1.0 / ait_optimizer_states(seq=seq, bsz=bsz)
    if off.activation_device is OffloadDevice.NVME and hidden_dim:
        inv += 1.0 / ait_activation_checkpoints(hidden_dim=hidden_dim, ci=ci)
    return 1.0 / inv if inv > 0 else 0.0


def build_perfreport(
    engine,
    source: Union[Tracer, Sequence[SpanRecord]],
    *,
    bsz: int = 1,
    seq: Optional[int] = None,
    ci: int = 1,
    target_efficiency: float = DEFAULT_TARGET_EFFICIENCY,
    peak_tp: Optional[float] = None,
    tolerance: tuple[float, float] = DEFAULT_TOLERANCE,
    top_owners: int = 5,
) -> PerfReport:
    """Compare a traced run against the Sec. 4 analytic bandwidth model.

    ``engine`` is the :class:`~repro.core.engine.ZeroInfinityEngine` that
    ran while ``source`` was tracing; ``bsz``/``seq``/``ci`` describe the
    workload for the AIT equations (Eqs. 9-11).  ``peak_tp`` defaults to
    the paper's 70 TFLOPs; pass the measured compute rate of the host to
    evaluate Eq. (6) against what this machine can actually sustain.
    """
    from repro.analytics.bandwidth_model import (
        DEFAULT_PEAK_TP,
        compute_per_iter_flops,
        efficiency,
        required_bandwidth,
    )

    if peak_tp is None:
        peak_tp = DEFAULT_PEAK_TP
    records = (
        source.records() if isinstance(source, Tracer) else list(source)
    )
    ledgers = build_step_ledgers(records)
    if not ledgers:
        raise ValueError(
            "no completed engine:step spans in the trace — run training"
            " under an enabled tracer first"
        )
    summary = summarize_ledgers(ledgers)
    critical = critical_path_from_trace(records, ledgers[-1])

    windows = [(l.start_us, l.start_us + l.wall_us) for l in ledgers]
    comm_bytes = sum(engine.comm.stats.bytes_by_op.values())
    tiers = _measure_tier_bandwidth(records, windows, comm_bytes)

    cfg = engine.config
    dims = getattr(engine.model, "config", None)
    hidden_dim = getattr(dims, "hidden_dim", None)
    n_params = engine.model.num_parameters()

    ait: dict[str, float] = {}
    drift: list[PerfDriftRow] = []
    if seq is not None and "nvme" in tiers:
        a = _nvme_ait(cfg, bsz=bsz, seq=seq, hidden_dim=hidden_dim, ci=ci)
        if a > 0:
            ait["nvme"] = a
            measured_bw = tiers["nvme"]["bw"]
            drift.append(
                PerfDriftRow(
                    "nvme bandwidth (Eq. 6)",
                    measured_bw,
                    required_bandwidth(
                        ait=a,
                        target_efficiency=target_efficiency,
                        peak_tp=peak_tp,
                    ),
                    unit="B/s",
                    note=f"for {target_efficiency:.0%} efficiency",
                )
            )
            # measured AIT: flops the step represents over bytes it moved
            flops = compute_per_iter_flops(bsz=bsz, seq=seq, params=n_params)
            bytes_per_step = tiers["nvme"]["bytes"] / max(1, summary.steps)
            if bytes_per_step > 0:
                drift.append(
                    PerfDriftRow(
                        "nvme ait (Eqs. 9-11)",
                        flops / bytes_per_step,
                        a,
                        unit="flop/B",
                        note="measured flops over measured bytes",
                    )
                )
            # Eq. (6) at the measured bandwidth vs the observed compute
            # fraction — the functional analog of "fraction of peak"
            drift.append(
                PerfDriftRow(
                    "efficiency (Eq. 6 at measured bw)",
                    summary.phase_fractions()["compute"],
                    efficiency(ait=a, bw=measured_bw, peak_tp=peak_tp),
                    note="measured = compute fraction of wall-clock",
                )
            )

    recommendations = _recommend(engine, summary, drift, tolerance, tiers)

    owners = sorted(
        summary.stall_us_by_owner.items(), key=lambda kv: -kv[1]
    )[:top_owners]
    return PerfReport(
        ledgers=ledgers,
        summary=summary,
        critical=critical,
        tier_bandwidth=tiers,
        ait=ait,
        drift=drift,
        recommendations=recommendations,
        tolerance=tolerance,
        target_efficiency=target_efficiency,
        top_owners=owners,
    )


def _recommend(
    engine,
    summary: PerfSummary,
    drift: list[PerfDriftRow],
    tolerance: tuple[float, float],
    tiers: dict[str, dict[str, float]],
) -> list[str]:
    """Knob suggestions from flagged drift rows and dominant stall causes."""
    recs: list[str] = []
    cfg = engine.config
    wall = summary.wall_us or 1.0

    for row in drift:
        if not row.flagged(tolerance):
            continue
        if row.component.startswith("nvme bandwidth"):
            recs.append(
                f"nvme delivers {_fmt_bw(row.measured)} but Eq. (6) needs"
                f" {_fmt_bw(row.predicted)} {row.note}: add NVMe devices,"
                " spread state across more nodes, or lower the target"
                " efficiency"
            )

    frac = {
        cause: us / wall for cause, us in summary.stall_us_by_cause.items()
    }
    if frac.get("prefetch_miss", 0.0) > STALL_PRESSURE:
        depth = max(1, cfg.prefetch_depth)
        recs.append(
            f"prefetch_miss stalls cost {frac['prefetch_miss']:.0%} of the"
            f" step: raise prefetch_depth ({cfg.prefetch_depth} ->"
            f" {2 * depth}) so demand fetches become lookahead hits"
        )
    if frac.get("bucket_flush_wait", 0.0) > STALL_PRESSURE:
        recs.append(
            f"bucket_flush_wait stalls cost"
            f" {frac['bucket_flush_wait']:.0%} of the step: raise"
            f" reduce_bucket_numel ({cfg.reduce_bucket_numel:,} ->"
            f" {2 * cfg.reduce_bucket_numel:,}) to flush less often inline"
        )
    if frac.get("pinned_wait", 0.0) > STALL_PRESSURE:
        recs.append(
            f"pinned_wait stalls cost {frac['pinned_wait']:.0%} of the"
            " step: raise OffloadConfig.pinned_budget_bytes so staging"
            " stops evicting under pressure"
        )
    if frac.get("optimizer_io_tail", 0.0) > STALL_PRESSURE:
        chunk = cfg.offload.optimizer_chunk_numel
        recs.append(
            f"optimizer_io_tail stalls cost"
            f" {frac['optimizer_io_tail']:.0%} of the step: lower"
            f" optimizer_chunk_numel ({chunk:,} -> {max(1, chunk // 2):,})"
            " so read-ahead hides more of the streaming update"
        )
    comm_frac = summary.phase_fractions().get(COMM, 0.0)
    if comm_frac > 0.25 and cfg.tile_factor <= 1:
        recs.append(
            f"collectives take {comm_frac:.0%} of the step: tile oversized"
            " linears (tile_factor >= 2) to shrink per-gather working sets"
        )
    nvme_frac = summary.phase_fractions().get(NVME_IO, 0.0)
    if nvme_frac > 0.5 and summary.phase_us.get("overlap", 0.0) < 0.05 * wall:
        recs.append(
            f"nvme I/O takes {nvme_frac:.0%} of the step with <5% overlap:"
            " enable overlap_comm / prefetching so reads hide behind"
            " compute"
        )
    return recs
