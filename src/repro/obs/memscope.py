"""Live per-tier memory ledger with owner attribution and watermarks.

The paper's argument is a *memory* argument: Sec. 3 walks model states,
activations, and working memory tier by tier (Eqs. 1-5).  PR 1's tracer
answers "where did the time go"; :class:`MemScope` answers the matching
question "which tier peaked, when, and which parameters or buffers owned
those bytes".

Design mirrors :mod:`repro.obs.tracer`:

* One process-global scope, **disabled by default**.  The hot-path entry
  points (:func:`mem_alloc` / :func:`mem_free` / :func:`mem_sample`) are
  module-level one-liners that bail on a single attribute check, so the
  instrumented engine/offload/NVMe paths cost <2% of a step when the
  scope is off (enforced by ``benchmarks/bench_memscope_overhead.py``).
* When enabled, every allocation carries a *tier* (``gpu`` / ``cpu`` /
  ``nvme`` / ``pinned``), a *category* (``param_fp16``, ``grad``,
  ``optimizer_state``, ``gather_buffer``, ``bucket``, ``pinned``,
  ``activation_ckpt``, ``workspace``) and an *owner* (parameter id,
  module path, or pool name).  Frees are clamped per owner so a stray
  double-free can never push a tier negative; by construction the
  category and owner breakdowns always sum exactly to the tier total.
* :meth:`MemScope.sample` records a labelled watermark of all tiers at
  phase boundaries (per-module forward/backward, bucket flush, swap
  in/out, optimizer step) and, when the PR 1 tracer is active, emits a
  Chrome-trace counter event so Perfetto shows memory tracks aligned
  with the span timeline.

The scope is *the* per-tier ledger for attribution purposes; the
capacity-enforcing :class:`repro.hardware.memory.MemoryLedger` is fed at
the same call sites, so the two agree wherever both are configured.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import get_tracer

__all__ = [
    "CATEGORIES",
    "TIERS",
    "MemScope",
    "WatermarkSample",
    "attributed_empty",
    "attributed_zeros",
    "attribution_for_key",
    "get_memscope",
    "mem_alloc",
    "mem_free",
    "mem_sample",
    "memscope_enabled",
    "render_memory_gantt",
    "set_memscope",
    "use_memscope",
]

#: Memory tiers ZeRO-Infinity spans (paper Sec. 5.1) plus the pinned
#: staging pool, which the paper treats as a scarce resource of its own.
TIERS = ("gpu", "cpu", "nvme", "pinned")

#: Allocation categories.  The first three make up "model states"
#: (Eq. 2); the rest are working memory and infrastructure buffers.
CATEGORIES = (
    "param_fp16",
    "grad",
    "optimizer_state",
    "gather_buffer",
    "bucket",
    "pinned",
    "activation_ckpt",
    "workspace",
)

# Offload-store key suffix -> category.  Keys follow the convention
# ``p{uid}.r{rank}.{kind}`` (see core/offload.py) or ``act.{uid}.{seq}``
# for activation checkpoints (see core/act_offload.py).
_KIND_TO_CATEGORY = {
    "param16": "param_fp16",
    "grad16": "grad",
    "master": "optimizer_state",
    "exp_avg": "optimizer_state",
    "exp_avg_sq": "optimizer_state",
}

_attr_cache: dict[str, tuple[str, str]] = {}


def attribution_for_key(key: str) -> tuple[str, str]:
    """Map an offload-store key to ``(category, owner)``.

    ``p3.r1.master`` -> ``("optimizer_state", "p3")``;
    ``act.7.0`` -> ``("activation_ckpt", "act.7")``; anything else is
    ``workspace`` owned by the key itself.
    """
    hit = _attr_cache.get(key)
    if hit is not None:
        return hit
    if key.startswith("act."):
        out = ("activation_ckpt", key.rsplit(".", 1)[0])
    else:
        head, _, kind = key.rpartition(".")
        cat = _KIND_TO_CATEGORY.get(kind)
        if cat is not None:
            out = (cat, head.split(".", 1)[0])
        else:
            out = ("workspace", key)
    if len(_attr_cache) < 65536:  # bound the cache; keys repeat per step
        _attr_cache[key] = out
    return out


@dataclass(frozen=True, slots=True)
class WatermarkSample:
    """One labelled watermark: bytes resident per tier at an instant."""

    label: str
    ts_us: float
    tiers: dict[str, int]


class MemScope:
    """Per-tier byte ledger with category/owner attribution.

    Thread-safe; all mutation happens under one lock (the instrumented
    paths already serialize on array copies far larger than a dict op).
    """

    def __init__(self, *, enabled: bool = False, max_samples: int = 100_000):
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._epoch_ns = time.perf_counter_ns()
        self.max_samples = max_samples
        # tier -> current bytes / peak bytes
        self._tiers: dict[str, int] = {}
        self._peaks: dict[str, int] = {}
        # (tier, category) -> bytes; (tier, category, owner) -> bytes
        self._by_cat: dict[tuple[str, str], int] = {}
        self._by_owner: dict[tuple[str, str, str], int] = {}
        # snapshot of the category breakdown at the instant each tier
        # peaked — so ``sum(peak_breakdown(t)) == peak_bytes(t)`` holds
        # by construction.
        self._peak_breakdown: dict[str, dict[str, int]] = {}
        self._peak_label: dict[str, str] = {}
        # per-owner high-water marks (cheaper than snapshotting every
        # owner on every peak bump)
        self._owner_high: dict[tuple[str, str, str], int] = {}
        self._samples: list[WatermarkSample] = []
        self._aliases: dict[str, str] = {}
        self._last_label = ""
        self.dropped_samples = 0
        self.underflows = 0
        self.op_count = 0  # allocs + frees + samples, for the overhead model

    # -- lifecycle ---------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        with self._lock:
            self._tiers.clear()
            self._peaks.clear()
            self._by_cat.clear()
            self._by_owner.clear()
            self._peak_breakdown.clear()
            self._peak_label.clear()
            self._owner_high.clear()
            self._samples.clear()
            self._last_label = ""
            self.dropped_samples = 0
            self.underflows = 0
            self.op_count = 0

    # -- hot path ----------------------------------------------------

    def alloc(
        self,
        tier: str,
        nbytes: int,
        *,
        category: str = "workspace",
        owner: str = "unattributed",
    ) -> None:
        """Record ``nbytes`` becoming resident on ``tier``."""
        if not self._enabled or nbytes <= 0:
            return
        nbytes = int(nbytes)
        okey = (tier, category, owner)
        with self._lock:
            self.op_count += 1
            cur = self._tiers.get(tier, 0) + nbytes
            self._tiers[tier] = cur
            ckey = (tier, category)
            self._by_cat[ckey] = self._by_cat.get(ckey, 0) + nbytes
            owned = self._by_owner.get(okey, 0) + nbytes
            self._by_owner[okey] = owned
            if owned > self._owner_high.get(okey, 0):
                self._owner_high[okey] = owned
            if cur > self._peaks.get(tier, 0):
                self._peaks[tier] = cur
                self._peak_breakdown[tier] = {
                    c: v for (t, c), v in self._by_cat.items() if t == tier and v
                }
                self._peak_label[tier] = self._last_label

    def free(
        self,
        tier: str,
        nbytes: int,
        *,
        category: str = "workspace",
        owner: str = "unattributed",
    ) -> None:
        """Record ``nbytes`` leaving ``tier``.

        The decrement is clamped to what the ``(tier, category, owner)``
        key actually holds, and tier/category totals shrink by exactly
        the clamped amount — a stray double-free bumps ``underflows``
        instead of corrupting the breakdown invariant.
        """
        if not self._enabled or nbytes <= 0:
            return
        nbytes = int(nbytes)
        okey = (tier, category, owner)
        with self._lock:
            self.op_count += 1
            held = self._by_owner.get(okey, 0)
            removed = nbytes if nbytes <= held else held
            if removed < nbytes:
                self.underflows += 1
            if removed == 0:
                return
            left = held - removed
            if left:
                self._by_owner[okey] = left
            else:
                del self._by_owner[okey]
            ckey = (tier, category)
            self._by_cat[ckey] = self._by_cat.get(ckey, 0) - removed
            if not self._by_cat[ckey]:
                del self._by_cat[ckey]
            self._tiers[tier] = self._tiers.get(tier, 0) - removed

    def sample(self, label: str) -> None:
        """Record a labelled watermark of all tiers (a phase boundary)."""
        if not self._enabled:
            return
        ts_us = (time.perf_counter_ns() - self._epoch_ns) / 1000.0
        with self._lock:
            self.op_count += 1
            self._last_label = label
            snap = dict(self._tiers)
            if len(self._samples) < self.max_samples:
                self._samples.append(WatermarkSample(label, ts_us, snap))
            else:
                self.dropped_samples += 1
        tracer = get_tracer()
        if tracer.enabled:
            # one counter track, one series per tier — aligned with spans
            tracer.counter("mem.tiers", **{t: snap.get(t, 0) for t in TIERS})

    # -- queries -----------------------------------------------------

    def tiers(self) -> list[str]:
        with self._lock:
            seen = set(self._tiers) | set(self._peaks)
        return [t for t in TIERS if t in seen] + sorted(seen - set(TIERS))

    def tier_bytes(self, tier: str) -> int:
        with self._lock:
            return self._tiers.get(tier, 0)

    def peak_bytes(self, tier: str) -> int:
        with self._lock:
            return self._peaks.get(tier, 0)

    def peak_label(self, tier: str) -> str:
        """Watermark label in effect when ``tier`` last peaked."""
        with self._lock:
            return self._peak_label.get(tier, "")

    def breakdown(self, tier: str) -> dict[str, int]:
        """Current bytes per category on ``tier`` (sums to tier total)."""
        with self._lock:
            return {c: v for (t, c), v in self._by_cat.items() if t == tier and v}

    def peak_breakdown(self, tier: str) -> dict[str, int]:
        """Category breakdown captured at the instant ``tier`` peaked."""
        with self._lock:
            return dict(self._peak_breakdown.get(tier, {}))

    def owners(
        self, tier: str, *, category: str | None = None, top: int = 0
    ) -> list[tuple[str, str, int]]:
        """Current ``(owner, category, bytes)`` rows for ``tier``.

        Sorted by bytes descending; ``top`` truncates, 0 keeps all.
        Owner names go through the alias table (``p3`` -> parameter
        name) when one was registered.
        """
        with self._lock:
            rows = [
                (self._aliases.get(o, o), c, v)
                for (t, c, o), v in self._by_owner.items()
                if t == tier and v and (category is None or c == category)
            ]
        rows.sort(key=lambda r: (-r[2], r[0], r[1]))
        return rows[:top] if top else rows

    def owner_high_water(self, tier: str, *, top: int = 0) -> list[tuple[str, str, int]]:
        """Per-owner high-water marks for ``tier`` (not simultaneous)."""
        with self._lock:
            rows = [
                (self._aliases.get(o, o), c, v)
                for (t, c, o), v in self._owner_high.items()
                if t == tier and v
            ]
        rows.sort(key=lambda r: (-r[2], r[0], r[1]))
        return rows[:top] if top else rows

    def category_bytes(self, category: str) -> int:
        """Current bytes in ``category`` summed over every tier."""
        with self._lock:
            return sum(v for (_, c), v in self._by_cat.items() if c == category)

    def timeline(self) -> list[WatermarkSample]:
        with self._lock:
            return list(self._samples)

    def alias(self, owner: str, name: str) -> None:
        """Register a display name for an owner id (``p3`` -> ``blocks.0.attn.wq``)."""
        with self._lock:
            self._aliases[owner] = name

    def snapshot(self) -> dict[str, dict[str, int]]:
        """``{tier: {category: bytes}}`` for every active tier."""
        return {t: self.breakdown(t) for t in self.tiers()}


# -- process-global scope --------------------------------------------

_global_memscope = MemScope(enabled=False)


def get_memscope() -> MemScope:
    return _global_memscope


def set_memscope(scope: MemScope) -> MemScope:
    """Install ``scope`` as the process-global scope; returns the old one."""
    global _global_memscope
    old = _global_memscope
    _global_memscope = scope
    return old


class use_memscope:
    """Context manager: install an enabled :class:`MemScope` for a block.

    >>> with use_memscope() as scope:
    ...     engine.train_step(batch)
    >>> scope.peak_bytes("gpu")
    """

    def __init__(self, scope: MemScope | None = None):
        # A passed-in scope keeps its enabled state (so a disabled scope
        # can be installed to measure the no-op path, like use_tracer).
        self.scope = scope if scope is not None else MemScope(enabled=True)
        self._old: MemScope | None = None

    def __enter__(self) -> MemScope:
        self._old = set_memscope(self.scope)
        return self.scope

    def __exit__(self, *exc) -> None:
        assert self._old is not None
        set_memscope(self._old)


def memscope_enabled() -> bool:
    return _global_memscope._enabled


def mem_alloc(
    tier: str, nbytes: int, *, category: str = "workspace", owner: str = "unattributed"
) -> None:
    """Hot-path alloc hook: a no-op attribute check when the scope is off."""
    s = _global_memscope
    if not s._enabled:
        return
    s.alloc(tier, nbytes, category=category, owner=owner)


def mem_free(
    tier: str, nbytes: int, *, category: str = "workspace", owner: str = "unattributed"
) -> None:
    """Hot-path free hook: a no-op attribute check when the scope is off."""
    s = _global_memscope
    if not s._enabled:
        return
    s.free(tier, nbytes, category=category, owner=owner)


def mem_sample(label: str) -> None:
    """Hot-path watermark hook: a no-op attribute check when the scope is off."""
    s = _global_memscope
    if not s._enabled:
        return
    s.sample(label)


# -- attributed allocation helpers -----------------------------------
#
# The repo lint (tools/lint_repro.py, rule ``rawalloc``) bans bare
# np.empty/np.zeros in the instrumented hot-path modules: long-lived
# buffers must come through these helpers so the scope sees them, and
# transient temporaries must carry ``# lint: allow-rawalloc``.


def attributed_empty(
    shape, dtype, *, tier: str, category: str, owner: str
) -> np.ndarray:
    """``np.empty`` that reports its footprint to the active scope."""
    out = np.empty(shape, dtype=dtype)
    mem_alloc(tier, out.nbytes, category=category, owner=owner)
    return out


def attributed_zeros(
    shape, dtype, *, tier: str, category: str, owner: str
) -> np.ndarray:
    """``np.zeros`` that reports its footprint to the active scope."""
    out = np.zeros(shape, dtype=dtype)
    mem_alloc(tier, out.nbytes, category=category, owner=owner)
    return out


# -- ASCII memory gantt ----------------------------------------------

_BARS = " ▁▂▃▄▅▆▇█"


def _fmt_bytes(n: int) -> str:
    x = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if x < 1024.0 or unit == "GiB":
            return f"{x:.1f} {unit}" if unit != "B" else f"{int(x)} B"
        x /= 1024.0
    return f"{x:.1f} GiB"  # pragma: no cover - unreachable


def render_memory_gantt(scope: MemScope, *, width: int = 64) -> str:
    """Render the watermark timeline as one sparkline row per tier.

    Each column aggregates (max) the samples falling in its slice of the
    timeline, so the rendered peak matches the true watermark even when
    the timeline is longer than ``width``.
    """
    samples = scope.timeline()
    if not samples:
        return "memory gantt: no watermark samples recorded"
    tiers = scope.tiers()
    n = len(samples)
    width = max(1, min(width, n))
    lines = [
        f"memory gantt — {n} watermark samples over "
        f"{(samples[-1].ts_us - samples[0].ts_us) / 1000.0:.1f} ms"
    ]
    for tier in tiers:
        vals = [s.tiers.get(tier, 0) for s in samples]
        peak = max(scope.peak_bytes(tier), max(vals))
        cols = []
        for i in range(width):
            lo = i * n // width
            hi = max(lo + 1, (i + 1) * n // width)
            v = max(vals[lo:hi])
            idx = 0 if peak == 0 else 1 + int((len(_BARS) - 2) * v / peak)
            cols.append(_BARS[min(idx, len(_BARS) - 1)] if v else _BARS[0])
        label = scope.peak_label(tier)
        at = f" @ {label}" if label else ""
        lines.append(
            f"  {tier:<6} |{''.join(cols)}| peak {_fmt_bytes(peak)}{at}"
        )
    if scope.dropped_samples:
        lines.append(f"  ({scope.dropped_samples} samples dropped past the cap)")
    return "\n".join(lines)
