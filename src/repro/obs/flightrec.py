"""Crash flight recorder: bounded per-rank event rings + postmortem bundles.

The recorder keeps the last ``capacity`` events per key (one ring per rank
plus one run-level ring) in memory.  Events come in two flavours:

* **canonical** — deterministic facts of the schedule: fault injections
  (``kind="fault"``), phase boundaries (``kind="phase"``) and comm
  fingerprints (``kind="comm"``).  They are stamped with the *virtual*
  clock only, so for a fixed fault seed the canonical tail of rank *r* is
  byte-identical whether the run executed on the in-process loop backend
  or on ``MultiprocBackend`` worker processes.
* **volatile** — everything wall-clock or load dependent: health
  transitions, telemetry samples, step retries, abort notes.  These are
  dumped into ``state.json`` and never participate in byte comparisons.

``dump_postmortem`` writes a self-contained bundle directory::

    manifest.json            reason, world size, ranks present, schema
    events.rank{r}.json      canonical per-rank tail + run-level tail
    state.json               volatile events + last-known per-rank state
    trace_tail.json          Chrome-trace events of the last N spans
    trace_tail.rank{r}.json  (per-rank form, used by mp workers)

The global accessor follows the tracer/memscope pattern: ``get_flightrec``
returns ``None`` unless a recorder was installed, so the disabled fast
path is one global read + ``is None`` check.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

FLIGHTREC_SCHEMA_VERSION = 1

#: Event kinds whose per-rank tails are deterministic across backends.
CANONICAL_KINDS = ("fault", "phase", "comm")

#: Key used for events that belong to the run rather than a single rank.
RUN_KEY = "run"

_vclock = None  # cached lazily to avoid a faults<->obs import cycle


def _vclock_us() -> int:
    global _vclock
    if _vclock is None:
        from repro.faults.runtime import virtual_clock

        _vclock = virtual_clock
    return _vclock().now_us()


@dataclass
class FlightEvent:
    """One recorded event.  ``vclock_us`` is deterministic; ``wall_us`` is not."""

    kind: str
    name: str
    rank: Optional[int]
    vclock_us: int
    args: dict = field(default_factory=dict)
    wall_us: float = 0.0
    volatile: bool = False

    def canonical_doc(self) -> dict:
        doc = {
            "kind": self.kind,
            "name": self.name,
            "vclock_us": self.vclock_us,
        }
        if self.args:
            doc["args"] = {k: self.args[k] for k in sorted(self.args)}
        return doc

    def volatile_doc(self) -> dict:
        doc = self.canonical_doc()
        doc["rank"] = self.rank
        doc["wall_us"] = round(self.wall_us, 1)
        return doc


def canonical_json(obj) -> bytes:
    """Stable byte encoding used for every byte-compared artifact."""

    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("ascii")


class FlightRecorder:
    """Bounded per-key event rings (one per rank, one for the run)."""

    def __init__(self, *, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._rings: dict[object, deque[FlightEvent]] = {}
        self._last_state: dict[int, dict] = {}
        self._dumped = False
        self.op_count = 0  # record() invocations (overhead modeling)
        # Stamps are relative to the recorder's birth: the process-global
        # virtual clock accumulates across fault planes, but a bundle must
        # be byte-identical for the same schedule regardless of what ran
        # earlier in the process (and mp workers are always born at 0).
        self._vclock_origin = _vclock_us()

    # ------------------------------------------------------------------ record

    def record(
        self,
        kind: str,
        name: str,
        *,
        rank: Optional[int] = None,
        volatile: bool = False,
        **args,
    ) -> None:
        """Append an event to the ring of ``rank`` (or the run ring).

        Canonical kinds (``fault``/``phase``/``comm``) must not be marked
        volatile and vice versa — mixing them would break the determinism
        contract of :meth:`canonical_tail`.
        """

        self.op_count += 1
        if (kind in CANONICAL_KINDS) == volatile:
            raise ValueError(
                f"kind {kind!r} is {'canonical' if not volatile else 'volatile'};"
                " volatile flag mismatch"
            )
        ev = FlightEvent(
            kind=kind,
            name=name,
            rank=rank,
            vclock_us=_vclock_us() - self._vclock_origin,
            args=args,
            wall_us=time.perf_counter_ns() / 1e3,
            volatile=volatile,
        )
        key: object = RUN_KEY if rank is None else int(rank)
        ring = self._rings.get(key)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[key] = ring
        ring.append(ev)
        if rank is not None and kind == "phase":
            st = self._last_state.setdefault(int(rank), {})
            st["phase"] = name
            st.update({k: v for k, v in args.items() if k in ("step", "round")})

    def note_state(self, rank: int, **fields) -> None:
        """Merge volatile last-known-state fields for ``rank``."""

        self._last_state.setdefault(int(rank), {}).update(fields)

    # ------------------------------------------------------------------- views

    def events(self, key: object = RUN_KEY) -> list[FlightEvent]:
        return list(self._rings.get(key, ()))

    def ranks(self) -> list[int]:
        return sorted(k for k in self._rings if isinstance(k, int))

    def canonical_tail(self, rank: Optional[int]) -> list[dict]:
        """Deterministic tail for ``rank`` (or the run ring when ``None``).

        Positions are renumbered from 0 at dump time because absolute
        sequence numbers differ between the loop backend (one process
        records every rank) and mp workers (each process records its own
        rank only).
        """

        key: object = RUN_KEY if rank is None else int(rank)
        tail = [ev for ev in self._rings.get(key, ()) if not ev.volatile]
        docs = []
        for pos, ev in enumerate(tail):
            doc = ev.canonical_doc()
            doc["pos"] = pos
            docs.append(doc)
        return docs

    def rank_bundle_doc(self, rank: int) -> dict:
        """The byte-compared per-rank document (``events.rank{r}.json``)."""

        return {
            "schema": FLIGHTREC_SCHEMA_VERSION,
            "rank": int(rank),
            "events": self.canonical_tail(rank),
            "run": self.canonical_tail(None),
        }

    def state_doc(self, reason: str, *, world: int) -> dict:
        """Volatile postmortem state (``state.json``) — not byte-compared."""

        volatile: list[dict] = []
        for key in sorted(self._rings, key=str):
            for ev in self._rings[key]:
                if ev.volatile:
                    volatile.append(ev.volatile_doc())
        volatile.sort(key=lambda d: d["wall_us"])
        return {
            "schema": FLIGHTREC_SCHEMA_VERSION,
            "reason": reason,
            "world": world,
            "pid": os.getpid(),
            "last_state": {str(r): self._last_state[r] for r in sorted(self._last_state)},
            "volatile_events": volatile,
        }


# --------------------------------------------------------------------- globals

_global_flightrec: Optional[FlightRecorder] = None


def get_flightrec() -> Optional[FlightRecorder]:
    """The process-global recorder, or ``None`` (the disabled fast path)."""

    return _global_flightrec


def install_flightrec(rec: Optional[FlightRecorder]) -> Optional[FlightRecorder]:
    global _global_flightrec
    prev = _global_flightrec
    _global_flightrec = rec
    return prev


@contextmanager
def use_flightrec(rec: Optional[FlightRecorder] = None) -> Iterator[FlightRecorder]:
    if rec is None:
        rec = FlightRecorder()
    prev = install_flightrec(rec)
    try:
        yield rec
    finally:
        install_flightrec(prev)


# ------------------------------------------------------------------ postmortem


def trace_tail_events(tracer, n: int) -> list[dict]:
    """Chrome-trace events for the last ``n`` span records of ``tracer``."""

    from repro.obs.export import chrome_trace_events

    records = tracer.records()
    tail = records[-n:] if n else records

    class _Tail:
        def records(self):
            return tail

        def lane_names(self):
            return tracer.lane_names()

        dropped = getattr(tracer, "dropped", 0)

    return chrome_trace_events(_Tail())


def dump_postmortem(
    dirpath: str,
    reason: str,
    *,
    recorder: FlightRecorder,
    world: int,
    rank: Optional[int] = None,
    tracer=None,
    trace_tail: int = 200,
) -> list[str]:
    """Write a postmortem bundle into ``dirpath`` and return the paths written.

    ``rank=None`` (loop backend) dumps every rank the recorder has seen
    plus a merged ``trace_tail.json``; an mp worker passes its own rank and
    writes only its shard (``events.rank{r}.json`` + ``trace_tail.rank{r}.json``
    + ``state.rank{r}.json``), leaving the manifest to the parent.
    """

    os.makedirs(dirpath, exist_ok=True)
    written: list[str] = []

    def _emit(name: str, payload: bytes) -> None:
        path = os.path.join(dirpath, name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
        written.append(path)

    ranks = recorder.ranks() if rank is None else [int(rank)]
    for r in ranks:
        _emit(f"events.rank{r}.json", canonical_json(recorder.rank_bundle_doc(r)))

    state = recorder.state_doc(reason, world=world)
    state_name = "state.json" if rank is None else f"state.rank{rank}.json"
    _emit(state_name, json.dumps(state, sort_keys=True, indent=1).encode("ascii"))

    if tracer is not None:
        events = trace_tail_events(tracer, trace_tail)
        trace_name = "trace_tail.json" if rank is None else f"trace_tail.rank{rank}.json"
        _emit(trace_name, json.dumps(events, sort_keys=True).encode("ascii"))

    if rank is None:
        manifest = {
            "schema": FLIGHTREC_SCHEMA_VERSION,
            "reason": reason,
            "world": world,
            "ranks": ranks,
        }
        _emit("manifest.json", json.dumps(manifest, sort_keys=True, indent=1).encode("ascii"))
    return written


def write_postmortem_manifest(
    dirpath: str, reason: str, *, world: int
) -> str:
    """Parent-side manifest for an mp run: lists the per-rank shards present."""

    os.makedirs(dirpath, exist_ok=True)
    ranks = sorted(
        int(name[len("events.rank"):-len(".json")])
        for name in os.listdir(dirpath)
        if name.startswith("events.rank") and name.endswith(".json")
    )
    manifest = {
        "schema": FLIGHTREC_SCHEMA_VERSION,
        "reason": reason,
        "world": world,
        "ranks": ranks,
    }
    path = os.path.join(dirpath, "manifest.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="ascii") as fh:
        json.dump(manifest, fh, sort_keys=True, indent=1)
    os.replace(tmp, path)
    return path
