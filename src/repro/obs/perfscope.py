"""Per-step time ledger, stall attribution, and critical-path extraction.

The paper's quantitative spine is Eqs. (6)-(11): efficiency is decided by
how much of the step the device spends computing versus waiting on data
movement.  :mod:`repro.obs.tracer` records *what ran when*; this module
turns those spans into the time-domain twin of
:mod:`repro.obs.memscope`'s byte ledger:

* **time ledger** — every instant of an ``engine:step`` window on the
  stepping thread is classified into exactly one of
  ``{compute, comm, nvme_io, stall, overlap}``.  ``overlap`` is
  compute/comm time during which a background lane was moving bytes (the
  overlap Secs. 5-6 exist to create); the five buckets partition the step
  wall-clock *exactly by construction* (compute is the residual).
* **stall attribution** — the instrumented wait sites wrap themselves in
  :func:`stall_span`, so every stall carries a *cause* from
  :data:`STALL_CAUSES` and an *owner* (the module/pool/bucket/chunk that
  made the step wait).  Stalls win over whatever span they wrap: a
  demand-fetch inside ``stall:prefetch_miss`` is stall time, not I/O.
* **critical path** — a backward walk over the span DAG using the
  happens-before edges the hot paths emit (``req`` tokens from
  ``nvme/aio.py`` submit -> worker block -> wait site, plus per-lane
  serial order).  The same walk runs over :mod:`repro.sim` schedules
  (:func:`critical_path_from_sim`), which is how the extraction is
  cross-checked against analytically known timelines.

Everything here is post-processing over committed spans; the only hot-path
entry point is :func:`stall_span`, which costs one attribute check when
tracing is disabled — the same contract as ``trace_span``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.obs import tracer as _trace
from repro.obs.tracer import SpanRecord, Tracer

#: The stall taxonomy.  Cause -> who owns the wait:
#: ``prefetch_miss`` -> the parameter/module fetched on demand;
#: ``pinned_wait`` -> the pinned staging pool (eviction / budget);
#: ``bucket_flush_wait`` -> the gradient bucket forced to flush inline;
#: ``optimizer_io_tail`` -> the optimizer-state chunk (or grad shard)
#: whose read/write the step drained; ``checksum_refetch`` and ``retry``
#: -> the fault site that re-issued I/O.
STALL_CAUSES = (
    "prefetch_miss",
    "pinned_wait",
    "bucket_flush_wait",
    "optimizer_io_tail",
    "checksum_refetch",
    "retry",
)

COMPUTE = "compute"
COMM = "comm"
NVME_IO = "nvme_io"
STALL = "stall"
OVERLAP = "overlap"

PHASES = (COMPUTE, COMM, NVME_IO, STALL, OVERLAP)

_STALL_PREFIX = "stall:"


def stall_span(cause: str, *, owner: str = "", **args):
    """A traced wait: ``with stall_span("pinned_wait", owner="pool"): ...``

    Records a ``stall:{cause}`` span (cat ``"stall"``) on the global
    tracer; returns the shared no-op when tracing is disabled so the
    instrumented wait sites stay free on the fast path.  ``cause`` should
    come from :data:`STALL_CAUSES`; ``owner`` names who is responsible.
    """
    t = _trace._global_tracer
    if not t._enabled:
        return _trace._NOOP_SPAN
    return t.span(_STALL_PREFIX + cause, cat="stall", owner=owner, **args)


def classify_span(name: str, cat: str) -> str:
    """Ledger category for one span (stall priority is applied later)."""
    if cat == "stall" or name.startswith(_STALL_PREFIX):
        return STALL
    if cat == "comm" or name.startswith(
        ("engine:allgather", "engine:grad_reduce", "bucket:")
    ):
        return COMM
    if cat in ("nvme", "offload") or name.startswith(("offload:", "nvme:")):
        return NVME_IO
    return COMPUTE


# --- time ledger -------------------------------------------------------------


@dataclass(frozen=True)
class Segment:
    """One elementary interval of a step window with a single category."""

    start_us: float
    end_us: float
    category: str
    label: str = ""  # innermost span name; "" = uncovered (pure compute)
    cause: str = ""  # stall cause, for category == "stall"
    owner: str = ""  # stall owner
    args: dict = field(default_factory=dict)

    @property
    def dur_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class StallTotal:
    """Aggregate wait time for one (cause, owner) pair within a step."""

    cause: str
    owner: str
    total_us: float
    count: int


@dataclass
class StepLedger:
    """Exact time accounting for one ``engine:step`` span.

    ``compute + comm + nvme_io + stall + overlap == wall`` holds exactly:
    comm/nvme_io/stall/overlap are swept from the span timeline and
    compute is defined as the residual.  ``residual_us`` is the
    difference between that residual and the independently swept compute
    time — a float-rounding diagnostic that should be ~0.
    """

    step: int
    tid: int
    start_us: float
    wall_us: float
    compute_us: float
    comm_us: float
    nvme_io_us: float
    stall_us: float
    overlap_us: float
    stalls: list[StallTotal]
    segments: list[Segment]
    residual_us: float = 0.0
    aborted_spans: int = 0

    def phase_us(self) -> dict[str, float]:
        return {
            COMPUTE: self.compute_us,
            COMM: self.comm_us,
            NVME_IO: self.nvme_io_us,
            STALL: self.stall_us,
            OVERLAP: self.overlap_us,
        }

    def accounted_us(self) -> float:
        """Sum of the five buckets; equals ``wall_us`` by construction."""
        return (
            self.compute_us
            + self.comm_us
            + self.nvme_io_us
            + self.stall_us
            + self.overlap_us
        )

    def overlap_fraction(self) -> float:
        return self.overlap_us / self.wall_us if self.wall_us > 0 else 0.0

    def stall_fraction(self) -> float:
        return self.stall_us / self.wall_us if self.wall_us > 0 else 0.0

    def stall_us_by_cause(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.stalls:
            out[s.cause] = out.get(s.cause, 0.0) + s.total_us
        return out


def _span_intervals(records: Iterable[SpanRecord]) -> list[tuple[float, float]]:
    return [(r.ts_us, r.ts_us + r.dur_us) for r in records]


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge intervals into a disjoint, sorted union."""
    out: list[tuple[float, float]] = []
    for a, b in sorted(intervals):
        if b <= a:
            continue
        if out and a <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], b))
        else:
            out.append((a, b))
    return out


def _overlap_len(a: float, b: float, union: list[tuple[float, float]]) -> float:
    """Length of [a, b) covered by the disjoint ``union``."""
    total = 0.0
    for lo, hi in union:
        if hi <= a:
            continue
        if lo >= b:
            break
        total += min(b, hi) - max(a, lo)
    return total


def _stall_cause(record: SpanRecord) -> str:
    """Cause name of a stall span (``stall:`` prefix stripped)."""
    if record.name.startswith(_STALL_PREFIX):
        return record.name[len(_STALL_PREFIX):]
    return record.name


def _stall_priority(record: SpanRecord) -> tuple[int, float]:
    """Sort key picking which of several overlapping stalls gets billed.

    A ``pinned_wait`` names a resource shortage (the pinned staging pool),
    not an I/O latency: when one shows up nested inside an I/O drain —
    e.g. a pinned acquire inside the chunked optimizer read drain — the
    pool is what the lane is actually waiting on, so it outranks every
    latency-shaped cause regardless of span duration.  Ties and the
    remaining causes fall back to the innermost (shortest) span.
    """
    return (0 if _stall_cause(record) == "pinned_wait" else 1, record.dur_us)


def _build_step_ledger(
    step: SpanRecord, records: list[SpanRecord]
) -> StepLedger:
    w0 = step.ts_us
    w1 = step.ts_us + step.dur_us
    lane = step.tid

    # spans on the stepping lane inside the window (the step span itself
    # and any enclosing callers excluded: only strict sub-intervals count)
    on_lane: list[SpanRecord] = []
    background: list[SpanRecord] = []
    aborted = 0
    for r in records:
        if r.counter or r.instant or r.dur_us < 0:
            continue
        s, e = r.ts_us, r.ts_us + r.dur_us
        if e <= w0 or s >= w1:
            continue
        if r.args.get("aborted"):
            aborted += 1
        if r.tid == lane:
            if r is step or (s <= w0 and e >= w1):
                continue
            on_lane.append(r)
        else:
            background.append(r)

    # background NVMe activity: the overlap source
    bg_nvme = _union(
        [
            (max(r.ts_us, w0), min(r.ts_us + r.dur_us, w1))
            for r in background
            if classify_span(r.name, r.cat) == NVME_IO
        ]
    )

    # elementary boundaries on the stepping lane
    bounds = {w0, w1}
    for r in on_lane:
        bounds.add(min(max(r.ts_us, w0), w1))
        bounds.add(min(max(r.ts_us + r.dur_us, w0), w1))
    edges = sorted(bounds)

    segments: list[Segment] = []
    comm = nvme = stall = overlap = 0.0
    swept_compute = 0.0
    stall_keys: dict[tuple[str, str], list[float]] = {}
    stall_span_ids: dict[tuple[str, str], set[int]] = {}

    for a, b in zip(edges, edges[1:]):
        if b <= a:
            continue
        mid = (a + b) / 2.0
        active = [
            r for r in on_lane if r.ts_us <= mid < r.ts_us + r.dur_us
        ]
        stalls_active = [
            r for r in active if classify_span(r.name, r.cat) == STALL
        ]
        if stalls_active:
            # stalls win over whatever they wrap; the innermost stall names
            # it, except that a pinned-pool acquire nested inside an I/O
            # drain is the *real* bottleneck — without the priority a
            # pinned_wait inside the chunked-read drain would be billed to
            # optimizer_io_tail whenever the outer span happens to be
            # shorter-lived at this segment
            inner = min(stalls_active, key=_stall_priority)
            cause = _stall_cause(inner)
            owner = str(inner.args.get("owner", ""))
            segments.append(
                Segment(a, b, STALL, inner.name, cause, owner, dict(inner.args))
            )
            stall += b - a
            key = (cause, owner)
            stall_keys.setdefault(key, []).append(b - a)
            stall_span_ids.setdefault(key, set()).add(id(inner))
            continue
        if active:
            inner = min(active, key=lambda r: r.dur_us)
            cat = classify_span(inner.name, inner.cat)
            label = inner.name
            args = dict(inner.args)
        else:
            cat, label, args = COMPUTE, "", {}
        if cat in (COMPUTE, COMM):
            # carve out the part hidden behind background I/O
            hidden = _overlap_len(a, b, bg_nvme)
            if hidden > 0.0:
                overlap += hidden
            visible = (b - a) - hidden
            if cat == COMM:
                comm += visible
            else:
                swept_compute += visible
            segments.append(Segment(a, b, cat, label, args=args))
        elif cat == NVME_IO:
            nvme += b - a
            segments.append(Segment(a, b, NVME_IO, label, args=args))
        else:  # pragma: no cover - classify_span returns one of the above
            swept_compute += b - a
            segments.append(Segment(a, b, COMPUTE, label, args=args))

    wall = w1 - w0
    # compute is the residual, so the five buckets sum to the wall-clock
    # exactly; the sweep's own compute total only differs by float rounding
    compute = wall - (comm + nvme + stall + overlap)
    residual = abs(compute - swept_compute)

    stalls_out = sorted(
        (
            StallTotal(
                cause,
                owner,
                sum(parts),
                len(stall_span_ids[(cause, owner)]),
            )
            for (cause, owner), parts in stall_keys.items()
        ),
        key=lambda s: -s.total_us,
    )
    return StepLedger(
        step=int(step.args.get("step", -1)),
        tid=lane,
        start_us=w0,
        wall_us=wall,
        compute_us=compute,
        comm_us=comm,
        nvme_io_us=nvme,
        stall_us=stall,
        overlap_us=overlap,
        stalls=stalls_out,
        segments=segments,
        residual_us=residual,
        aborted_spans=aborted,
    )


def build_step_ledgers(
    source: Union[Tracer, Sequence[SpanRecord]],
) -> list[StepLedger]:
    """One :class:`StepLedger` per completed ``engine:step`` span."""
    records = (
        source.records() if isinstance(source, Tracer) else list(source)
    )
    steps = sorted(
        (
            r
            for r in records
            if r.name == "engine:step" and not r.instant and not r.counter
        ),
        key=lambda r: r.ts_us,
    )
    return [_build_step_ledger(s, records) for s in steps]


@dataclass
class PerfSummary:
    """Across-step aggregation of the ledgers (what ``EngineReport`` holds)."""

    steps: int
    wall_us: float
    phase_us: dict[str, float]
    stall_us_by_cause: dict[str, float]
    stall_us_by_owner: dict[str, float]
    force_closed_spans: int = 0

    def overlap_fraction(self) -> float:
        return (
            self.phase_us.get(OVERLAP, 0.0) / self.wall_us
            if self.wall_us > 0
            else 0.0
        )

    def stall_fraction(self) -> float:
        return (
            self.phase_us.get(STALL, 0.0) / self.wall_us
            if self.wall_us > 0
            else 0.0
        )

    def phase_fractions(self) -> dict[str, float]:
        if self.wall_us <= 0:
            return {p: 0.0 for p in PHASES}
        return {p: self.phase_us.get(p, 0.0) / self.wall_us for p in PHASES}


def summarize_ledgers(
    ledgers: Sequence[StepLedger], *, force_closed: int = 0
) -> PerfSummary:
    phase = {p: 0.0 for p in PHASES}
    by_cause: dict[str, float] = {}
    by_owner: dict[str, float] = {}
    wall = 0.0
    for led in ledgers:
        wall += led.wall_us
        for p, v in led.phase_us().items():
            phase[p] += v
        for s in led.stalls:
            by_cause[s.cause] = by_cause.get(s.cause, 0.0) + s.total_us
            if s.owner:
                by_owner[s.owner] = by_owner.get(s.owner, 0.0) + s.total_us
    return PerfSummary(
        steps=len(ledgers),
        wall_us=wall,
        phase_us=phase,
        stall_us_by_cause=by_cause,
        stall_us_by_owner=by_owner,
        force_closed_spans=force_closed,
    )


# --- critical path -----------------------------------------------------------


@dataclass(frozen=True)
class PathNode:
    """One interval on the critical path."""

    name: str
    lane: str
    start_us: float
    finish_us: float
    category: str = ""

    @property
    def dur_us(self) -> float:
        return self.finish_us - self.start_us


@dataclass
class CriticalPath:
    """Backward-walk result: the gating chain ending at the latest finish.

    ``nodes`` are chronological; ``slack_us[i]`` is the gap between
    ``nodes[i].finish`` and ``nodes[i+1].start`` (0 on a tight path).
    """

    nodes: list[PathNode]
    slack_us: list[float]
    makespan_us: float

    def names(self) -> list[str]:
        return [n.name for n in self.nodes]

    def top_segments(self, k: int = 5) -> list[PathNode]:
        return sorted(self.nodes, key=lambda n: -n.dur_us)[:k]

    def path_us(self) -> float:
        return sum(n.dur_us for n in self.nodes)

    def coverage(self) -> float:
        """Fraction of the makespan the path's own intervals explain."""
        if self.makespan_us <= 0:
            return 0.0
        return min(1.0, self.path_us() / self.makespan_us)


def _walk_back(
    nodes: list[PathNode], preds: list[list[int]]
) -> tuple[list[int], list[float]]:
    """Generic gating walk: from the latest finisher, repeatedly step to
    the predecessor with the latest finish (the one that gated us)."""
    if not nodes:
        return [], []
    cur = max(range(len(nodes)), key=lambda i: nodes[i].finish_us)
    order = [cur]
    seen = {cur}
    while preds[cur]:
        candidates = [p for p in preds[cur] if p not in seen]
        if not candidates:
            break
        nxt = max(candidates, key=lambda p: nodes[p].finish_us)
        order.append(nxt)
        seen.add(nxt)
        cur = nxt
    order.reverse()
    slack = [
        max(0.0, nodes[b].start_us - nodes[a].finish_us)
        for a, b in zip(order, order[1:])
    ]
    return order, slack


def critical_path_from_sim(result) -> CriticalPath:
    """Critical path of a :class:`repro.sim.events.SimulationResult`.

    Predecessors are the task's explicit ``deps`` plus its FIFO stream
    predecessor (streams execute in submission order), mirroring the
    gating rule of the scheduler itself — so on an analytically known
    schedule the extracted path is exactly the chain that set the
    makespan.  Simulated seconds map to microseconds (x 1e6), matching
    :func:`repro.obs.export.sim_to_chrome_trace`.
    """
    tasks = result.tasks
    nodes = [
        PathNode(t.name, f"stream:{t.stream}", t.start * 1e6, t.finish * 1e6)
        for t in tasks
    ]
    last_on_stream: dict[str, int] = {}
    preds: list[list[int]] = []
    for t in tasks:
        p = list(t.deps)
        prev = last_on_stream.get(t.stream)
        if prev is not None:
            p.append(prev)
        preds.append(p)
        last_on_stream[t.stream] = t.index
    order, slack = _walk_back(nodes, preds)
    return CriticalPath(
        [nodes[i] for i in order], slack, result.makespan * 1e6
    )


def critical_path_from_trace(
    source: Union[Tracer, Sequence[SpanRecord]],
    ledger: Optional[StepLedger] = None,
) -> CriticalPath:
    """Critical path of one traced step.

    Nodes are the stepping lane's ledger segments plus the *leaf* spans of
    every background lane inside the step window.  Edges:

    * per-lane serial order (a thread runs one thing at a time);
    * ``req``-token happens-before: an ``nvme:submit_*`` segment precedes
      the worker blocks carrying the same ``req``, and those blocks
      precede the stall segment that waited on the request — so a walk
      through ``stall:optimizer_io_tail`` detours through the I/O lane
      that actually gated it.
    """
    records = (
        source.records() if isinstance(source, Tracer) else list(source)
    )
    if ledger is None:
        ledgers = build_step_ledgers(records)
        if not ledgers:
            return CriticalPath([], [], 0.0)
        ledger = ledgers[-1]
    w0, w1 = ledger.start_us, ledger.start_us + ledger.wall_us

    nodes: list[PathNode] = []
    preds: list[list[int]] = []
    # token bookkeeping: req -> node indices
    submit_of: dict[object, int] = {}
    blocks_of: dict[object, list[int]] = {}
    waiters_of: dict[object, list[int]] = {}

    main_chain: list[int] = []
    for seg in ledger.segments:
        if seg.dur_us <= 0:
            continue
        idx = len(nodes)
        nodes.append(
            PathNode(
                seg.label or "compute",
                f"lane{ledger.tid}",
                seg.start_us,
                seg.end_us,
                seg.category,
            )
        )
        preds.append([main_chain[-1]] if main_chain else [])
        main_chain.append(idx)
        req = seg.args.get("req")
        if req is not None:
            if seg.label.startswith("nvme:submit"):
                submit_of[req] = idx
            elif seg.category == STALL:
                waiters_of.setdefault(req, []).append(idx)

    # background leaf spans, per lane in time order
    by_lane: dict[int, list[SpanRecord]] = {}
    for r in records:
        if r.counter or r.instant or r.tid == ledger.tid:
            continue
        s, e = r.ts_us, r.ts_us + r.dur_us
        if e <= w0 or s >= w1:
            continue
        by_lane.setdefault(r.tid, []).append(r)
    for lane, spans in sorted(by_lane.items()):
        spans.sort(key=lambda r: (r.ts_us, -r.dur_us))
        # keep leaves only: a span strictly containing another is a parent
        leaves: list[SpanRecord] = []
        for r in spans:
            end = r.ts_us + r.dur_us
            has_child = any(
                o is not r
                and o.ts_us >= r.ts_us
                and o.ts_us + o.dur_us <= end
                and (o.ts_us > r.ts_us or o.ts_us + o.dur_us < end)
                for o in spans
            )
            if not has_child:
                leaves.append(r)
        prev = None
        for r in leaves:
            idx = len(nodes)
            nodes.append(
                PathNode(
                    r.name,
                    f"lane{lane}",
                    r.ts_us,
                    r.ts_us + r.dur_us,
                    classify_span(r.name, r.cat),
                )
            )
            preds.append([prev] if prev is not None else [])
            prev = idx
            req = r.args.get("req")
            if req is not None:
                blocks_of.setdefault(req, []).append(idx)

    for req, block_idxs in blocks_of.items():
        sub = submit_of.get(req)
        if sub is not None:
            for b in block_idxs:
                preds[b].append(sub)
        for w in waiters_of.get(req, []):
            preds[w].extend(block_idxs)

    order, slack = _walk_back(nodes, preds)
    return CriticalPath([nodes[i] for i in order], slack, ledger.wall_us)


# --- rendering ---------------------------------------------------------------


def _ms(us: float) -> str:
    return f"{us / 1e3:.3f}"


def render_perf_breakdown(
    ledgers: Sequence[StepLedger],
    critical: Optional[CriticalPath] = None,
    *,
    top_k: int = 5,
) -> str:
    """ASCII phase/stall breakdown (the time-side memory gantt)."""
    from repro.utils.tables import Table

    parts: list[str] = []
    t = Table(
        ["step", "wall ms", "compute", "comm", "nvme_io", "stall", "overlap"],
        title="Step time ledger (fractions of wall-clock; buckets sum to 1)",
    )
    for led in ledgers:
        w = led.wall_us or 1.0
        t.add_row(
            [
                led.step,
                _ms(led.wall_us),
                f"{led.compute_us / w:.2f}",
                f"{led.comm_us / w:.2f}",
                f"{led.nvme_io_us / w:.2f}",
                f"{led.stall_us / w:.2f}",
                f"{led.overlap_us / w:.2f}",
            ]
        )
    parts.append(t.render())

    rows: dict[tuple[str, str], tuple[float, int]] = {}
    for led in ledgers:
        for s in led.stalls:
            total, count = rows.get((s.cause, s.owner), (0.0, 0))
            rows[(s.cause, s.owner)] = (total + s.total_us, count + s.count)
    if rows:
        t = Table(
            ["cause", "owner", "total ms", "waits"],
            title="Stall attribution",
        )
        for (cause, owner), (total, count) in sorted(
            rows.items(), key=lambda kv: -kv[1][0]
        ):
            t.add_row([cause, owner or "-", _ms(total), count])
        parts.append(t.render())

    if critical is not None and critical.nodes:
        t = Table(
            ["segment", "lane", "category", "ms", "% of step"],
            title=(
                f"Critical path: {len(critical.nodes)} segments,"
                f" covers {100.0 * critical.coverage():.0f}% of the step"
            ),
        )
        for n in critical.top_segments(top_k):
            pct = (
                100.0 * n.dur_us / critical.makespan_us
                if critical.makespan_us
                else 0.0
            )
            t.add_row([n.name, n.lane, n.category, _ms(n.dur_us), f"{pct:.1f}"])
        parts.append(t.render())
    return "\n\n".join(parts) if parts else "(no steps traced)"
