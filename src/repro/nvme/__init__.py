"""Infinity offload engine I/O substrate (DeepNVMe stand-in).

The paper's DeepNVMe is a C++ libaio library with bulk asynchronous
read/write, explicit flush, aggressive request parallelism and pinned-memory
staging (Sec. 6.3).  This package reproduces the same contract in Python:

* :class:`~repro.nvme.aio.AsyncIOEngine` — thread-pool async file I/O with
  request handles, per-request slicing for intra-request parallelism, and a
  ``synchronize()`` barrier;
* :class:`~repro.nvme.buffers.PinnedBufferPool` — a bounded pool of reusable
  staging buffers ("tens of GBs" reused "for offloading ... up to tens of
  TBs"), enforcing the budget the pinned-memory layer manages;
* :class:`~repro.nvme.store.TensorStore` — file-backed tensor swapping keyed
  by name, the storage backend of NVMe offload.
"""

from repro.nvme.aio import AsyncIOEngine, IORequest
from repro.nvme.buffers import PinnedBufferPool, PinnedBuffer
from repro.nvme.store import TensorStore, ChunkedSwapper

__all__ = [
    "AsyncIOEngine",
    "IORequest",
    "PinnedBufferPool",
    "PinnedBuffer",
    "TensorStore",
    "ChunkedSwapper",
]
