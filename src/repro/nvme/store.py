"""File-backed tensor swapping.

:class:`TensorStore` is the storage backend of NVMe offload: tensors are
written to per-key binary files in a spool directory and read back into
caller buffers (or pool-staged copies).  All I/O goes through the
:class:`~repro.nvme.aio.AsyncIOEngine`, so swaps can overlap compute exactly
as the overlap-centric design requires.

:class:`ChunkedSwapper` implements the streamed optimizer-step pattern of
Sec. 5.2.2: state too large for CPU memory is brought from NVMe "in chunks
that can fit in the CPU memory ... one chunk at a time", with the read of
chunk ``i+1`` overlapping the write-back of chunk ``i-1`` and the compute on
chunk ``i`` (double buffering).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

import numpy as np

from repro.nvme.aio import AsyncIOEngine, IORequest
from repro.nvme.buffers import PinnedBufferPool
from repro.obs.memscope import attribution_for_key, get_memscope


@dataclass(frozen=True, slots=True)
class _Record:
    path: str
    shape: tuple[int, ...]
    dtype: np.dtype
    nbytes: int


class TensorStore:
    """Named tensor swap space over a spool directory.

    Thread-safe for the engine's usage pattern (async writes racing with
    metadata reads).  Keys are arbitrary strings; slashes are escaped so
    parameter paths like ``"blocks.3.attn.qkv.weight"`` map to flat files.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        engine: Optional[AsyncIOEngine] = None,
        pool: Optional[PinnedBufferPool] = None,
        check=None,
    ) -> None:
        self._own_dir = directory is None
        self.directory = directory or tempfile.mkdtemp(prefix="repro-nvme-")
        os.makedirs(self.directory, exist_ok=True)
        self._own_engine = engine is None
        self.engine = engine or AsyncIOEngine(check=check)
        self.pool = pool
        self._records: dict[str, _Record] = {}
        self._lock = threading.Lock()
        self._closed = False

    # --- paths ----------------------------------------------------------------
    def _path_for(self, key: str) -> str:
        safe = key.replace(os.sep, "__")
        return os.path.join(self.directory, safe + ".bin")

    # --- metadata ----------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._records)

    def nbytes(self, key: str) -> int:
        with self._lock:
            return self._records[key].nbytes

    def meta(self, key: str) -> tuple[tuple[int, ...], np.dtype, int]:
        """(shape, dtype, nbytes) of a stored tensor."""
        with self._lock:
            rec = self._records[key]
        return rec.shape, rec.dtype, rec.nbytes

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(r.nbytes for r in self._records.values())

    # --- write -------------------------------------------------------------------
    def write(self, key: str, array: np.ndarray) -> None:
        """Synchronously persist ``array`` under ``key`` (overwrites)."""
        self.write_async(key, array).wait()

    def write_async(self, key: str, array: np.ndarray) -> IORequest:
        """Begin persisting ``array``; caller must not mutate it until done."""
        arr = np.ascontiguousarray(array)
        path = self._path_for(key)
        rec = _Record(path, arr.shape, arr.dtype, int(arr.nbytes))
        with self._lock:
            old = self._records.get(key)
            if old is not None and old.nbytes != rec.nbytes:
                # shrinkage must truncate, or stale tail bytes would survive
                with open(path, "wb"):
                    pass
            self._records[key] = rec
        scope = get_memscope()
        if scope.enabled:  # residency delta on the nvme tier
            category, owner = attribution_for_key(key)
            if old is not None:
                scope.free(
                    "nvme", old.nbytes, category=category, owner=owner
                )
            scope.alloc("nvme", rec.nbytes, category=category, owner=owner)
        return self.engine.submit_write(path, arr)

    # --- read ------------------------------------------------------------------
    def read(self, key: str, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Synchronously load ``key``; into ``out`` when provided."""
        out, req = self._start_read(key, out)
        req.wait()
        return out

    def read_async(
        self, key: str, out: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, IORequest]:
        """Begin loading ``key``; returns (target, handle)."""
        return self._start_read(key, out)

    def _start_read(
        self, key: str, out: Optional[np.ndarray]
    ) -> tuple[np.ndarray, IORequest]:
        with self._lock:
            try:
                rec = self._records[key]
            except KeyError as e:
                raise KeyError(f"tensor {key!r} not in store") from e
        if out is None:
            out = np.empty(rec.shape, dtype=rec.dtype)  # lint: allow-rawalloc
        else:
            if out.nbytes != rec.nbytes:
                raise ValueError(
                    f"target buffer holds {out.nbytes} bytes, record {key!r}"
                    f" holds {rec.nbytes}"
                )
            if out.dtype != rec.dtype:
                out = out.view(rec.dtype)
            if tuple(out.shape) != rec.shape:
                out = out.reshape(rec.shape)
        req = self.engine.submit_read(rec.path, out)
        return out, req

    # --- ranged access (chunked optimizer streaming) ---------------------------
    def read_range(
        self, key: str, start_numel: int, numel: int, out: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, IORequest]:
        """Begin reading ``numel`` elements of flat ``key`` from ``start_numel``.

        Returns ``(target, handle)``.  Used by the chunked NVMe optimizer
        step to stream state shards through bounded staging buffers.
        """
        with self._lock:
            rec = self._records[key]
        total = int(np.prod(rec.shape, dtype=np.int64))
        if start_numel < 0 or numel < 0 or start_numel + numel > total:
            raise ValueError(
                f"range [{start_numel}, {start_numel + numel}) out of bounds"
                f" for {key!r} with {total} elements"
            )
        if out is None:
            out = np.empty(numel, dtype=rec.dtype)  # lint: allow-rawalloc
        elif out.dtype != rec.dtype or out.size != numel:
            raise ValueError("range read target has wrong dtype or size")
        req = self.engine.submit_read(
            rec.path, out, file_offset=start_numel * rec.dtype.itemsize
        )
        return out, req

    def write_range(
        self, key: str, start_numel: int, array: np.ndarray
    ) -> IORequest:
        """Begin writing ``array`` into flat ``key`` at ``start_numel``."""
        with self._lock:
            rec = self._records[key]
        arr = np.ascontiguousarray(array, dtype=rec.dtype).reshape(-1)
        total = int(np.prod(rec.shape, dtype=np.int64))
        if start_numel < 0 or start_numel + arr.size > total:
            raise ValueError(
                f"range write [{start_numel}, {start_numel + arr.size}) out of"
                f" bounds for {key!r} with {total} elements"
            )
        return self.engine.submit_write(
            rec.path, arr, file_offset=start_numel * rec.dtype.itemsize
        )

    # --- delete / lifecycle --------------------------------------------------------
    def delete(self, key: str) -> None:
        with self._lock:
            rec = self._records.pop(key, None)
        if rec is not None:
            scope = get_memscope()
            if scope.enabled:
                category, owner = attribution_for_key(key)
                scope.free("nvme", rec.nbytes, category=category, owner=owner)
            if os.path.exists(rec.path):
                os.remove(rec.path)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        scope = get_memscope()
        if scope.enabled:
            with self._lock:
                for key, rec in self._records.items():
                    category, owner = attribution_for_key(key)
                    scope.free("nvme", rec.nbytes, category=category, owner=owner)
        if self._own_engine:
            self.engine.close()
        else:
            self.engine.synchronize()
        if self._own_dir:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "TensorStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ChunkedSwapper:
    """Double-buffered streaming of a huge stored tensor through a transform.

    ``apply`` reads a 1-D stored tensor in fixed-size chunks, calls
    ``fn(chunk) -> chunk`` on each, and writes results back — never holding
    more than two chunks of staging memory (from the pinned pool when one is
    configured).  Read-ahead of chunk ``i+1`` is issued before ``fn`` runs on
    chunk ``i``, so I/O overlaps compute like the infinity engine's NVMe
    optimizer step.
    """

    def __init__(
        self,
        store: TensorStore,
        *,
        chunk_numel: int,
        pool: Optional[PinnedBufferPool] = None,
    ) -> None:
        if chunk_numel <= 0:
            raise ValueError("chunk_numel must be positive")
        self.store = store
        self.chunk_numel = chunk_numel
        self.pool = pool

    def _chunks(self, total: int) -> Iterator[tuple[int, int]]:
        off = 0
        while off < total:
            n = min(self.chunk_numel, total - off)
            yield off, n
            off += n

    def apply(self, key: str, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        """Stream ``key`` through ``fn`` chunk-by-chunk, in place on disk."""
        with self.store._lock:
            rec = self.store._records[key]
        total = int(np.prod(rec.shape, dtype=np.int64))
        itemsize = rec.dtype.itemsize
        spans = list(self._chunks(total))
        if not spans:
            return

        def acquire(n: int):
            if self.pool is not None:
                buf = self.pool.acquire(n, rec.dtype)
                return buf.array, buf
            return np.empty(n, dtype=rec.dtype), None  # lint: allow-rawalloc

        # Prime: issue read of chunk 0.
        pending_write: Optional[IORequest] = None
        cur_arr, cur_pin = acquire(spans[0][1])
        cur_req = self.store.engine.submit_read(
            rec.path, cur_arr, file_offset=spans[0][0] * itemsize
        )
        for i, (off, n) in enumerate(spans):
            # Read-ahead next chunk before computing on the current one.
            nxt = None
            if i + 1 < len(spans):
                noff, nn = spans[i + 1]
                nxt_arr, nxt_pin = acquire(nn)
                nxt_req = self.store.engine.submit_read(
                    rec.path, nxt_arr, file_offset=noff * itemsize
                )
                nxt = (nxt_arr, nxt_pin, nxt_req)
            cur_req.wait()
            result = np.ascontiguousarray(fn(cur_arr), dtype=rec.dtype)
            if result.size != n:
                raise ValueError(
                    f"chunk transform changed size: {n} -> {result.size}"
                )
            if pending_write is not None:
                pending_write.wait()  # bound in-flight writes to one
            pending_write = self.store.engine.submit_write(
                rec.path, result, file_offset=off * itemsize
            )
            pending_write.wait()  # result may be a temp; ensure durable before reuse
            pending_write = None
            if cur_pin is not None:
                cur_pin.release()
            if nxt is not None:
                cur_arr, cur_pin, cur_req = nxt
        self.store.engine.synchronize()
