"""File-backed tensor swapping.

:class:`TensorStore` is the storage backend of NVMe offload: tensors are
written to per-key binary files in a spool directory and read back into
caller buffers (or pool-staged copies).  All I/O goes through the
:class:`~repro.nvme.aio.AsyncIOEngine`, so swaps can overlap compute exactly
as the overlap-centric design requires.

:class:`ChunkedSwapper` implements the streamed optimizer-step pattern of
Sec. 5.2.2: state too large for CPU memory is brought from NVMe "in chunks
that can fit in the CPU memory ... one chunk at a time", with the read of
chunk ``i+1`` overlapping the write-back of chunk ``i-1`` and the compute on
chunk ``i`` (double buffering).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional

import numpy as np

from repro.faults.errors import ChecksumMismatch, FaultUnrecoverable
from repro.faults.runtime import virtual_clock
from repro.nvme.aio import AsyncIOEngine, IORequest
from repro.nvme.buffers import PinnedBufferPool
from repro.obs.memscope import attribution_for_key, get_memscope
from repro.obs.metrics import get_registry
from repro.obs.perfscope import stall_span
from repro.obs.tracer import trace_instant


def _crc32(array: np.ndarray) -> int:
    return zlib.crc32(memoryview(array).cast("B")) & 0xFFFFFFFF


#: Key suffix of the shadow (double-buffer) record a transactional writer
#: streams into before :meth:`TensorStore.promote` renames it onto the
#: primary.  The suffix keeps shadow files beside their primaries in the
#: spool directory and out of every primary key's namespace.
SHADOW_SUFFIX = ".pipe"


def shadow_key(key: str) -> str:
    """The double-buffer key a transactional update of ``key`` writes to."""
    return key + SHADOW_SUFFIX


@dataclass(frozen=True, slots=True)
class _Record:
    path: str
    shape: tuple[int, ...]
    dtype: np.dtype
    nbytes: int
    # crc32 of the whole record, or None when unknown (ranged writes
    # invalidate it; verify-on-fetch only runs for whole-record reads)
    crc: Optional[int] = None


class _VerifiedRead:
    """Read handle that CRC-verifies the record bytes at wait time.

    Wraps the raw :class:`~repro.nvme.aio.IORequest`: a checksum mismatch
    (bit-flip in the transfer path, torn on-disk state) triggers bounded
    re-fetches with virtual backoff; persistent corruption escalates to
    :class:`~repro.faults.errors.FaultUnrecoverable` — never a silently
    wrong tensor.
    """

    __slots__ = ("_store", "_key", "_rec", "_out", "_req", "_verified")

    def __init__(
        self,
        store: "TensorStore",
        key: str,
        rec: _Record,
        out: np.ndarray,
        req: IORequest,
    ) -> None:
        self._store = store
        self._key = key
        self._rec = rec
        self._out = out
        self._req = req
        self._verified = False

    @property
    def kind(self) -> str:
        return "read"

    @property
    def nbytes(self) -> int:
        return self._req.nbytes

    def done(self) -> bool:
        return self._req.done()

    def wait(self) -> None:
        self._req.wait()
        if self._verified:
            return
        expected = self._rec.crc
        actual = _crc32(self._out)
        attempts = 0
        while actual != expected:
            if attempts >= self._store.refetch_retries:
                self._store._count_checksum(failure=True)
                raise FaultUnrecoverable(
                    f"persistent checksum mismatch reading {self._key!r}",
                    site="store.read",
                    kind="checksum",
                    key=self._key,
                    attempts=attempts,
                ) from ChecksumMismatch(
                    self._key,
                    expected=expected,
                    actual=actual,
                    attempts=attempts,
                )
            attempts += 1
            self._store._count_checksum(failure=False)
            trace_instant(
                "faults:checksum_refetch", cat="faults",
                key=self._key, attempt=attempts,
            )
            # re-fetch time is a stall owned by the fault site, not
            # ordinary I/O: the caller already paid for the first read
            with stall_span(
                "checksum_refetch", owner=self._key, attempt=attempts
            ):
                virtual_clock().advance(
                    self._store.engine.retry_policy.delay_us(attempts - 1)
                )
                self._store.engine.submit_read(
                    self._rec.path, self._out
                ).wait()
                actual = _crc32(self._out)
        self._verified = True


class TensorStore:
    """Named tensor swap space over a spool directory.

    Thread-safe for the engine's usage pattern (async writes racing with
    metadata reads).  Keys are arbitrary strings; slashes are escaped so
    parameter paths like ``"blocks.3.attn.qkv.weight"`` map to flat files.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        engine: Optional[AsyncIOEngine] = None,
        pool: Optional[PinnedBufferPool] = None,
        check=None,
        verify_checksums: bool = True,
        atomic_commits: bool = True,
        refetch_retries: int = 2,
        io_retries: int = 2,
        io_backoff_us: int = 200,
    ) -> None:
        if refetch_retries < 0:
            raise ValueError("refetch_retries must be >= 0")
        self._own_dir = directory is None
        self.directory = directory or tempfile.mkdtemp(prefix="repro-nvme-")
        os.makedirs(self.directory, exist_ok=True)
        self._own_engine = engine is None
        self.engine = engine or AsyncIOEngine(
            check=check, retries=io_retries, backoff_us=io_backoff_us
        )
        self.pool = pool
        self.verify_checksums = verify_checksums
        self.atomic_commits = atomic_commits
        self.refetch_retries = refetch_retries
        self.checksum_refetches = 0
        self.checksum_failures = 0
        self._records: dict[str, _Record] = {}
        self._tmp_seq = 0
        self._lock = threading.Lock()
        self._write_gates: dict[str, threading.Lock] = {}
        self._closed = False

    def _count_checksum(self, *, failure: bool) -> None:
        with self._lock:
            if failure:
                self.checksum_failures += 1
            else:
                self.checksum_refetches += 1
        name = (
            "faults.checksum_unrecoverable"
            if failure
            else "faults.checksum_refetch"
        )
        get_registry().counter(name).inc()

    def _write_gate(self, key: str) -> threading.Lock:
        with self._lock:
            gate = self._write_gates.get(key)
            if gate is None:
                gate = self._write_gates[key] = threading.Lock()
        return gate

    # --- paths ----------------------------------------------------------------
    def _path_for(self, key: str) -> str:
        safe = key.replace(os.sep, "__")
        return os.path.join(self.directory, safe + ".bin")

    # --- metadata ----------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._records)

    def nbytes(self, key: str) -> int:
        with self._lock:
            return self._records[key].nbytes

    def meta(self, key: str) -> tuple[tuple[int, ...], np.dtype, int]:
        """(shape, dtype, nbytes) of a stored tensor."""
        with self._lock:
            rec = self._records[key]
        return rec.shape, rec.dtype, rec.nbytes

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(r.nbytes for r in self._records.values())

    # --- write -------------------------------------------------------------------
    def write(self, key: str, array: np.ndarray) -> None:
        """Synchronously persist ``array`` under ``key`` (overwrites)."""
        self.write_async(key, array).wait()

    def write_async(self, key: str, array: np.ndarray) -> IORequest:
        """Begin persisting ``array``; caller must not mutate it until done.

        With ``atomic_commits`` (the default), bytes land in a temp spool
        file that is renamed onto the record's path once complete — a
        writer failure at any point leaves the previously committed bytes
        readable, and the record metadata rolls back with them.
        """
        arr = np.ascontiguousarray(array)
        path = self._path_for(key)
        rec = _Record(path, arr.shape, arr.dtype, int(arr.nbytes), _crc32(arr))
        # Atomic mode serializes the publish->write->rename window per key,
        # so racing overwrites can never leave the published metadata (and
        # its crc) describing a different writer's bytes than the rename
        # that won.  Non-atomic mode keeps the legacy last-write-wins race.
        gate = self._write_gate(key) if self.atomic_commits else None
        if gate is not None:
            gate.acquire()
        released = [gate is None]

        def _release() -> None:
            if not released[0]:
                released[0] = True
                gate.release()

        try:
            with self._lock:
                old = self._records.get(key)
                if (
                    not self.atomic_commits
                    and old is not None
                    and old.nbytes != rec.nbytes
                ):
                    # shrinkage must truncate, or stale tail bytes survive
                    with open(path, "wb"):
                        pass
                self._records[key] = rec
                self._tmp_seq += 1
                tmp_seq = self._tmp_seq
            scope = get_memscope()
            if scope.enabled:  # residency delta on the nvme tier
                category, owner = attribution_for_key(key)
                if old is not None:
                    scope.free(
                        "nvme", old.nbytes, category=category, owner=owner
                    )
                scope.alloc(
                    "nvme", rec.nbytes, category=category, owner=owner
                )
            if not self.atomic_commits:
                return self.engine.submit_write(path, arr)

            def rollback(_error: BaseException) -> None:
                # the rename never happened: the published file still holds
                # the old bytes, so the metadata must describe the old
                # record too
                with self._lock:
                    if self._records.get(key) is rec:
                        if old is not None:
                            self._records[key] = old
                        else:
                            self._records.pop(key, None)
                scope = get_memscope()
                if scope.enabled:
                    category, owner = attribution_for_key(key)
                    scope.free(
                        "nvme", rec.nbytes, category=category, owner=owner
                    )
                    if old is not None:
                        scope.alloc(
                            "nvme", old.nbytes, category=category, owner=owner
                        )
                get_registry().counter("faults.aborted_commits").inc()
                _release()

            return self.engine.submit_write(
                f"{path}.tmp{tmp_seq}",
                arr,
                commit_to=path,
                on_commit=_release,
                on_commit_error=rollback,
            )
        except BaseException:
            _release()
            raise

    # --- read ------------------------------------------------------------------
    def read(self, key: str, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Synchronously load ``key``; into ``out`` when provided."""
        out, req = self._start_read(key, out)
        req.wait()
        return out

    def read_async(
        self, key: str, out: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, IORequest]:
        """Begin loading ``key``; returns (target, handle)."""
        return self._start_read(key, out)

    def _start_read(
        self, key: str, out: Optional[np.ndarray]
    ) -> tuple[np.ndarray, IORequest]:
        with self._lock:
            try:
                rec = self._records[key]
            except KeyError as e:
                raise KeyError(f"tensor {key!r} not in store") from e
        if out is None:
            out = np.empty(rec.shape, dtype=rec.dtype)  # lint: allow-rawalloc
        else:
            if out.nbytes != rec.nbytes:
                raise ValueError(
                    f"target buffer holds {out.nbytes} bytes, record {key!r}"
                    f" holds {rec.nbytes}"
                )
            if out.dtype != rec.dtype:
                out = out.view(rec.dtype)
            if tuple(out.shape) != rec.shape:
                out = out.reshape(rec.shape)
        req: IORequest = self.engine.submit_read(rec.path, out)
        if self.verify_checksums and rec.crc is not None:
            req = _VerifiedRead(self, key, rec, out, req)
        return out, req

    # --- ranged access (chunked optimizer streaming) ---------------------------
    def read_range(
        self, key: str, start_numel: int, numel: int, out: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, IORequest]:
        """Begin reading ``numel`` elements of flat ``key`` from ``start_numel``.

        Returns ``(target, handle)``.  Used by the chunked NVMe optimizer
        step to stream state shards through bounded staging buffers.
        """
        with self._lock:
            rec = self._records[key]
        total = int(np.prod(rec.shape, dtype=np.int64))
        if start_numel < 0 or numel < 0 or start_numel + numel > total:
            raise ValueError(
                f"range [{start_numel}, {start_numel + numel}) out of bounds"
                f" for {key!r} with {total} elements"
            )
        if out is None:
            out = np.empty(numel, dtype=rec.dtype)  # lint: allow-rawalloc
        elif out.dtype != rec.dtype or out.size != numel:
            raise ValueError("range read target has wrong dtype or size")
        req = self.engine.submit_read(
            rec.path, out, file_offset=start_numel * rec.dtype.itemsize
        )
        return out, req

    def write_range(
        self, key: str, start_numel: int, array: np.ndarray
    ) -> IORequest:
        """Begin writing ``array`` into flat ``key`` at ``start_numel``."""
        with self._lock:
            rec = self._records[key]
        arr = np.ascontiguousarray(array, dtype=rec.dtype).reshape(-1)
        total = int(np.prod(rec.shape, dtype=np.int64))
        if start_numel < 0 or start_numel + arr.size > total:
            raise ValueError(
                f"range write [{start_numel}, {start_numel + arr.size}) out of"
                f" bounds for {key!r} with {total} elements"
            )
        self.invalidate_checksum(key)  # whole-record crc is now stale
        return self.engine.submit_write(
            rec.path, arr, file_offset=start_numel * rec.dtype.itemsize
        )

    def create(
        self, key: str, shape: tuple[int, ...], dtype: np.dtype
    ) -> None:
        """Register an empty record sized for ranged writes (no data I/O).

        Pre-sizes the backing file so ``write_range`` calls can land
        anywhere in it; the CRC starts unknown (ranged writers never
        maintain one).  The double-buffered optimizer pipeline uses this to
        open a shadow record beside the live one before streaming into it.
        """
        dt = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        numel = int(np.prod(shape, dtype=np.int64)) if shape else 1
        path = self._path_for(key)
        rec = _Record(path, shape, dt, numel * dt.itemsize, None)
        with open(path, "wb") as f:
            f.truncate(rec.nbytes)
        with self._lock:
            old = self._records.get(key)
            self._records[key] = rec
        scope = get_memscope()
        if scope.enabled:
            category, owner = attribution_for_key(key)
            if old is not None:
                scope.free("nvme", old.nbytes, category=category, owner=owner)
            scope.alloc("nvme", rec.nbytes, category=category, owner=owner)

    def promote(self, src_key: str, dst_key: str) -> None:
        """Atomically publish ``src_key``'s bytes as ``dst_key``.

        The commit half of a double-buffered update: the fully written
        shadow file is renamed over the primary's path (``os.replace``,
        atomic within the spool directory) and the metadata moves with it.
        No data I/O happens here and no state can be observed half-updated
        — before the rename the primary holds the old bytes, after it the
        new — which is what makes a transactional optimizer step
        replayable (docs/resilience.md).
        """
        with self._lock:
            try:
                src = self._records[src_key]
            except KeyError as e:
                raise KeyError(f"tensor {src_key!r} not in store") from e
        dst_path = self._path_for(dst_key)
        os.replace(src.path, dst_path)
        with self._lock:
            self._records.pop(src_key, None)
            old = self._records.get(dst_key)
            self._records[dst_key] = _Record(
                dst_path, src.shape, src.dtype, src.nbytes, src.crc
            )
        scope = get_memscope()
        if scope.enabled:
            category, owner = attribution_for_key(src_key)
            scope.free("nvme", src.nbytes, category=category, owner=owner)
            category, owner = attribution_for_key(dst_key)
            if old is not None:
                scope.free("nvme", old.nbytes, category=category, owner=owner)
            scope.alloc("nvme", src.nbytes, category=category, owner=owner)

    def invalidate_checksum(self, key: str) -> None:
        """Drop the whole-record CRC after an in-place ranged update.

        Ranged writers (the chunked optimizer stream) mutate the file
        without rewriting the whole record; until the next full write, a
        fetch of the key skips verification instead of failing on a CRC
        that no longer describes the bytes.
        """
        with self._lock:
            rec = self._records.get(key)
            if rec is not None and rec.crc is not None:
                self._records[key] = replace(rec, crc=None)

    # --- delete / lifecycle --------------------------------------------------------
    def delete(self, key: str) -> None:
        with self._lock:
            rec = self._records.pop(key, None)
        if rec is not None:
            scope = get_memscope()
            if scope.enabled:
                category, owner = attribution_for_key(key)
                scope.free("nvme", rec.nbytes, category=category, owner=owner)
            if os.path.exists(rec.path):
                os.remove(rec.path)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        scope = get_memscope()
        if scope.enabled:
            with self._lock:
                for key, rec in self._records.items():
                    category, owner = attribution_for_key(key)
                    scope.free("nvme", rec.nbytes, category=category, owner=owner)
        if self._own_engine:
            self.engine.close()
        else:
            self.engine.synchronize()
        if self._own_dir:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "TensorStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ChunkedSwapper:
    """Double-buffered streaming of a huge stored tensor through a transform.

    ``apply`` reads a 1-D stored tensor in fixed-size chunks, calls
    ``fn(chunk) -> chunk`` on each, and writes results back — never holding
    more than two chunks of staging memory (from the pinned pool when one is
    configured).  Read-ahead of chunk ``i+1`` is issued before ``fn`` runs on
    chunk ``i``, so I/O overlaps compute like the infinity engine's NVMe
    optimizer step.
    """

    def __init__(
        self,
        store: TensorStore,
        *,
        chunk_numel: int,
        pool: Optional[PinnedBufferPool] = None,
    ) -> None:
        if chunk_numel <= 0:
            raise ValueError("chunk_numel must be positive")
        self.store = store
        self.chunk_numel = chunk_numel
        self.pool = pool
        # pinned-pressure degradations: how many applies fell back from
        # pinned double-buffered read-ahead to sync unpinned staging
        self.sync_fallbacks = 0

    def _chunks(self, total: int) -> Iterator[tuple[int, int]]:
        off = 0
        while off < total:
            n = min(self.chunk_numel, total - off)
            yield off, n
            off += n

    def apply(self, key: str, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        """Stream ``key`` through ``fn`` chunk-by-chunk, in place on disk.

        Gracefully degrades under pinned pressure: if the pool cannot stage
        a chunk (budget exhausted, transiently or otherwise), the stream
        falls back to synchronous unpinned staging for the rest of the
        apply — read-ahead stops, one unpinned chunk lives at a time — so
        pinned exhaustion costs overlap, never the step.
        """
        with self.store._lock:
            rec = self.store._records[key]
        total = int(np.prod(rec.shape, dtype=np.int64))
        itemsize = rec.dtype.itemsize
        spans = list(self._chunks(total))
        if not spans:
            return
        self.store.invalidate_checksum(key)  # in-place ranged rewrites
        degraded = False

        def acquire(n: int):
            nonlocal degraded
            if self.pool is not None and not degraded:
                try:
                    buf = self.pool.acquire(n, rec.dtype)
                    return buf.array, buf
                except MemoryError:
                    # pinned pool exhausted: degrade async -> sync rather
                    # than fail the optimizer step
                    degraded = True
                    self.sync_fallbacks += 1
                    get_registry().counter("faults.sync_fallback").inc()
                    trace_instant(
                        "faults:sync_fallback", cat="faults", key=key
                    )
            return np.empty(n, dtype=rec.dtype), None  # lint: allow-rawalloc

        # Prime: issue read of chunk 0.
        pending_write: Optional[IORequest] = None
        cur_arr, cur_pin = acquire(spans[0][1])
        cur_req = self.store.engine.submit_read(
            rec.path, cur_arr, file_offset=spans[0][0] * itemsize
        )
        for i, (off, n) in enumerate(spans):
            # Read-ahead next chunk before computing on the current one
            # (skipped once degraded: sync mode reads when it computes).
            nxt = None
            if i + 1 < len(spans) and not degraded:
                noff, nn = spans[i + 1]
                nxt_arr, nxt_pin = acquire(nn)
                nxt_req = self.store.engine.submit_read(
                    rec.path, nxt_arr, file_offset=noff * itemsize
                )
                nxt = (nxt_arr, nxt_pin, nxt_req)
            # with read-ahead working this wait is ~0; its duration is the
            # unhidden optimizer I/O tail for the chunk
            with stall_span(
                "optimizer_io_tail",
                owner=f"{key}.chunk{i}",
                kind="read",
                req=getattr(cur_req, "token", None),
            ):
                cur_req.wait()
            result = np.ascontiguousarray(fn(cur_arr), dtype=rec.dtype)
            if result.size != n:
                raise ValueError(
                    f"chunk transform changed size: {n} -> {result.size}"
                )
            if pending_write is not None:
                pending_write.wait()  # bound in-flight writes to one
            pending_write = self.store.engine.submit_write(
                rec.path, result, file_offset=off * itemsize
            )
            with stall_span(
                "optimizer_io_tail",
                owner=f"{key}.chunk{i}",
                kind="write_tail",
                req=getattr(pending_write, "token", None),
            ):
                # result may be a temp; ensure durable before buffer reuse
                pending_write.wait()
            pending_write = None
            if cur_pin is not None:
                cur_pin.release()
            if nxt is not None:
                cur_arr, cur_pin, cur_req = nxt
            elif i + 1 < len(spans):
                noff, nn = spans[i + 1]
                cur_arr, cur_pin = acquire(nn)
                cur_req = self.store.engine.submit_read(
                    rec.path, cur_arr, file_offset=noff * itemsize
                )
        self.store.engine.synchronize()
