"""Asynchronous file I/O engine.

Mirrors DeepNVMe's interface (Sec. 6.3): bulk read/write requests complete
asynchronously and can be awaited individually (``IORequest.wait``) or
flushed together (``AsyncIOEngine.synchronize``).  Large requests are split
into sub-block operations executed across a thread pool — the Python analogue
of DeepNVMe's "aggressive parallelization of I/O requests", which is what
lets a single logical request saturate a multi-queue NVMe device.

Reads land directly in caller-provided buffers (no data copying), which is
how the pinned-buffer layer achieves its zero-copy staging.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext, suppress
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.check.runtime import CheckContext, get_checker
from repro.faults.retry import RetryPolicy, run_with_retries
from repro.faults.runtime import get_faults
from repro.obs.metrics import get_registry
from repro.obs.perfscope import stall_span
from repro.obs.tracer import trace_counter, trace_span
from repro.utils.units import MIB

#: process-wide request tokens: the happens-before edge label that ties an
#: ``nvme:submit_*`` span to its worker-lane blocks and to whichever stall
#: span later waited on the request (perfscope's critical-path extraction)
_REQ_TOKENS = itertools.count(1)


@dataclass
class IOStats:
    """Engine-lifetime counters."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_requests: int = 0
    write_requests: int = 0
    read_retries: int = 0
    write_retries: int = 0
    commits: int = 0
    failed_commits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add_read(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_read += nbytes
            self.read_requests += 1

    def add_write(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_written += nbytes
            self.write_requests += 1

    def add_retry(self, kind: str) -> None:
        with self._lock:
            if kind == "read":
                self.read_retries += 1
            else:
                self.write_retries += 1

    def add_commit(self, ok: bool) -> None:
        with self._lock:
            if ok:
                self.commits += 1
            else:
                self.failed_commits += 1


class IORequest:
    """Handle for an in-flight bulk read or write."""

    def __init__(
        self, futures: list[Future], kind: str, nbytes: int, token: int = -1
    ) -> None:
        self._futures = futures
        self.kind = kind
        self.nbytes = nbytes
        self.token = token  # perfscope happens-before edge label
        self._observed = False
        self._races = None  # AioRaceDetector watching this request, if any

    def done(self) -> bool:
        return all(f.done() for f in self._futures)

    def wait(self) -> None:
        """Block until the request completes; re-raises worker exceptions.

        A failure is re-raised on every explicit ``wait`` but reported only
        once through ``AsyncIOEngine.synchronize`` — an error already seen
        by the caller does not poison engine shutdown.
        """
        self._observed = True
        if self._races is not None:
            # the join edge: this request is now ordered before the caller
            self._races.on_wait(id(self))
        for f in self._futures:
            f.result()


class AsyncIOEngine:
    """Thread-pool async read/write over ordinary files.

    Parameters
    ----------
    num_threads:
        Worker threads — the analogue of NVMe queue pairs.
    block_bytes:
        Requests larger than this are split into parallel sub-operations.
    retries:
        Bounded per-block retry budget on ``OSError`` (transient device
        faults); backoff advances the deterministic virtual clock, never
        the wall clock.
    backoff_us:
        Base virtual backoff before the first retry (doubles per retry).
    """

    def __init__(
        self,
        *,
        num_threads: int = 4,
        block_bytes: int = 8 * MIB,
        check: CheckContext | None = None,
        retries: int = 2,
        backoff_us: int = 200,
    ) -> None:
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.num_threads = num_threads
        self.block_bytes = block_bytes
        self.retry_policy = RetryPolicy(attempts=retries, backoff_us=backoff_us)
        self._check = check if check is not None else get_checker()
        self._pool = ThreadPoolExecutor(
            max_workers=num_threads, thread_name_prefix="repro-aio"
        )
        self._inflight: list[IORequest] = []
        self._lock = threading.Lock()
        self.stats = IOStats()
        self._closed = False
        # Cached instrument handles: queue depth (in-flight requests) and
        # submit-to-completion latency per direction, registry-global so
        # every engine in the process aggregates into one view.
        registry = get_registry()
        self._m_depth = registry.gauge("nvme.queue_depth")
        self._m_latency = {
            "read": registry.histogram("nvme.read_us"),
            "write": registry.histogram("nvme.write_us"),
        }
        self._m_s2c = registry.histogram("aio.submit_to_complete_us")

    # --- internal block ops ------------------------------------------------------
    @staticmethod
    def _pwrite(path: str, data: memoryview, offset: int) -> None:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            written = 0
            while written < len(data):
                written += os.pwrite(fd, data[written:], offset + written)
        finally:
            os.close(fd)

    @staticmethod
    def _pread(path: str, out: memoryview, offset: int) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            got = 0
            while got < len(out):
                chunk = os.pread(fd, len(out) - got, offset + got)
                if not chunk:
                    raise IOError(
                        f"short read from {path} at offset {offset + got}:"
                        f" wanted {len(out) - got} more bytes"
                    )
                out[got : got + len(chunk)] = chunk
                got += len(chunk)
        finally:
            os.close(fd)

    def _split(self, nbytes: int) -> list[tuple[int, int]]:
        """(offset, length) sub-blocks covering [0, nbytes)."""
        blocks = []
        off = 0
        while off < nbytes:
            length = min(self.block_bytes, nbytes - off)
            blocks.append((off, length))
            off += length
        return blocks or [(0, 0)]

    def _track(self, req: IORequest) -> IORequest:
        with self._lock:
            self._inflight = [r for r in self._inflight if not r.done()]
            self._inflight.append(req)
        self._watch_completion(req)
        return req

    def _watch_completion(self, req: IORequest) -> None:
        """Meter queue depth and submit-to-completion latency.

        The gauge rises on submit and falls when the *last* sub-block
        future completes, so its high-water mark is the realized queue
        depth; the histograms record whole-request submit-to-completion
        latency in µs (per direction, plus the combined
        ``aio.submit_to_complete_us`` feeding perfscope's nvme_io view).
        A Chrome counter track (``aio.inflight``) samples the depth at
        both edges so Perfetto shows the realized queue next to the span
        lanes.
        """
        self._m_depth.add(1)
        trace_counter("aio.inflight", cat="nvme", depth=self._m_depth.value)
        t0 = time.perf_counter_ns()
        remaining = [len(req._futures)]
        lock = threading.Lock()

        def _done(_f: Future) -> None:
            with lock:
                remaining[0] -= 1
                if remaining[0]:
                    return
            self._m_depth.add(-1)
            trace_counter(
                "aio.inflight", cat="nvme", depth=self._m_depth.value
            )
            lat_us = (time.perf_counter_ns() - t0) / 1e3
            self._m_latency[req.kind].observe(lat_us)
            self._m_s2c.observe(lat_us)

        for f in req._futures:
            f.add_done_callback(_done)

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("AsyncIOEngine is closed")

    def _watch_races(
        self, req: IORequest, buffer: np.ndarray, path: str, file_offset: int
    ) -> IORequest:
        """Hand the request to the race detector (no-op when disabled)."""
        ck = self._check
        if ck is not None and ck.races is not None:
            races = ck.races
            kwargs = dict(
                path=path,
                file_lo=file_offset,
                file_hi=file_offset + req.nbytes,
                done=req.done,
            )
            if req.kind == "read":
                races.on_submit_read(id(req), buffer, **kwargs)
            else:
                races.on_submit_write(id(req), buffer, **kwargs)
            req._races = races
        return req

    # --- public API ----------------------------------------------------------
    def submit_write(
        self,
        path: str,
        array: np.ndarray,
        *,
        file_offset: int = 0,
        commit_to: str | None = None,
        on_commit: Callable[[], None] | None = None,
        on_commit_error: Callable[[BaseException], None] | None = None,
    ) -> IORequest:
        """Begin writing ``array``'s bytes to ``path`` at ``file_offset``.

        The caller must not mutate ``array`` until the request completes —
        the same contract as real asynchronous I/O on pinned buffers.

        With ``commit_to``, ``path`` is treated as a temporary spool file
        that is atomically renamed onto ``commit_to`` once every block has
        landed — a reader of ``commit_to`` sees the old bytes or the new
        bytes, never a torn mix.  A failed commit unlinks the temp file and
        surfaces through the request handle like any block failure;
        ``on_commit``/``on_commit_error`` let the owner (TensorStore)
        publish or roll back record metadata at the commit point.
        """
        self._require_open()
        data = np.ascontiguousarray(array)
        view = memoryview(data).cast("B")
        token = next(_REQ_TOKENS)
        with trace_span("nvme:submit_write", cat="nvme", bytes=len(view), req=token):
            # Pre-size the file so parallel pwrites of disjoint ranges are safe.
            end = file_offset + len(view)
            fd = os.open(path, os.O_WRONLY | os.O_CREAT, 0o644)
            try:
                if os.fstat(fd).st_size < end:
                    os.ftruncate(fd, end)
            finally:
                os.close(fd)
            futures = [
                self._pool.submit(
                    self._pwrite_block, path, view[o : o + n], file_offset + o,
                    token,
                )
                for o, n in self._split(len(view))
            ]
            if commit_to is not None:
                futures = futures + [
                    self._arm_commit(futures, path, commit_to,
                                     on_commit, on_commit_error)
                ]
            self.stats.add_write(len(view))
            req = self._track(IORequest(futures, "write", len(view), token))
            return self._watch_races(req, data, path, file_offset)

    def _arm_commit(
        self,
        block_futures: list[Future],
        tmp_path: str,
        final_path: str,
        on_commit: Callable[[], None] | None,
        on_commit_error: Callable[[BaseException], None] | None,
    ) -> Future:
        """Future resolving when ``tmp_path`` has been renamed onto
        ``final_path`` (or failing with the reason the commit did not run).

        The rename fires from the *last* block's completion callback — on
        a worker thread, never as a pool task — so a full thread pool can
        never deadlock a commit behind its own blocks.
        """
        commit: Future = Future()
        remaining = [len(block_futures)]
        lock = threading.Lock()

        def _finish(_f: Future) -> None:
            with lock:
                remaining[0] -= 1
                if remaining[0]:
                    return
            try:
                for f in block_futures:
                    f.result()  # a failed block aborts the commit
                fp = get_faults()
                if fp is not None:
                    # the torn-write site: an injected crash lands between
                    # flush and rename, exactly the window atomic commits
                    # close — the published record stays the old bytes
                    fp.on_event("store.commit", key=final_path)
                os.replace(tmp_path, final_path)
            except BaseException as e:  # noqa: BLE001 - resolved into future
                self.stats.add_commit(False)
                with suppress(OSError):
                    os.unlink(tmp_path)
                if on_commit_error is not None:
                    on_commit_error(e)
                commit.set_exception(e)
            else:
                self.stats.add_commit(True)
                if on_commit is not None:
                    on_commit()
                commit.set_result(None)

        for f in block_futures:
            f.add_done_callback(_finish)
        return commit

    def _pwrite_block(
        self, path: str, data: memoryview, offset: int, token: int = -1
    ) -> None:
        """One sub-block write on a worker thread, span on its own lane.

        Retries transient ``OSError`` failures up to the engine's policy;
        pwrite at an absolute offset is idempotent, so a retry after a
        partial write simply rewrites the block.  Re-attempts run inside a
        ``stall:retry`` span so the recovery time is attributed to the
        fault site instead of blending into ordinary I/O.
        """
        with trace_span("nvme:pwrite", cat="nvme", bytes=len(data), req=token):
            tries = [0]

            def attempt() -> None:
                ctx = (
                    stall_span("retry", owner=path, kind="write", req=token)
                    if tries[0]
                    else nullcontext()
                )
                tries[0] += 1
                with ctx:
                    fp = get_faults()
                    if fp is not None:
                        fp.on_event("aio.write", key=path, nbytes=len(data))
                    self._pwrite(path, data, offset)

            run_with_retries(
                "aio.write", attempt, policy=self.retry_policy, key=path,
                on_retry=lambda: self.stats.add_retry("write"),
            )

    def _pread_block(
        self, path: str, out: memoryview, offset: int, token: int = -1
    ) -> None:
        """One sub-block read on a worker thread, span on its own lane.

        Retries like :meth:`_pwrite_block` (re-attempts inside a
        ``stall:retry`` span).  The bit-flip corruption hook runs *after*
        a successful read — modeling a transfer-path flip the checksum
        layer (TensorStore verify-on-fetch) must catch, since no amount of
        device-level retrying can observe it here.
        """
        with trace_span("nvme:pread", cat="nvme", bytes=len(out), req=token):
            tries = [0]

            def attempt() -> None:
                ctx = (
                    stall_span("retry", owner=path, kind="read", req=token)
                    if tries[0]
                    else nullcontext()
                )
                tries[0] += 1
                with ctx:
                    fp = get_faults()
                    if fp is not None:
                        fp.on_event("aio.read", key=path, nbytes=len(out))
                    self._pread(path, out, offset)

            run_with_retries(
                "aio.read", attempt, policy=self.retry_policy, key=path,
                on_retry=lambda: self.stats.add_retry("read"),
            )
            fp = get_faults()
            if fp is not None:
                fp.corrupt("aio.read", out, key=path)

    def submit_read(
        self, path: str, out: np.ndarray, *, file_offset: int = 0
    ) -> IORequest:
        """Begin filling ``out`` (contiguous) from ``path`` at ``file_offset``."""
        self._require_open()
        if not out.flags["C_CONTIGUOUS"]:
            raise ValueError("read target must be C-contiguous (pinned buffer)")
        view = memoryview(out).cast("B")
        token = next(_REQ_TOKENS)
        with trace_span("nvme:submit_read", cat="nvme", bytes=len(view), req=token):
            futures = [
                self._pool.submit(
                    self._pread_block, path, view[o : o + n], file_offset + o,
                    token,
                )
                for o, n in self._split(len(view))
            ]
            self.stats.add_read(len(view))
            req = self._track(IORequest(futures, "read", len(view), token))
            return self._watch_races(req, out, path, file_offset)

    def write(self, path: str, array: np.ndarray, *, file_offset: int = 0) -> None:
        """Synchronous write (submit + wait)."""
        self.submit_write(path, array, file_offset=file_offset).wait()

    def read(self, path: str, out: np.ndarray, *, file_offset: int = 0) -> None:
        """Synchronous read (submit + wait)."""
        self.submit_read(path, out, file_offset=file_offset).wait()

    def synchronize(self) -> None:
        """Block until every in-flight request has completed.

        Re-raises the first failure among requests the caller has not
        already observed via ``IORequest.wait``.
        """
        with self._lock:
            pending = list(self._inflight)
            self._inflight.clear()
        first_error: Exception | None = None
        for req in pending:
            already_seen = req._observed
            try:
                req.wait()
            except Exception as e:  # noqa: BLE001 - re-raised below
                if not already_seen and first_error is None:
                    first_error = e
        if first_error is not None:
            raise first_error

    def close(self) -> None:
        if not self._closed:
            self.synchronize()
            self._pool.shutdown(wait=True)
            self._closed = True

    def __enter__(self) -> "AsyncIOEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
