"""Pinned memory management layer.

Sec. 6.3: "pinned memory buffers are scarce system resources, and their
oversubscription ... can degrade overall system performance"; the layer
"manages the limited supply of pinned memory by reusing a small amount (tens
of GBs) for offloading the entire model states (up to tens of TBs)".

:class:`PinnedBufferPool` enforces a hard byte budget, satisfies acquisitions
from a free list of previously returned buffers (reuse prevents the CPU
fragmentation the paper warns about), and hands out buffers that support
in-place compute so tensors "can then be written to NVMe without any further
copies".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.check.runtime import CheckContext, get_checker
from repro.check.static.record import get_static_recorder
from repro.faults.runtime import get_faults
from repro.obs.memscope import mem_alloc, mem_free
from repro.obs.metrics import get_registry
from repro.obs.perfscope import stall_span
from repro.obs.tracer import trace_counter


class PinnedBudgetExceeded(MemoryError):
    """Acquisition would push live pinned bytes past the pool budget."""


@dataclass
class _PoolStats:
    acquisitions: int = 0
    reuse_hits: int = 0
    peak_bytes: int = 0


class PinnedBuffer:
    """A borrowed staging buffer; return it with :meth:`release`.

    ``array`` is a view of exactly the requested element count over a
    possibly larger underlying allocation (so differently-sized requests can
    reuse the same storage).
    """

    __slots__ = ("array", "_storage", "_pool", "_released")

    def __init__(self, storage: np.ndarray, numel: int, dtype, pool) -> None:
        self._storage = storage
        self.array = storage.view(dtype)[:numel]
        self._pool = pool
        self._released = False

    @property
    def nbytes(self) -> int:
        return int(self._storage.nbytes)

    def release(self) -> None:
        if self._released:
            raise RuntimeError("pinned buffer released twice")
        self._released = True
        self._pool._give_back(self._storage)

    def __enter__(self) -> "PinnedBuffer":
        return self

    def __exit__(self, *exc) -> None:
        if not self._released:
            self.release()


class PinnedBufferPool:
    """A bounded, reusing pool of byte-addressed staging buffers.

    Buffers are stored as raw uint8 arrays and viewed at the requested dtype
    on acquisition.  ``budget_bytes`` caps the *total* live + cached bytes;
    cached (free) buffers are evicted smallest-first when a new allocation
    needs headroom.
    """

    def __init__(
        self,
        budget_bytes: int,
        *,
        alignment: int = 4096,
        check: CheckContext | None = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self.budget_bytes = budget_bytes
        self.alignment = alignment
        self._check = check if check is not None else get_checker()
        self._free: list[np.ndarray] = []  # sorted by nbytes ascending
        self._live_bytes = 0
        self._cached_bytes = 0
        self._lock = threading.Lock()
        self.stats = _PoolStats()
        # Registry gauge: pool occupancy (live + cached), whose high-water
        # mark is the "how close did we come to the pinned budget" signal.
        self._m_occupancy = get_registry().gauge("nvme.pinned_pool_bytes")

    # --- accounting --------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def cached_bytes(self) -> int:
        return self._cached_bytes

    def _round(self, nbytes: int) -> int:
        a = self.alignment
        return ((nbytes + a - 1) // a) * a

    # --- acquire / release -----------------------------------------------------
    def acquire(self, numel: int, dtype=np.float32) -> PinnedBuffer:
        """Borrow a buffer holding ``numel`` items of ``dtype``.

        Raises :class:`PinnedBudgetExceeded` when the request cannot fit in
        the budget even after evicting every cached buffer — the signal that
        a caller is trying to stage more than the pinned layer allows and
        should instead stream in chunks (see ChunkedSwapper).
        """
        rec = get_static_recorder()
        if rec is None:
            return self._acquire(numel, dtype)
        # schedule extraction: the pool lock is a named critical section;
        # the static verifier proves no rendezvous happens inside it
        rec.on_lock_acquire("pinned-pool")
        try:
            return self._acquire(numel, dtype)
        finally:
            rec.on_lock_release("pinned-pool")

    def _acquire(self, numel: int, dtype=np.float32) -> PinnedBuffer:
        want = self._round(int(numel) * np.dtype(dtype).itemsize)
        fp = get_faults()
        with self._lock:
            # Best-fit reuse: smallest cached buffer large enough.  The
            # cached->live transfer is a reservation: anything that fails
            # after it (injected exhaustion standing in for a pinned-map
            # failure) must put it back or the budget drifts.
            for i, buf in enumerate(self._free):
                if buf.nbytes >= want:
                    self._free.pop(i)
                    self._cached_bytes -= buf.nbytes
                    self._live_bytes += buf.nbytes
                    try:
                        if fp is not None:
                            fp.on_event("pool.acquire", nbytes=want)
                        handed = PinnedBuffer(buf, numel, dtype, self)
                    except BaseException:
                        self._live_bytes -= buf.nbytes
                        self._cached_bytes += buf.nbytes
                        self._insert_free(buf)
                        raise
                    self.stats.acquisitions += 1
                    self.stats.reuse_hits += 1
                    self.stats.peak_bytes = max(
                        self.stats.peak_bytes, self._live_bytes + self._cached_bytes
                    )
                    occ = self._live_bytes + self._cached_bytes
                    self._m_occupancy.set(occ)
                    trace_counter(
                        "nvme.pinned_pool_bytes",
                        cat="nvme",
                        live=self._live_bytes,
                        total=occ,
                    )
                    return handed
            # Evict cached buffers (smallest first) until the new allocation
            # fits.  Needing to evict means the budget is the bottleneck: the
            # wait is attributed to the pool as a pinned_wait stall.
            if (
                self._live_bytes + self._cached_bytes + want > self.budget_bytes
                and self._free
            ):
                with stall_span("pinned_wait", owner="pool", want=want):
                    while (
                        self._live_bytes + self._cached_bytes + want
                        > self.budget_bytes
                        and self._free
                    ):
                        evicted = self._free.pop(0)
                        self._cached_bytes -= evicted.nbytes
                        mem_free(
                            "pinned",
                            evicted.nbytes,
                            category="pinned",
                            owner="pool",
                        )
            if self._live_bytes + want > self.budget_bytes:
                raise PinnedBudgetExceeded(
                    f"request for {want} bytes exceeds pinned budget"
                    f" ({self._live_bytes} live of {self.budget_bytes})"
                )
            # Reserve first, then allocate under a rollback guard: a raise
            # from the allocation (real MemoryError or injected fault) must
            # not leak the reserved bytes.
            self._live_bytes += want
            try:
                if fp is not None:
                    fp.on_event("pool.acquire", nbytes=want)
                storage = np.empty(want, dtype=np.uint8)  # lint: allow-rawalloc
                mem_alloc("pinned", want, category="pinned", owner="pool")
            except BaseException:
                self._live_bytes -= want
                raise
            self.stats.acquisitions += 1
            self.stats.peak_bytes = max(
                self.stats.peak_bytes, self._live_bytes + self._cached_bytes
            )
            occ = self._live_bytes + self._cached_bytes
            self._m_occupancy.set(occ)
            trace_counter(
                "nvme.pinned_pool_bytes", cat="nvme", live=self._live_bytes, total=occ
            )
            return PinnedBuffer(storage, numel, dtype, self)

    def _insert_free(self, storage: np.ndarray) -> None:
        """Sorted (ascending nbytes) insert into the free list; lock held."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].nbytes < storage.nbytes:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, storage)

    def _give_back(self, storage: np.ndarray) -> None:
        ck = self._check
        if ck is not None and ck.races is not None:
            # a buffer returning to the pool becomes eligible for reuse;
            # in-flight I/O still targeting it is a use-after-free race
            ck.races.on_buffer_release(storage)
        with self._lock:
            self._live_bytes -= storage.nbytes
            self._cached_bytes += storage.nbytes
            self._insert_free(storage)

    def drain(self) -> None:
        """Drop all cached buffers (frees their memory)."""
        with self._lock:
            if self._cached_bytes:
                mem_free(
                    "pinned", self._cached_bytes, category="pinned", owner="pool"
                )
            self._free.clear()
            self._cached_bytes = 0
            self._m_occupancy.set(self._live_bytes)
            trace_counter(
                "nvme.pinned_pool_bytes",
                cat="nvme",
                live=self._live_bytes,
                total=self._live_bytes,
            )
