"""Command-line interface.

Subcommands mirror the questions the paper answers:

* ``repro scale``      — max trainable model size per strategy on a cluster;
* ``repro throughput`` — simulated step time / TFLOPs for a Table 1 workload;
* ``repro memory``     — the Sec. 3 memory profile of a model configuration;
* ``repro efficiency`` — required bandwidths from the Sec. 4 model;
* ``repro train-demo`` — a short functional training run with full NVMe
  offload on simulated ranks (proof the whole stack works on this machine);
* ``repro memreport``   — the same run profiled by :mod:`repro.obs.memscope`:
  per-tier watermarks with owner attribution, drift against the Sec. 3
  analytic model, and tuning recommendations.

``train-demo`` and ``throughput`` accept ``--trace out.json``: the run (or
simulated timeline) is exported as Chrome trace-event JSON, ready to open
at https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.utils import Table, format_bytes, format_count


def _cmd_scale(args) -> int:
    from repro.core.config import Strategy
    from repro.core.scale import max_model_size
    from repro.hardware import dgx2_cluster

    cluster = dgx2_cluster(args.nodes)
    strategies = (
        [Strategy(args.strategy)] if args.strategy else list(Strategy)
    )
    t = Table(
        ["strategy", "max params", "hidden", "layers", "limited by"],
        title=f"Max model size on {args.nodes} DGX-2 node(s)"
        f" ({cluster.num_gpus} GPUs)",
    )
    for s in strategies:
        kw = {}
        if s is Strategy.THREED:
            kw["mp_degree"] = args.mp
        if s in (Strategy.ZERO_INF_CPU, Strategy.ZERO_INF_NVME):
            kw["tile_factor"] = args.tile_factor
        r = max_model_size(s, cluster, bsz_per_gpu=args.batch, **kw)
        t.add_row(
            [
                str(s),
                format_count(r.max_params),
                r.hidden_dim,
                r.num_layers,
                r.limiting_factor,
            ]
        )
    print(t.render())
    return 0


def _cmd_throughput(args) -> int:
    from repro.analytics.model_zoo import TABLE1_CONFIGS
    from repro.hardware import dgx2_cluster
    from repro.sim import SimWorkload, StepSimulator
    from repro.sim.step_model import policy_from_config

    if args.config not in TABLE1_CONFIGS:
        print(
            f"unknown config {args.config!r}; choose from:"
            f" {', '.join(sorted(TABLE1_CONFIGS))}",
            file=sys.stderr,
        )
        return 2
    cfg = TABLE1_CONFIGS[args.config]
    nodes = args.nodes or cfg.num_nodes
    wl = SimWorkload.from_config(cfg, grad_accumulation_steps=args.accum)
    b = StepSimulator(dgx2_cluster(nodes), wl, policy_from_config(cfg)).simulate()
    t = Table(["quantity", "value"], title=f"Simulated step: {args.config} on {nodes} node(s)")
    t.add_row(["parameters", format_count(cfg.params)])
    t.add_row(["placement", f"params:{cfg.param_device} optimizer:{cfg.optimizer_device}"])
    t.add_row(["grad accumulation", args.accum])
    t.add_row(["step time", f"{b.total_time:.1f} s"])
    t.add_row(["TFLOPs/GPU", f"{b.tflops_per_gpu:.1f}"])
    t.add_row(["compute stream busy", f"{b.compute_time:.1f} s"])
    t.add_row(["GPU-GPU stream busy", f"{b.gg_time:.1f} s"])
    t.add_row(["PCIe stream busy", f"{b.cg_time:.1f} s"])
    t.add_row(["NVMe stream busy", f"{b.nc_time:.1f} s"])
    t.add_row(["CPU (optimizer) busy", f"{b.cpu_time:.1f} s"])
    print(t.render())
    if args.gantt:
        from repro.sim import render_gantt

        print("\n" + render_gantt(b.result))
    if args.trace:
        from repro.obs import write_sim_trace

        n = write_sim_trace(args.trace, b.result)
        print(f"wrote {n} timeline events to {args.trace} (open in Perfetto)")
    if args.backend:
        from repro.workloads import CalibSpec, run_mp_training, run_training

        spec = CalibSpec(world=args.calib_world, steps=3)
        if args.backend == "mp":
            run, _ = run_mp_training(spec)
        else:
            run = run_training(spec)
        t = Table(
            ["quantity", "value"],
            title=f"Functional calibration ({args.backend} backend,"
            f" world {spec.world})",
        )
        t.add_row(["measured steps/s", f"{run.steps_per_s:.2f}"])
        t.add_row(["final loss", f"{run.losses[-1][0]:.4f}"])
        t.add_row(["comm bytes", format_bytes(sum(run.comm_bytes_by_op.values()))])
        if run.transport:
            t.add_row(
                ["shm exchange", format_bytes(int(run.transport["exchange_bytes"]))]
            )
        print(t.render())
    return 0


def _cmd_memory(args) -> int:
    from repro.analytics import memory_requirements

    req = memory_requirements(
        num_layers=args.layers,
        hidden_dim=args.hidden,
        attn_heads=args.heads,
        bsz_per_node=args.batch * 16,
        bsz_per_gpu=args.batch,
        seq=args.seq,
        ci=args.ci,
    )
    t = Table(
        ["quantity", "value"],
        title=f"Sec. 3 memory profile: nl={args.layers} hd={args.hidden}",
    )
    t.add_row(["parameters (Eq. 1)", format_count(req.params)])
    t.add_row(["model states (Eq. 2)", format_bytes(req.model_states)])
    t.add_row(["activation ckpts/node (Eq. 3)", format_bytes(req.activation_checkpoints)])
    t.add_row(["full activations/node", format_bytes(req.full_activations)])
    t.add_row(["MSWM per GPU (Eq. 4)", format_bytes(req.mswm)])
    t.add_row(["AWM per GPU (Eq. 5)", format_bytes(req.awm)])
    print(t.render())
    return 0


def _cmd_efficiency(args) -> int:
    from repro.analytics import (
        ait_activation_checkpoints,
        ait_optimizer_states,
        ait_param_grad,
        required_bandwidth,
    )

    streams = {
        "params": ait_param_grad(seq=args.seq, bsz=args.batch),
        "optimizer": ait_optimizer_states(seq=args.seq, bsz=args.batch),
        "activations": ait_activation_checkpoints(hidden_dim=args.hidden, ci=args.ci),
    }
    t = Table(
        ["data stream", "AIT (flop/byte)", f"bw for {args.target:.0%}"],
        title=f"Sec. 4 bandwidth requirements (seq={args.seq}, bsz={args.batch})",
    )
    for name, ait in streams.items():
        bw = required_bandwidth(ait=ait, target_efficiency=args.target)
        t.add_row([name, f"{ait:.0f}", format_bytes(int(bw)) + "/s"])
    print(t.render())
    return 0


def _cmd_plan(args) -> int:
    from repro.core.autotune import recommend_config
    from repro.hardware import dgx2_cluster

    params = int(float(args.params.rstrip("BT")) * (1e12 if args.params.endswith("T") else 1e9))
    cluster = dgx2_cluster(args.nodes)
    try:
        plan = recommend_config(
            cluster,
            params,
            bsz_per_gpu=args.batch,
            hidden_dim=args.hidden,
        )
    except ValueError as e:
        print(f"does not fit: {e}", file=sys.stderr)
        return 1
    t = Table(
        ["decision", "value"],
        title=f"Placement plan: {format_count(params)} params on"
        f" {args.nodes} DGX-2 node(s)",
    )
    t.add_row(["model shape", f"nl={plan.num_layers} hd={plan.hidden_dim}"])
    t.add_row(["fp16 params+grads", str(plan.param_device)])
    t.add_row(["optimizer states", str(plan.optimizer_device)])
    t.add_row(["activation ckpts", str(plan.activation_device)])
    t.add_row(["tiling factor", plan.tile_factor])
    t.add_row(["min batch/GPU for 50% eff.", plan.min_batch_per_gpu])
    t.add_row(["expected TFLOPs/GPU", f"{plan.expected_tflops_per_gpu:.1f}"])
    print(t.render())
    for note in plan.notes:
        print(f"  note: {note}")
    return 0


def _cmd_train_demo(args) -> int:
    if getattr(args, "backend", "loop") == "mp":
        return _train_demo_mp(args)
    return _train_demo_body(args)


def _train_demo_mp(args) -> int:
    """Process-parallel train-demo: one forked process per rank.

    Every rank runs the full demo body (replicated state, rank-local
    compute); non-rank-0 stdout is discarded so the output reads like the
    loop run.  Per-rank tracer shards are merged into one multi-process
    Chrome trace by the parent.
    """
    import contextlib
    import os

    from repro.comm import run_multiproc

    perfreport = getattr(args, "perfreport", False)
    want_trace = bool(args.trace or perfreport)

    def worker(backend) -> int:
        if backend.rank != 0:
            with open(os.devnull, "w") as sink:
                with contextlib.redirect_stdout(sink):
                    return _train_demo_body(args, comm_backend=backend)
        return _train_demo_body(args, comm_backend=backend)

    want_live = getattr(args, "live", False)
    postmortem = getattr(args, "postmortem", None)
    live_cfg = None
    on_view = None
    if want_live or postmortem:
        from repro.obs.live import LiveConfig, render_dashboard

        live_cfg = LiveConfig(postmortem_dir=postmortem, dashboard=want_live)
        if want_live:

            def on_view(view) -> None:
                print(render_dashboard(view))

    out = run_multiproc(
        args.world, worker, trace=want_trace, live=live_cfg, on_view=on_view
    )
    if args.trace and out.shards is not None:
        from repro.obs import write_merged_chrome_trace

        n = write_merged_chrome_trace(args.trace, out.shards)
        print(
            f"wrote {n} spans from {len(out.shards)} rank processes to"
            f" {args.trace} (open in Perfetto)"
        )
    return max(out.results)


def _train_demo_body(args, comm_backend=None) -> int:
    import contextlib

    from repro.core import OffloadConfig, OffloadDevice, ZeroConfig, ZeroInfinityEngine
    from repro.nn import GPTModel, TransformerConfig
    from repro.utils.rng import seeded_rng
    from repro.workloads import (
        ConstantSchedule,
        MarkovCorpus,
        Trainer,
        TrainerConfig,
        per_rank_batches,
    )

    perfreport = getattr(args, "perfreport", False)
    distributed = comm_backend is not None
    if (args.trace or perfreport) and not distributed:
        # perfreport post-processes spans, so it implies an enabled tracer
        from repro.obs import use_tracer

        trace_ctx = use_tracer()
    else:
        # mp rank processes run under the launcher-installed tracer; the
        # parent merges the per-rank shards into one Chrome trace
        trace_ctx = contextlib.nullcontext()
    memreport = getattr(args, "memreport", False)
    if memreport:
        from repro.obs import use_memscope

        scope_ctx = use_memscope()
    else:
        scope_ctx = contextlib.nullcontext()
    if getattr(args, "faults", None):
        from repro.faults import use_faults

        faults_ctx = use_faults(args.faults, seed=args.faults_seed)
    else:
        faults_ctx = contextlib.nullcontext()
    live_ctx = contextlib.nullcontext()
    flight_ctx = contextlib.nullcontext()
    want_live = getattr(args, "live", False)
    postmortem = getattr(args, "postmortem", None)
    if (want_live or postmortem) and not distributed:
        # mp workers get their plane from the launcher; the loop backend
        # hosts the aggregator (and dashboard) right here
        from repro.obs.flightrec import FlightRecorder, use_flightrec
        from repro.obs.live import LiveConfig, LivePlane, use_live

        live_cfg = LiveConfig(
            dashboard=want_live,
            refresh_steps=max(args.steps // 5, 1),
            postmortem_dir=postmortem,
        )
        recorder = FlightRecorder(capacity=live_cfg.flight_capacity)
        flight_ctx = use_flightrec(recorder)
        live_ctx = use_live(
            LivePlane(world=args.world, config=live_cfg, recorder=recorder)
        )

    model_cfg = TransformerConfig(
        num_layers=2,
        hidden_dim=args.hidden,
        num_heads=4,
        vocab_size=128,
        max_seq=16,
        activation_checkpointing=True,
    )
    dev = OffloadDevice(args.offload)
    check_cfg = None
    if args.check:
        from repro.check import CheckConfig

        # record mode: collect violations and summarize after the run
        check_cfg = CheckConfig.from_spec(args.check, mode="record")
    zero_cfg = ZeroConfig(
        world_size=args.world,
        offload=OffloadConfig(
            param_device=dev, grad_device=dev, optimizer_device=dev
        ),
        loss_scale=1.0,
        **({"check": check_cfg} if check_cfg is not None else {}),
    )
    with trace_ctx as tracer, scope_ctx as scope, faults_ctx as plane, flight_ctx, live_ctx, ZeroInfinityEngine(
        zero_cfg,
        model_factory=lambda: GPTModel(model_cfg, rng=seeded_rng(0)),
        lr=5e-3,
        comm_backend=comm_backend,
    ) as engine:
        if tracer is None and (args.trace or perfreport):
            from repro.obs import get_tracer

            tracer = get_tracer()
        data = per_rank_batches(
            MarkovCorpus(128, seed=1),
            world_size=args.world,
            bsz_per_rank=2,
            seq=16,
            seed=2,
        )
        hist = Trainer(
            engine,
            data,
            TrainerConfig(total_steps=args.steps, log_every=max(args.steps // 5, 1)),
            schedule=ConstantSchedule(lr=5e-3),
        ).fit()
        rep = engine.report()
        print(
            f"\ndone: loss {hist.losses[0]:.3f} -> {hist.final_loss:.3f}"
            f" in {hist.wall_seconds:.1f}s;"
            f" NVMe traffic {format_bytes(rep.nvme_read_bytes + rep.nvme_write_bytes)}"
        )
        if args.trace and not distributed:
            from repro.obs import (
                get_registry,
                telemetry_summary,
                write_chrome_trace,
            )

            n = write_chrome_trace(args.trace, tracer, get_registry())
            print("\n" + telemetry_summary(tracer, get_registry()))
            print(f"\nwrote {n} spans to {args.trace} (open in Perfetto)")
        if memreport:
            from repro.obs import build_memreport

            report = build_memreport(
                engine, scope, bsz=2 * args.world, seq=16, ci=1
            )
            print("\n" + report.render())
        if perfreport:
            from repro.obs import build_perfreport

            report = build_perfreport(
                engine, tracer, bsz=2 * args.world, seq=16, ci=1
            )
            print("\n" + report.render())
        if plane is not None:
            rep = engine.report()
            print(plane.summary())
            print(
                f"recovery: {rep.step_retries} step replay(s),"
                f" {rep.io_read_retries + rep.io_write_retries} I/O"
                f" retry(ies), {rep.checksum_refetches} checksum"
                f" re-fetch(es), {rep.pinned_fallbacks + rep.prefetch_fallbacks}"
                f" fallback(s)"
            )
        if engine.check_context is not None:
            print(engine.check_context.summary())
    if check_cfg is not None and check_cfg.lint:
        from repro.check.lint import run_lint

        report = run_lint()
        print(
            f"lint: {len(report.new_findings)} new finding(s),"
            f" {len(report.all_findings) - len(report.new_findings)}"
            f" absorbed by baseline"
        )
        for f in report.new_findings:
            print("  " + f.format())
        if not report.clean:
            return 1
    return 0


def _cmd_doctor(args) -> int:
    """Quick self-verification of every subsystem on this machine."""
    import numpy as np

    checks: list[tuple[str, bool, str]] = []

    def check(name, fn):
        try:
            detail = fn() or ""
            checks.append((name, True, str(detail)))
        except Exception as e:  # noqa: BLE001 - it's a doctor
            checks.append((name, False, f"{type(e).__name__}: {e}"))

    def nvme_roundtrip():
        from repro.nvme import TensorStore

        with TensorStore() as store:
            data = np.arange(10_000, dtype=np.float32)
            store.write("probe", data)
            assert np.array_equal(store.read("probe"), data)
        return "async file I/O round-trips bitwise"

    def gradcheck():
        from repro.nn import Linear
        from repro.utils.rng import seeded_rng

        lin = Linear(4, 3, rng=seeded_rng(0))
        for p in lin.parameters():
            p.data = p.data.astype(np.float64)
        x = seeded_rng(1).standard_normal((2, 4))
        y = lin(x)
        lin.backward(np.ones_like(y))
        eps, idx = 1e-6, (0, 0)
        w = lin.weight
        orig = w.data[idx]
        w.data[idx] = orig + eps
        lp = float(lin(x).sum())
        w.data[idx] = orig - eps
        lm = float(lin(x).sum())
        w.data[idx] = orig
        num = (lp - lm) / (2 * eps)
        assert abs(w.grad[idx] - num) < 1e-6
        return "autograd matches finite differences"

    def engine_equivalence():
        from repro.baselines import DDPTrainer
        from repro.core import (
            OffloadConfig,
            OffloadDevice,
            ZeroConfig,
            ZeroInfinityEngine,
        )
        from repro.nn import GPTModel, TransformerConfig
        from repro.utils.rng import seeded_rng, spawn_rngs

        def f():
            return GPTModel(
                TransformerConfig(
                    num_layers=1, hidden_dim=16, num_heads=2, vocab_size=32, max_seq=8
                ),
                rng=seeded_rng(0),
            )

        rngs = spawn_rngs(1, 2)
        b = [
            (r.integers(0, 32, (1, 8)), r.integers(0, 32, (1, 8))) for r in rngs
        ]
        ref = float(np.mean(DDPTrainer(f, 2, lr=1e-2).train_step(b)))
        cfg = ZeroConfig(
            world_size=2,
            offload=OffloadConfig(
                param_device=OffloadDevice.NVME,
                optimizer_device=OffloadDevice.NVME,
            ),
            loss_scale=1.0,
        )
        with ZeroInfinityEngine(cfg, model_factory=f, lr=1e-2) as eng:
            got = eng.train_step(b).mean_loss
        assert abs(got - ref) < 1e-4
        return f"ZeRO-3+NVMe loss {got:.6f} == DDP {ref:.6f}"

    def simulator():
        from repro.core.config import Strategy
        from repro.hardware import dgx2_cluster
        from repro.sim import SimWorkload, StepSimulator, policy_for_strategy

        wl = SimWorkload(
            params=int(8e9), num_layers=10, hidden_dim=8192, attn_heads=16,
            batch_per_gpu=2,
        )
        b = StepSimulator(
            dgx2_cluster(4), wl, policy_for_strategy(Strategy.ZERO_INF_NVME)
        ).simulate()
        assert 0 < b.tflops_per_gpu < 70
        return f"modeled {b.tflops_per_gpu:.1f} TFlops/GPU for an 8B NVMe run"

    check("nvme", nvme_roundtrip)
    check("autograd", gradcheck)
    check("zero-engine", engine_equivalence)
    check("simulator", simulator)

    width = max(len(n) for n, _, _ in checks)
    ok = True
    for name, passed, detail in checks:
        status = "ok  " if passed else "FAIL"
        ok = ok and passed
        print(f"[{status}] {name.ljust(width)}  {detail}")
    print("\nall systems nominal" if ok else "\nproblems found", flush=True)
    return 0 if ok else 1


def _cmd_check_static(args) -> int:
    """Prove the SPMD schedule before any rank process launches."""
    from repro.check.static import run_static_check
    from repro.check.static.driver import DEFAULT_MATRIX

    matrix = [
        spec
        for spec in DEFAULT_MATRIX
        if (args.stage is None or spec.stage == args.stage)
        and (args.world is None or spec.world == args.world)
        and (args.backend is None or spec.backend == args.backend)
    ]
    if not matrix:
        print("no matrix cell matches the requested filters")
        return 2
    report = run_static_check(matrix, lint=not args.no_lint)
    print(report.render())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="ZeRO-Infinity reproduction toolkit"
    )
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("scale", help="max model size per strategy")
    s.add_argument("--nodes", type=int, default=1)
    s.add_argument("--strategy", type=str, default=None)
    s.add_argument("--batch", type=int, default=1)
    s.add_argument("--mp", type=int, default=4)
    s.add_argument("--tile-factor", type=int, default=16)
    s.set_defaults(fn=_cmd_scale)

    s = sub.add_parser("throughput", help="simulate a Table 1 workload")
    s.add_argument("--config", type=str, required=True)
    s.add_argument("--nodes", type=int, default=None)
    s.add_argument("--accum", type=int, default=1)
    s.add_argument("--gantt", action="store_true", help="render the timeline")
    s.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="write the simulated timeline as Chrome trace JSON",
    )
    s.add_argument(
        "--backend", type=str, default=None, choices=["loop", "mp"],
        help="also run a small functional calibration workload on this"
        " machine with the chosen collective backend and report its"
        " measured steps/s next to the simulated numbers",
    )
    s.add_argument(
        "--calib-world", type=int, default=2,
        help="world size for the --backend calibration run (default 2)",
    )
    s.set_defaults(fn=_cmd_throughput)

    s = sub.add_parser("memory", help="Sec. 3 memory profile")
    s.add_argument("--layers", type=int, required=True)
    s.add_argument("--hidden", type=int, required=True)
    s.add_argument("--heads", type=int, default=16)
    s.add_argument("--batch", type=int, default=2)
    s.add_argument("--seq", type=int, default=1024)
    s.add_argument("--ci", type=int, default=1)
    s.set_defaults(fn=_cmd_memory)

    s = sub.add_parser("efficiency", help="Sec. 4 bandwidth requirements")
    s.add_argument("--seq", type=int, default=1024)
    s.add_argument("--batch", type=int, default=2)
    s.add_argument("--hidden", type=int, default=8192)
    s.add_argument("--ci", type=int, default=1)
    s.add_argument("--target", type=float, default=0.5)
    s.set_defaults(fn=_cmd_efficiency)

    s = sub.add_parser("doctor", help="self-verify every subsystem")
    s.set_defaults(fn=_cmd_doctor)

    s = sub.add_parser(
        "check-static",
        help="statically verify the SPMD schedule (collectives, deadlock,"
        " locks) plus the repo lint",
    )
    s.add_argument(
        "--stage", type=int, choices=(2, 3), default=None,
        help="restrict the matrix to one ZeRO stage",
    )
    s.add_argument(
        "--world", type=int, default=None,
        help="restrict the matrix to one world size",
    )
    s.add_argument(
        "--backend", choices=("loop", "mp"), default=None,
        help="restrict the matrix to one comm backend",
    )
    s.add_argument(
        "--no-lint", action="store_true",
        help="skip the repo-wide lint pass (schedule verification only)",
    )
    s.set_defaults(fn=_cmd_check_static)

    s = sub.add_parser("plan", help="recommend placements for a model size")
    s.add_argument("--params", type=str, required=True, help="e.g. 100B or 1T")
    s.add_argument("--nodes", type=int, default=1)
    s.add_argument("--batch", type=int, default=2)
    s.add_argument("--hidden", type=int, default=None)
    s.set_defaults(fn=_cmd_plan)

    def _train_demo_args(s, *, offload_default: str) -> None:
        s.add_argument("--world", type=int, default=4)
        s.add_argument("--steps", type=int, default=10)
        s.add_argument("--hidden", type=int, default=64)
        s.add_argument(
            "--backend", type=str, default="loop", choices=["loop", "mp"],
            help="collective backend: 'loop' runs every rank in-process"
            " (the oracle); 'mp' forks one process per rank exchanging"
            " through shared memory (bit-identical numerics, parallel"
            " forward/backward)",
        )
        s.add_argument(
            "--offload",
            type=str,
            default=offload_default,
            choices=["gpu", "cpu", "nvme"],
        )
        s.add_argument(
            "--trace", type=str, default=None, metavar="PATH",
            help="record spans and write a Chrome trace JSON of the run",
        )
        s.add_argument(
            "--check", type=str, default=None, metavar="SPEC",
            help="run checker passes: 'all' or a comma list of"
            " zerosan,collectives,races,lint (violations are recorded and"
            " summarized after the run)",
        )
        s.add_argument(
            "--faults", type=str, default=None, metavar="SPEC",
            help="chaos run: inject faults from a spec like"
            " 'io_error@aio.read:times=2;bit_flip@aio.read' (see"
            " docs/resilience.md); the injection summary prints after"
            " the run",
        )
        s.add_argument(
            "--faults-seed", type=int, default=0,
            help="seed for probabilistic fault rules (default 0)",
        )
        s.add_argument(
            "--live", action="store_true",
            help="stream per-rank telemetry through repro.obs.live and"
            " render a top-style health dashboard while training (works"
            " for both backends; under mp the parent aggregates the shm"
            " telemetry ring)",
        )
        s.add_argument(
            "--postmortem", type=str, default=None, metavar="DIR",
            help="arm the crash flight recorder: on a terminal failure,"
            " dump a postmortem bundle (per-rank event tails, last-known"
            " state, Chrome-trace tail) into DIR",
        )
        s.set_defaults(fn=_cmd_train_demo)

    s = sub.add_parser("train-demo", help="short functional training run")
    _train_demo_args(s, offload_default="nvme")
    s.add_argument(
        "--memreport", action="store_true",
        help="profile the run with repro.obs.memscope and print per-tier"
        " watermarks, attribution and analytic-model drift",
    )
    s.add_argument(
        "--perfreport", action="store_true",
        help="trace the run with repro.obs.perfscope and print the step"
        " time ledger, stall attribution, critical path and Eq. (6)"
        " bandwidth drift",
    )

    s = sub.add_parser(
        "memreport",
        help="train-demo profiled by memscope: watermarks, attribution,"
        " and Sec. 3 model drift",
    )
    _train_demo_args(s, offload_default="gpu")
    s.set_defaults(memreport=True)

    s = sub.add_parser(
        "perfreport",
        help="train-demo traced by perfscope: time ledger, stalls,"
        " critical path, and Sec. 4 bandwidth drift",
    )
    _train_demo_args(s, offload_default="nvme")
    s.set_defaults(perfreport=True)
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
