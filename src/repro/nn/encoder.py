"""A BERT-style bidirectional encoder with a masked-LM head.

ZeRO-Infinity claims to train *arbitrary model architectures* without code
changes (Sec. 5.3).  The GPT decoder exercises causal attention and tied
embeddings; this encoder exercises the other half of the transformer design
space — bidirectional attention, a pooled sequence-classification path, and
a masked-LM objective whose loss only covers masked positions.  It uses the
same leaf layers, so the ZeRO engine's hooks cover it with zero
engine-side changes — which is precisely the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.transformer import TransformerBlock
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class EncoderConfig:
    num_layers: int
    hidden_dim: int
    num_heads: int
    vocab_size: int = 30_522
    max_seq: int = 512
    mask_token: int = 0  # id used for [MASK]

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_dim <= 0 or self.num_heads <= 0:
            raise ValueError("num_layers, hidden_dim, num_heads must be positive")
        if self.hidden_dim % self.num_heads:
            raise ValueError("hidden_dim must divide evenly among heads")
        if not 0 <= self.mask_token < self.vocab_size:
            raise ValueError("mask_token must be a valid vocabulary id")


class MaskedLMHead(Module):
    """Project to vocab; cross-entropy only over masked positions."""

    def __init__(
        self,
        hidden_dim: int,
        vocab_size: int,
        *,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else seeded_rng(0)
        self.proj = Linear(hidden_dim, vocab_size, rng=rng, dtype=dtype)

    def forward(
        self, x: np.ndarray, targets: np.ndarray, mask: np.ndarray
    ) -> float:
        """``mask`` is a boolean [bsz, seq]: True where loss applies."""
        if not mask.any():
            raise ValueError("masked-LM loss needs at least one masked position")
        logits = self.proj(x)
        flat_logits = logits[mask]  # [n_masked, vocab]
        flat_targets = targets[mask]
        loss, ce_cache = F.cross_entropy_fwd(flat_logits, flat_targets)
        self._cache = (ce_cache, mask, logits.shape, logits.dtype)
        return loss

    def _backward(self, grad_loss: float) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MaskedLMHead.backward before forward")
        ce_cache, mask, shape, dtype = self._cache
        grad_flat = F.cross_entropy_bwd(grad_loss, ce_cache)
        grad_logits = np.zeros(shape, dtype=dtype)
        grad_logits[mask] = grad_flat
        grad_x = self.proj.backward(grad_logits)
        self._cache = None
        return grad_x


class BertStyleEncoder(Module):
    """Token+position embeddings, bidirectional blocks, MLM objective."""

    def __init__(
        self,
        config: EncoderConfig,
        *,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else seeded_rng(0)
        self.config = config
        self.tok_emb = Embedding(config.vocab_size, config.hidden_dim, rng=rng, dtype=dtype)
        self.pos_emb = Embedding(config.max_seq, config.hidden_dim, rng=rng, dtype=dtype)
        self._block_names: list[str] = []
        for i in range(config.num_layers):
            block = TransformerBlock(
                config.hidden_dim, config.num_heads, rng=rng, dtype=dtype
            )
            block.attn.causal = False  # bidirectional attention
            name = f"block{i}"
            setattr(self, name, block)
            self._block_names.append(name)
        self.ln_f = LayerNorm(config.hidden_dim, dtype=dtype)
        self.mlm = MaskedLMHead(config.hidden_dim, config.vocab_size, rng=rng, dtype=dtype)
        self.name_parameters()

    @staticmethod
    def apply_masking(
        ids: np.ndarray,
        rng: np.random.Generator,
        *,
        mask_token: int,
        mask_prob: float = 0.15,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Standard MLM corruption: returns (corrupted, targets, mask)."""
        if not 0.0 < mask_prob <= 1.0:
            raise ValueError("mask_prob must be in (0, 1]")
        mask = rng.random(ids.shape) < mask_prob
        if not mask.any():
            mask.flat[0] = True  # guarantee one training signal
        corrupted = ids.copy()
        corrupted[mask] = mask_token
        return corrupted, ids, mask

    def forward(
        self, ids: np.ndarray, targets: np.ndarray, mask: np.ndarray
    ) -> float:
        if ids.ndim != 2:
            raise ValueError(f"ids must be [bsz, seq], got {ids.shape}")
        bsz, seq = ids.shape
        if seq > self.config.max_seq:
            raise ValueError(f"sequence {seq} exceeds max {self.config.max_seq}")
        pos = np.broadcast_to(np.arange(seq), (bsz, seq))
        x = self.tok_emb(ids) + self.pos_emb(pos)
        for name in self._block_names:
            x = self._modules[name](x)
        x = self.ln_f(x)
        return self.mlm(x, targets, mask)

    def _backward(self, grad_loss: float) -> None:
        grad = self.mlm.backward(grad_loss)
        grad = self.ln_f.backward(grad)
        for name in reversed(self._block_names):
            grad = self._modules[name].backward(grad)
        self.pos_emb.backward(grad)
        self.tok_emb.backward(grad)
        return None
