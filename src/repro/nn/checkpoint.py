"""Activation checkpointing with optional CPU offload of checkpoints.

Sec. 3 / Sec. 5.1.2: activation checkpointing trades ~0.33x extra compute
(one additional forward) for dropping intermediate activations between
checkpoints; ZeRO-Infinity further offloads the retained checkpoints to CPU
memory.  :class:`CheckpointedBlock` wraps any module:

* forward: run the wrapped module, keep only the *input* (the checkpoint) —
  discarding the module's internal caches; optionally move the checkpoint to
  a CPU-tagged buffer through the engine's activation offloader;
* backward: re-run the forward from the checkpoint (recompute), then run the
  real backward.

The recompute honours the wrapped module's hooks, so the ZeRO coordinator
re-gathers parameters for recomputation exactly as the paper describes
(the third parameter load counted in the Sec. 4.1 AIT analysis).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.obs.memscope import mem_alloc, mem_free


class ActivationOffloader:
    """Destination for checkpoint tensors (CPU offload, Sec. 5.1.2).

    The default implementation copies into a CPU-tagged ledger-accounted
    buffer; the performance simulator charges PCIe time for the same bytes.
    Subclass / replace ``save`` and ``load`` to spill further (e.g. NVMe,
    mentioned as future work for the 20T case in Sec. 8.2), and
    ``discard`` so exception unwind can drop a saved-but-never-restored
    checkpoint without inflating the ledger watermark.
    """

    _ids = itertools.count()

    def __init__(self, ledger=None) -> None:
        self.ledger = ledger
        self.owner = f"actckpt.{next(self._ids)}"
        self.bytes_offloaded = 0
        self.bytes_restored = 0

    def save(self, array: np.ndarray) -> object:
        from repro.tensor.device import CPU

        self.bytes_offloaded += array.nbytes
        if self.ledger is not None:
            self.ledger.allocate(
                CPU, array.nbytes, category="activation_ckpt", owner=self.owner
            )
        mem_alloc(
            "cpu", array.nbytes, category="activation_ckpt", owner=self.owner
        )
        return array.copy()

    def load(self, handle: object) -> np.ndarray:
        from repro.tensor.device import CPU

        array = handle  # type: ignore[assignment]
        self.bytes_restored += array.nbytes
        if self.ledger is not None:
            self.ledger.free(
                CPU, array.nbytes, category="activation_ckpt", owner=self.owner
            )
        mem_free(
            "cpu", array.nbytes, category="activation_ckpt", owner=self.owner
        )
        return array

    def discard(self, handle: object) -> None:
        """Drop a saved checkpoint without restoring it (abort unwind)."""
        from repro.tensor.device import CPU

        array = handle  # type: ignore[assignment]
        if self.ledger is not None:
            self.ledger.free(
                CPU, array.nbytes, category="activation_ckpt", owner=self.owner
            )
        mem_free(
            "cpu", array.nbytes, category="activation_ckpt", owner=self.owner
        )


class CheckpointedBlock(Module):
    """Wrap ``inner`` so only its input survives the forward pass."""

    def __init__(
        self, inner: Module, *, offloader: Optional[ActivationOffloader] = None
    ) -> None:
        super().__init__()
        self.inner = inner
        self.offloader = offloader
        self._checkpoint = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.offloader is not None:
            self._checkpoint = self.offloader.save(x)
        else:
            self._checkpoint = x
        out = self.inner(x)
        self._drop_inner_caches()
        return out

    def _drop_inner_caches(self) -> None:
        """Free every descendant's activation cache (the memory saving)."""
        for m in self.inner.modules():
            object.__setattr__(m, "_cache", None)

    def _backward(self, grad: np.ndarray) -> np.ndarray:
        if self._checkpoint is None:
            raise RuntimeError("CheckpointedBlock.backward before forward")
        if self.offloader is not None:
            x = self.offloader.load(self._checkpoint)
        else:
            x = self._checkpoint
        self._checkpoint = None
        # Recompute: a second forward that repopulates the inner caches.
        self.inner(x)
        return self.inner.backward(grad)

    def discard_checkpoint(self) -> None:
        """Drop a checkpoint left behind by an aborted step.

        A forward that saves a checkpoint and then raises (or whose step
        is abandoned before backward) would otherwise leak the offloaded
        bytes forever — inflating ledger and memscope watermarks across
        every subsequent step.  The engine routes this through the
        ``coordinator.abort_step`` unwind, mirroring the PR 3 boundary
        sweep.
        """
        if self._checkpoint is None:
            return
        handle, self._checkpoint = self._checkpoint, None
        if self.offloader is not None:
            self.offloader.discard(handle)
