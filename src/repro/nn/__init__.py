"""Miniature deep-learning framework (the PyTorch substitute).

ZeRO-Infinity's ease-inspired implementation (Sec. 7) is built on three
PyTorch extension points: a module hierarchy with per-submodule
forward/backward hooks, a parameter hash table that can be subclassed to
intercept accesses, and wrappable module constructors.  This package
provides the same extension points over numpy:

* :class:`~repro.nn.module.Module` — hierarchy, hook registration, and a
  module-structured backward pass;
* :class:`~repro.nn.parameter.Parameter` — named tensors with gradients and
  a partition-state slot the ZeRO engine attaches to;
* :mod:`~repro.nn.functional` — forward *and* backward kernels for the
  transformer operator set, gradient-checked in the tests;
* layers (Linear, LayerNorm, Embedding, Dropout, MultiHeadAttention, MLP,
  TransformerBlock, GPTModel) sized per the paper's architecture analysis
  (the four linears of Sec. 3);
* :mod:`~repro.nn.checkpoint` — activation checkpointing with optional CPU
  offload of checkpoints (Sec. 5.1.2);
* :mod:`~repro.nn.init_context` — partition-parameters-at-construction
  (Sec. 7.2).
"""

from repro.nn.parameter import Parameter, ParameterDict
from repro.nn.module import Module
from repro.nn.layers import Dropout, Embedding, GELU, LayerNorm, Linear, Sequential
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import (
    MLP,
    TransformerBlock,
    TransformerConfig,
    GPTModel,
    CrossEntropyHead,
)
from repro.nn.checkpoint import CheckpointedBlock
from repro.nn.init_context import PartitionedInitContext, module_init_interceptor

__all__ = [
    "Parameter",
    "ParameterDict",
    "Module",
    "Dropout",
    "Embedding",
    "GELU",
    "LayerNorm",
    "Linear",
    "Sequential",
    "MultiHeadAttention",
    "MLP",
    "TransformerBlock",
    "TransformerConfig",
    "GPTModel",
    "CrossEntropyHead",
    "CheckpointedBlock",
    "PartitionedInitContext",
    "module_init_interceptor",
]
