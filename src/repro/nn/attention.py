"""Multi-head causal self-attention.

Composed of the two attention-side linears of the paper's parameter count
(Sec. 3): the fused QKV projection ``(hd, 3hd)`` and the output projection
``(hd, hd)``, around the scaled-dot-product core from
:mod:`repro.nn.functional`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.utils.rng import seeded_rng


class MultiHeadAttention(Module):
    """Causal multi-head self-attention over ``[bsz, seq, hd]`` inputs."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        *,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
        causal: bool = True,
    ) -> None:
        super().__init__()
        if hidden_dim % num_heads:
            raise ValueError(
                f"hidden_dim {hidden_dim} not divisible by num_heads {num_heads}"
            )
        rng = rng if rng is not None else seeded_rng(0)
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.causal = causal
        self.qkv = Linear(hidden_dim, 3 * hidden_dim, rng=rng, dtype=dtype)
        self.proj = Linear(hidden_dim, hidden_dim, rng=rng, dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        qkv = self.qkv(x)  # [bsz, seq, 3*hd]
        q, k, v = np.split(qkv, 3, axis=-1)
        qh = F.split_heads(q, self.num_heads)
        kh = F.split_heads(k, self.num_heads)
        vh = F.split_heads(v, self.num_heads)
        ctx, attn_cache = F.attention_scores_fwd(qh, kh, vh, causal=self.causal)
        merged = F.merge_heads(ctx)
        out = self.proj(merged)
        self._cache = attn_cache
        return out

    def _backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("MultiHeadAttention.backward before forward")
        grad_merged = self.proj.backward(grad_out)
        bsz, seq, hd = grad_merged.shape
        grad_ctx = F.split_heads(grad_merged, self.num_heads)
        grad_q, grad_k, grad_v = F.attention_scores_bwd(grad_ctx, self._cache)
        grad_qkv = np.concatenate(
            [F.merge_heads(grad_q), F.merge_heads(grad_k), F.merge_heads(grad_v)],
            axis=-1,
        )
        grad_x = self.qkv.backward(grad_qkv)
        self._cache = None
        return grad_x

    def extra_repr(self) -> str:
        return f"hd={self.hidden_dim}, heads={self.num_heads}, causal={self.causal}"
