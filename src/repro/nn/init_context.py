"""Partition-parameters-at-construction (Sec. 7.2).

A 500B-parameter model occupies 1 TB in fp16 — too large to materialise on
any single process before partitioning.  ZeRO-Infinity therefore "decorates
the ``__init__`` method of torch.nn.Module so that parameters allocated under
each module/sub-module are partitioned immediately after its initialization".

Our framework routes every parameter assignment through
``Module.__setattr__``, which gives an even sharper interception point: the
context patches ``__setattr__`` so each :class:`Parameter` is handed to a
partition callback *the moment it is created*, before the next one is
allocated.  Peak unpartitioned bytes therefore stay at max(single parameter)
rather than sum(all parameters) — the guarantee the section's 1 TB example
relies on.  The context records that peak so tests can assert it.
"""

from __future__ import annotations

import contextlib
from typing import Callable

from repro.nn.module import Module
from repro.nn.parameter import Parameter


@contextlib.contextmanager
def module_init_interceptor(callback: Callable[[Module, str, Parameter], None]):
    """Patch ``Module.__setattr__`` to invoke ``callback`` per new Parameter.

    The callback runs after the parameter is registered in the module's
    parameter dict, mirroring "partitioned immediately after its
    initialization".  Re-entrant assignments from inside the callback are
    not re-intercepted.
    """
    original = Module.__setattr__
    in_callback = False

    def patched(self: Module, name: str, value) -> None:
        nonlocal in_callback
        original(self, name, value)
        if isinstance(value, Parameter) and not in_callback:
            in_callback = True
            try:
                callback(self, name, value)
            finally:
                in_callback = False

    Module.__setattr__ = patched  # type: ignore[method-assign]
    try:
        yield
    finally:
        Module.__setattr__ = original  # type: ignore[method-assign]


class PartitionedInitContext:
    """Context manager that partitions parameters as a model is built.

    Parameters
    ----------
    partition_fn:
        Called with each freshly created :class:`Parameter`; expected to
        shard (and optionally offload) it, leaving ``state = PARTITIONED``.
        Supplied by :class:`repro.core.engine.ZeroInfinityEngine`.

    Attributes
    ----------
    peak_unpartitioned_bytes:
        Largest full-parameter allocation seen at any instant — the
        aggregate memory a single process needed during initialisation.
    partitioned_parameters:
        Count of parameters routed through the context.
    """

    def __init__(self, partition_fn: Callable[[Parameter], None]) -> None:
        self.partition_fn = partition_fn
        self.peak_unpartitioned_bytes = 0
        self.partitioned_parameters = 0
        self._seen: set[int] = set()
        self._cm = None

    def _on_parameter(self, module: Module, name: str, param: Parameter) -> None:
        if id(param) in self._seen:
            return  # tied weight assigned into a second module
        self._seen.add(id(param))
        self.peak_unpartitioned_bytes = max(
            self.peak_unpartitioned_bytes, param.nbytes
        )
        self.partition_fn(param)
        self.partitioned_parameters += 1

    def __enter__(self) -> "PartitionedInitContext":
        self._cm = module_init_interceptor(self._on_parameter)
        self._cm.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        cm, self._cm = self._cm, None
        cm.__exit__(*exc)
