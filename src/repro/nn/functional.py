"""Forward and backward kernels for the transformer operator set.

Every ``*_fwd`` returns ``(output, cache)``; the matching ``*_bwd`` consumes
``(grad_output, cache)`` and returns input/parameter gradients.  Kernels are
dtype-generic (fp16/fp32/fp64) with one deliberate exception: matrix products
accumulate in at least fp32 and are cast back to the input dtype, emulating
V100 tensor-core behaviour (fp16 multiply, fp32 accumulate).  Everything is
vectorised numpy — no Python loops over batch or sequence.

Shapes follow the paper's notation: activations are ``[bsz, seq, hd]``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def _accum_dtype(dt: np.dtype) -> np.dtype:
    """Accumulation dtype: fp16 accumulates in fp32; wider types keep theirs."""
    return np.dtype(np.float32) if dt == np.float16 else np.dtype(dt)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Tensor-core-style matmul: accumulate wide, return the input dtype."""
    acc = _accum_dtype(a.dtype)
    out = np.matmul(a.astype(acc, copy=False), b.astype(acc, copy=False))
    return out.astype(a.dtype, copy=False)


# ---------------------------------------------------------------------------
# Linear
# ---------------------------------------------------------------------------

def linear_fwd(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
) -> tuple[np.ndarray, tuple]:
    """``y = x @ W.T + b`` with ``W`` of shape ``[out, in]``."""
    y = matmul(x, weight.T)
    if bias is not None:
        y = y + bias
    return y, (x, weight, bias is not None)


def linear_bwd(
    grad_y: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Returns ``(grad_x, grad_weight, grad_bias)``."""
    x, weight, has_bias = cache
    grad_x = matmul(grad_y, weight)
    # collapse all leading dims into one batch axis for the weight grad
    go2 = grad_y.reshape(-1, grad_y.shape[-1])
    x2 = x.reshape(-1, x.shape[-1])
    acc = _accum_dtype(grad_y.dtype)
    grad_w = (go2.astype(acc, copy=False).T @ x2.astype(acc, copy=False)).astype(
        weight.dtype, copy=False
    )
    grad_b = None
    if has_bias:
        grad_b = go2.astype(acc, copy=False).sum(axis=0).astype(weight.dtype)
    return grad_x, grad_w, grad_b


# ---------------------------------------------------------------------------
# GELU (tanh approximation, as used by GPT-2/Megatron)
# ---------------------------------------------------------------------------

def gelu_fwd(x: np.ndarray) -> tuple[np.ndarray, tuple]:
    acc = _accum_dtype(x.dtype)
    xa = x.astype(acc, copy=False)
    inner = _SQRT_2_OVER_PI * (xa + 0.044715 * xa**3)
    t = np.tanh(inner)
    y = 0.5 * xa * (1.0 + t)
    return y.astype(x.dtype, copy=False), (xa, t)


def gelu_bwd(grad_y: np.ndarray, cache: tuple) -> np.ndarray:
    xa, t = cache
    acc = xa.dtype
    g = grad_y.astype(acc, copy=False)
    dinner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * xa**2)
    dy_dx = 0.5 * (1.0 + t) + 0.5 * xa * (1.0 - t**2) * dinner
    return (g * dy_dx).astype(grad_y.dtype, copy=False)


# ---------------------------------------------------------------------------
# Softmax (last axis)
# ---------------------------------------------------------------------------

def softmax_fwd(x: np.ndarray) -> tuple[np.ndarray, tuple]:
    acc = _accum_dtype(x.dtype)
    xa = x.astype(acc, copy=False)
    shifted = xa - xa.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    p = e / e.sum(axis=-1, keepdims=True)
    return p.astype(x.dtype, copy=False), (p,)


def softmax_bwd(grad_y: np.ndarray, cache: tuple) -> np.ndarray:
    (p,) = cache
    acc = p.dtype
    g = grad_y.astype(acc, copy=False)
    dot = (g * p).sum(axis=-1, keepdims=True)
    return (p * (g - dot)).astype(grad_y.dtype, copy=False)


# ---------------------------------------------------------------------------
# LayerNorm (last axis), with affine gain/bias
# ---------------------------------------------------------------------------

def layernorm_fwd(
    x: np.ndarray, gain: np.ndarray, bias: np.ndarray, *, eps: float = 1e-5
) -> tuple[np.ndarray, tuple]:
    acc = _accum_dtype(x.dtype)
    xa = x.astype(acc, copy=False)
    mean = xa.mean(axis=-1, keepdims=True)
    var = xa.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (xa - mean) * inv_std
    y = xhat * gain.astype(acc, copy=False) + bias.astype(acc, copy=False)
    return y.astype(x.dtype, copy=False), (xhat, inv_std, gain)


def layernorm_bwd(
    grad_y: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(grad_x, grad_gain, grad_bias)``."""
    xhat, inv_std, gain = cache
    acc = xhat.dtype
    g = grad_y.astype(acc, copy=False)
    axes = tuple(range(g.ndim - 1))
    grad_gain = (g * xhat).sum(axis=axes).astype(gain.dtype, copy=False)
    grad_bias = g.sum(axis=axes).astype(gain.dtype, copy=False)
    gh = g * gain.astype(acc, copy=False)  # dL/dxhat
    n = xhat.shape[-1]
    grad_x = (
        inv_std
        / n
        * (
            n * gh
            - gh.sum(axis=-1, keepdims=True)
            - xhat * (gh * xhat).sum(axis=-1, keepdims=True)
        )
    )
    return grad_x.astype(grad_y.dtype, copy=False), grad_gain, grad_bias


# ---------------------------------------------------------------------------
# Embedding lookup
# ---------------------------------------------------------------------------

def embedding_fwd(ids: np.ndarray, table: np.ndarray) -> tuple[np.ndarray, tuple]:
    """``ids`` integer array, ``table`` of ``[vocab, dim]``."""
    if not np.issubdtype(ids.dtype, np.integer):
        raise TypeError(f"embedding ids must be integers, got {ids.dtype}")
    if ids.size and (ids.min() < 0 or ids.max() >= table.shape[0]):
        raise IndexError("embedding id out of range")
    return table[ids], (ids, table.shape)


def embedding_bwd(grad_y: np.ndarray, cache: tuple) -> np.ndarray:
    """Dense gradient of shape ``[vocab, dim]`` (scatter-add over ids)."""
    ids, table_shape = cache
    acc = _accum_dtype(grad_y.dtype)
    grad_table = np.zeros(table_shape, dtype=acc)
    np.add.at(grad_table, ids.reshape(-1), grad_y.reshape(-1, table_shape[1]))
    return grad_table.astype(grad_y.dtype, copy=False)


# ---------------------------------------------------------------------------
# Dropout (inverted scaling)
# ---------------------------------------------------------------------------

def dropout_fwd(
    x: np.ndarray, p: float, rng: np.random.Generator, *, training: bool
) -> tuple[np.ndarray, tuple]:
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout p must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x, (None,)
    keep = (rng.random(x.shape) >= p).astype(x.dtype)
    scale = np.asarray(1.0 / (1.0 - p), dtype=x.dtype)
    return x * keep * scale, (keep * scale,)


def dropout_bwd(grad_y: np.ndarray, cache: tuple) -> np.ndarray:
    (mask,) = cache
    return grad_y if mask is None else grad_y * mask


# ---------------------------------------------------------------------------
# Causal self-attention core: softmax(QK^T/sqrt(dh) + mask) V
# ---------------------------------------------------------------------------

def attention_scores_fwd(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, *, causal: bool = True
) -> tuple[np.ndarray, tuple]:
    """q, k, v of shape ``[bsz, heads, seq, dh]`` -> context of same shape."""
    dh = q.shape[-1]
    scale = 1.0 / math.sqrt(dh)
    scores = matmul(q, np.swapaxes(k, -1, -2)) * np.asarray(scale, dtype=q.dtype)
    if causal:
        seq = q.shape[-2]
        mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        neg = np.asarray(-1e4 if q.dtype == np.float16 else -1e9, dtype=scores.dtype)
        scores = np.where(mask, neg, scores)
    probs, sm_cache = softmax_fwd(scores)
    ctx = matmul(probs, v)
    return ctx, (q, k, v, probs, sm_cache, scale)


def attention_scores_bwd(
    grad_ctx: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(grad_q, grad_k, grad_v)``."""
    q, k, v, probs, sm_cache, scale = cache
    grad_probs = matmul(grad_ctx, np.swapaxes(v, -1, -2))
    grad_v = matmul(np.swapaxes(probs, -1, -2), grad_ctx)
    grad_scores = softmax_bwd(grad_probs, sm_cache)
    # masked positions have probs == 0 there, softmax_bwd already zeroes them
    s = np.asarray(scale, dtype=grad_scores.dtype)
    grad_q = matmul(grad_scores, k) * s
    grad_k = matmul(np.swapaxes(grad_scores, -1, -2), q) * s
    return grad_q, grad_k, grad_v


# ---------------------------------------------------------------------------
# Cross-entropy over logits (mean over tokens)
# ---------------------------------------------------------------------------

def cross_entropy_fwd(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, tuple]:
    """``logits [*, vocab]``, integer ``targets [*]``; returns mean NLL."""
    acc = _accum_dtype(logits.dtype)
    flat = logits.reshape(-1, logits.shape[-1]).astype(acc, copy=False)
    t = targets.reshape(-1)
    if t.shape[0] != flat.shape[0]:
        raise ValueError("targets shape does not match logits batch")
    shifted = flat - flat.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1))
    nll = logsumexp - shifted[np.arange(t.shape[0]), t]
    loss = float(nll.mean())
    return loss, (shifted, t, logits.shape, logits.dtype)


def cross_entropy_bwd(grad_loss: float, cache: tuple) -> np.ndarray:
    shifted, t, shape, dtype = cache
    e = np.exp(shifted)
    probs = e / e.sum(axis=-1, keepdims=True)
    probs[np.arange(t.shape[0]), t] -= 1.0
    probs *= grad_loss / t.shape[0]
    return probs.reshape(shape).astype(dtype, copy=False)


# ---------------------------------------------------------------------------
# Head split/merge helpers
# ---------------------------------------------------------------------------

def split_heads(x: np.ndarray, heads: int) -> np.ndarray:
    """``[bsz, seq, hd] -> [bsz, heads, seq, hd/heads]``."""
    bsz, seq, hd = x.shape
    if hd % heads:
        raise ValueError(f"hidden dim {hd} not divisible by {heads} heads")
    return x.reshape(bsz, seq, heads, hd // heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """``[bsz, heads, seq, dh] -> [bsz, seq, heads*dh]``."""
    bsz, heads, seq, dh = x.shape
    return np.ascontiguousarray(x.transpose(0, 2, 1, 3)).reshape(bsz, seq, heads * dh)
