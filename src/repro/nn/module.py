"""Module hierarchy with forward *and backward* hooks.

The module tree mirrors ``torch.nn.Module`` closely enough that the paper's
hook-injection strategy (Sec. 7.1) carries over verbatim:

* "pre forward/backward hooks ... trigger allgather collectives to collect
  the parameters required before its forward/backward pass";
* "post forward/backward hooks ... trigger parameter/gradient partitioning
  and optionally offloading".

Unlike PyTorch there is no autograd tape: composite modules implement
``_backward`` explicitly, calling ``submodule.backward(...)`` in reverse
order.  ``backward()`` fires the same four hook points the engine needs, so
the coordinator cannot tell the difference.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.nn.parameter import Parameter, ParameterDict

# Hook signatures (all return values ignored unless stated):
#   forward_pre_hook(module, args)
#   forward_hook(module, args, output) -> optional replacement output
#   backward_pre_hook(module, grad_output)
#   backward_hook(module, grad_input)
Hook = Callable


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        # assign via object.__setattr__ so our __setattr__ can rely on them
        object.__setattr__(self, "_parameters", ParameterDict())
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_pre_hooks", [])
        object.__setattr__(self, "_forward_hooks", [])
        object.__setattr__(self, "_backward_pre_hooks", [])
        object.__setattr__(self, "_backward_hooks", [])
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_cache", None)

    # --- attribute plumbing ----------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        # only called when normal lookup fails
        parameters = object.__getattribute__(self, "_parameters")
        if name in parameters:
            return parameters[name]  # goes through ParameterDict.__getitem__
        modules = object.__getattribute__(self, "_modules")
        if name in modules:
            return modules[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # --- tree traversal --------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, mod in self._modules.items():
            sub = f"{prefix}.{name}" if prefix else name
            yield from mod.named_modules(sub)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Hierarchically named parameters, deduplicated by identity.

        Dedup matters because tied weights (external parameters) appear in
        two modules; optimizer construction must see them once.
        """
        seen: set[int] = set()
        for mod_name, mod in self.named_modules(prefix):
            for p_name, p in mod._parameters.items():
                if id(p) in seen:
                    continue
                seen.add(id(p))
                yield (f"{mod_name}.{p_name}" if mod_name else p_name), p

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def direct_parameters(self) -> list[Parameter]:
        """Parameters owned by this module itself (not descendants)."""
        return list(self._parameters.values())

    def num_parameters(self) -> int:
        return sum(p.full_numel for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            object.__setattr__(m, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def name_parameters(self, prefix: str = "") -> None:
        """Assign hierarchical names onto the parameters themselves."""
        for name, p in self.named_parameters(prefix):
            p.name = name

    # --- hooks ---------------------------------------------------------------
    def register_forward_pre_hook(self, hook: Hook) -> Callable[[], None]:
        self._forward_pre_hooks.append(hook)
        return lambda: self._forward_pre_hooks.remove(hook)

    def register_forward_hook(self, hook: Hook) -> Callable[[], None]:
        self._forward_hooks.append(hook)
        return lambda: self._forward_hooks.remove(hook)

    def register_backward_pre_hook(self, hook: Hook) -> Callable[[], None]:
        self._backward_pre_hooks.append(hook)
        return lambda: self._backward_pre_hooks.remove(hook)

    def register_backward_hook(self, hook: Hook) -> Callable[[], None]:
        self._backward_hooks.append(hook)
        return lambda: self._backward_hooks.remove(hook)

    # --- execution ---------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        # iterate over snapshots: hooks may register further hooks (e.g.
        # external-parameter auto-registration fires inside a forward hook)
        for hook in list(self._forward_pre_hooks):
            hook(self, args)
        output = self.forward(*args, **kwargs)
        for hook in list(self._forward_hooks):
            replaced = hook(self, args, output)
            if replaced is not None:
                output = replaced
        return output

    def backward(self, grad_output):
        """Run the backward pass of the most recent forward."""
        for hook in list(self._backward_pre_hooks):
            hook(self, grad_output)
        grad_input = self._backward(grad_output)
        for hook in list(self._backward_hooks):
            hook(self, grad_input)
        return grad_input

    # --- to be implemented by subclasses ------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__}.forward")

    def _backward(self, grad_output):  # pragma: no cover - abstract
        raise NotImplementedError(f"{type(self).__name__}._backward")

    # --- misc ----------------------------------------------------------------
    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, mod in self._modules.items():
            sub = repr(mod).splitlines()
            lines.append(f"  ({name}): " + sub[0])
            lines.extend("  " + s for s in sub[1:])
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else lines[0] + ")"
