"""Leaf layers: Linear, LayerNorm, Embedding, GELU, Dropout, Sequential.

Leaf layers own parameters directly — they are where the ZeRO engine's hooks
gather and release parameters, so each accesses its parameters exactly once
per forward (via the interceptable parameter dict) and caches activations on
``self._cache`` for its explicit backward.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.parameter import Parameter, kaiming_uniform, normal_init
from repro.utils.rng import seeded_rng


class Linear(Module):
    """``y = x @ W.T + b`` with ``W`` of shape ``[out_features, in_features]``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = rng if rng is not None else seeded_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_uniform(rng, (out_features, in_features), in_features, dtype)
        )
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=dtype))
        else:
            self.has_bias = False
        self.has_bias = bias

    def forward(self, x: np.ndarray) -> np.ndarray:
        w = self.weight  # through the interceptable dict
        b = self.bias.data if self.has_bias else None
        y, cache = F.linear_fwd(x, w.data, b)
        self._cache = cache
        return y

    def _backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("Linear.backward before forward")
        grad_x, grad_w, grad_b = F.linear_bwd(grad_y, self._cache)
        self.weight.accumulate_grad(grad_w)
        if self.has_bias and grad_b is not None:
            self.bias.accumulate_grad(grad_b)
        self._cache = None
        return grad_x

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.has_bias}"


class LayerNorm(Module):
    """Affine layer normalization over the last axis."""

    def __init__(self, dim: int, *, eps: float = 1e-5, dtype=np.float32) -> None:
        super().__init__()
        if dim <= 0:
            raise ValueError("LayerNorm dim must be positive")
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim, dtype=dtype))
        self.bias = Parameter(np.zeros(dim, dtype=dtype))

    def forward(self, x: np.ndarray) -> np.ndarray:
        y, cache = F.layernorm_fwd(x, self.gain.data, self.bias.data, eps=self.eps)
        self._cache = cache
        return y

    def _backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("LayerNorm.backward before forward")
        grad_x, grad_gain, grad_bias = F.layernorm_bwd(grad_y, self._cache)
        self.gain.accumulate_grad(grad_gain)
        self.bias.accumulate_grad(grad_bias)
        self._cache = None
        return grad_x

    def extra_repr(self) -> str:
        return f"dim={self.dim}"


class Embedding(Module):
    """Token-id -> vector lookup table of shape ``[vocab, dim]``."""

    def __init__(
        self,
        vocab: int,
        dim: int,
        *,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        if vocab <= 0 or dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        rng = rng if rng is not None else seeded_rng(0)
        self.vocab = vocab
        self.dim = dim
        self.weight = Parameter(normal_init(rng, (vocab, dim), dtype=dtype))

    def forward(self, ids: np.ndarray) -> np.ndarray:
        y, cache = F.embedding_fwd(ids, self.weight.data)
        self._cache = cache
        return y

    def _backward(self, grad_y: np.ndarray) -> Optional[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("Embedding.backward before forward")
        grad_table = F.embedding_bwd(grad_y, self._cache)
        self.weight.accumulate_grad(grad_table)
        self._cache = None
        return None  # ids carry no gradient

    def extra_repr(self) -> str:
        return f"vocab={self.vocab}, dim={self.dim}"


class GELU(Module):
    """tanh-approximation GELU (parameter-free)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        y, cache = F.gelu_fwd(x)
        self._cache = cache
        return y

    def _backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("GELU.backward before forward")
        grad_x = F.gelu_bwd(grad_y, self._cache)
        self._cache = None
        return grad_x


class Dropout(Module):
    """Inverted dropout; inert in eval mode or at p=0."""

    def __init__(self, p: float = 0.0, *, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else seeded_rng(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        y, cache = F.dropout_fwd(x, self.p, self.rng, training=self.training)
        self._cache = cache
        return y

    def _backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("Dropout.backward before forward")
        grad_x = F.dropout_bwd(grad_y, self._cache)
        self._cache = None
        return grad_x

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Sequential(Module):
    """Run submodules in order; backward runs them in reverse."""

    def __init__(self, *mods: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for i, m in enumerate(mods):
            name = str(i)
            setattr(self, name, m)
            self._order.append(name)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, i: int) -> Module:
        return self._modules[self._order[i]]

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x

    def _backward(self, grad):
        for name in reversed(self._order):
            grad = self._modules[name].backward(grad)
        return grad
