"""Parameters and the interceptable parameter hash table.

Sec. 7.1.1: "PyTorch modules store their tensor parameters in a hash table.
At the initialization time, we replace the hash table with a subclassed type
that overrides the tensor accesses."  :class:`ParameterDict` is that hash
table; the ZeRO engine swaps in a subclass whose ``__getitem__`` gathers
partitioned parameters on touch and registers them as external.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Optional

import numpy as np

from repro.tensor.dtypes import DType, dtype_of

_param_ids = itertools.count()


class PartitionState(Enum):
    """Lifecycle of a ZeRO-3 parameter (Sec. 2 'ZeRO-3' description)."""

    AVAILABLE = "available"  # full tensor resident, usable by compute
    PARTITIONED = "partitioned"  # only this rank's shard held (maybe offloaded)
    INFLIGHT = "inflight"  # allgather/fetch issued, not yet complete


class Parameter:
    """A trainable tensor with gradient and ZeRO partition state.

    ``data`` holds the full tensor while :attr:`state` is ``AVAILABLE``.
    When the ZeRO engine partitions the parameter it replaces ``data`` with
    an empty placeholder and records shard bookkeeping in ``zero_meta``
    (opaque to this class).  ``unique_id`` survives data swaps — it is the
    key used by the offload store and the prefetcher's operator trace.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "name",
        "unique_id",
        "state",
        "zero_meta",
    )

    def __init__(
        self,
        data: np.ndarray,
        *,
        requires_grad: bool = True,
        name: str = "",
    ) -> None:
        self.data = np.ascontiguousarray(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self.name = name
        self.unique_id = next(_param_ids)
        self.state = PartitionState.AVAILABLE
        self.zero_meta = None

    # --- shape/dtype ------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def numel(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def dtype(self) -> DType:
        return dtype_of(self.data)

    @property
    def full_shape(self) -> tuple[int, ...]:
        """Logical shape even while partitioned (from zero_meta if present)."""
        if self.zero_meta is not None and hasattr(self.zero_meta, "full_shape"):
            return tuple(self.zero_meta.full_shape)
        return self.data.shape

    @property
    def full_numel(self) -> int:
        n = 1
        for s in self.full_shape:
            n *= s
        return n

    # --- gradient management ---------------------------------------------------
    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``.grad`` (allocating on first touch)."""
        if not self.requires_grad:
            return
        if grad.shape != self.full_shape:
            raise ValueError(
                f"grad shape {grad.shape} != param shape {self.full_shape}"
                f" for {self.name or self.unique_id}"
            )
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return (
            f"Parameter({self.name!r}, shape={self.full_shape},"
            f" state={self.state.value})"
        )


class ParameterDict(dict):
    """The module parameter hash table.

    A plain dict subclass so the engine can *replace* it with a further
    subclass that intercepts ``__getitem__`` (see
    :class:`repro.core.external.InterceptingParameterDict`).  Keys are
    attribute names, values are :class:`Parameter`.
    """

    def touched(self, key: str, param: Parameter) -> Parameter:
        """Hook point called on every access; identity by default."""
        return param

    def __getitem__(self, key: str) -> Parameter:
        return self.touched(key, super().__getitem__(key))


def kaiming_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, dtype=np.float32
) -> np.ndarray:
    """He-style uniform init, the default for linear weights."""
    bound = 1.0 / np.sqrt(max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def normal_init(
    rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02, dtype=np.float32
) -> np.ndarray:
    """GPT-2 style normal init for embeddings."""
    return (rng.standard_normal(shape) * std).astype(dtype)
