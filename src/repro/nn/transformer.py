"""GPT-like transformer: blocks, config, and the full language model.

Matches the architecture the paper analyzes in Sec. 3: each block carries
four linear layers of shapes ``(hd, 3hd)``, ``(hd, hd)``, ``(hd, 4hd)`` and
``(4hd, hd)``, giving ``12 * nl * hd^2`` parameters.  The LM head ties the
embedding weight (GPT-style), which makes it the canonical *external
parameter* (Sec. 7.1.1) the engine must detect and gather across module
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadAttention
from repro.nn.checkpoint import CheckpointedBlock
from repro.nn.layers import Dropout, Embedding, GELU, LayerNorm, Linear
from repro.nn.module import Module
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class TransformerConfig:
    """Model hyperparameters, in the paper's notation (nl, hd, attn_heads)."""

    num_layers: int
    hidden_dim: int
    num_heads: int
    vocab_size: int = 50_257
    max_seq: int = 1024
    dropout: float = 0.0
    tie_embeddings: bool = True
    activation_checkpointing: bool = False
    checkpoint_interval: int = 1  # ci: blocks between checkpoints

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_dim <= 0 or self.num_heads <= 0:
            raise ValueError("num_layers, hidden_dim, num_heads must be positive")
        if self.hidden_dim % self.num_heads:
            raise ValueError("hidden_dim must divide evenly among heads")

    @property
    def approx_params(self) -> int:
        """Eq. (1): ``12 * nl * hd^2`` (transformer-block linears only)."""
        return 12 * self.num_layers * self.hidden_dim**2


class MLP(Module):
    """The feed-forward half of a block: ``(hd,4hd) -> GELU -> (4hd,hd)``."""

    def __init__(
        self,
        hidden_dim: int,
        *,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else seeded_rng(0)
        self.fc_in = Linear(hidden_dim, 4 * hidden_dim, rng=rng, dtype=dtype)
        self.act = GELU()
        self.fc_out = Linear(4 * hidden_dim, hidden_dim, rng=rng, dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc_out(self.act(self.fc_in(x)))

    def _backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.fc_out.backward(grad)
        grad = self.act.backward(grad)
        return self.fc_in.backward(grad)


class TransformerBlock(Module):
    """Pre-norm block: ``x + attn(ln1(x))`` then ``x + mlp(ln2(x))``."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        *,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else seeded_rng(0)
        self.ln1 = LayerNorm(hidden_dim, dtype=dtype)
        self.attn = MultiHeadAttention(hidden_dim, num_heads, rng=rng, dtype=dtype)
        self.drop1 = Dropout(dropout, rng=rng)
        self.ln2 = LayerNorm(hidden_dim, dtype=dtype)
        self.mlp = MLP(hidden_dim, rng=rng, dtype=dtype)
        self.drop2 = Dropout(dropout, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.drop1(self.attn(self.ln1(x)))
        x = x + self.drop2(self.mlp(self.ln2(x)))
        return x

    def _backward(self, grad: np.ndarray) -> np.ndarray:
        # second residual: x2 = x1 + drop2(mlp(ln2(x1)))
        g = self.drop2.backward(grad)
        g = self.mlp.backward(g)
        g = self.ln2.backward(g)
        grad = grad + g
        # first residual: x1 = x0 + drop1(attn(ln1(x0)))
        g = self.drop1.backward(grad)
        g = self.attn.backward(g)
        g = self.ln1.backward(g)
        return grad + g


class CrossEntropyHead(Module):
    """LM head: project to vocab with a (possibly tied) weight, then NLL.

    When ``tied_weight`` is provided the projection reuses the embedding
    table across module boundaries — the external-parameter scenario of
    Sec. 7.1.1.  The tied weight lives in this module's parameter dict under
    the name ``weight`` *as the same object*, so parameter traversal
    deduplicates it while hook-driven engines see the access.
    """

    def __init__(
        self,
        hidden_dim: int,
        vocab_size: int,
        *,
        tied_weight=None,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        from repro.nn.parameter import Parameter, normal_init

        self.hidden_dim = hidden_dim
        self.vocab_size = vocab_size
        if tied_weight is not None:
            if tuple(tied_weight.full_shape) != (vocab_size, hidden_dim):
                raise ValueError(
                    f"tied weight shape {tied_weight.full_shape} != "
                    f"({vocab_size}, {hidden_dim})"
                )
            self.weight = tied_weight  # shared Parameter object
            self.tied = True
        else:
            rng = rng if rng is not None else seeded_rng(0)
            self.weight = Parameter(
                normal_init(rng, (vocab_size, hidden_dim), dtype=dtype)
            )
            self.tied = False

    def forward(self, x: np.ndarray, targets: np.ndarray) -> float:
        w = self.weight  # through the interceptable dict (external-param hook)
        logits, lin_cache = F.linear_fwd(x, w.data, None)
        loss, ce_cache = F.cross_entropy_fwd(logits, targets)
        self._cache = (lin_cache, ce_cache)
        return loss

    def _backward(self, grad_loss: float) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("CrossEntropyHead.backward before forward")
        lin_cache, ce_cache = self._cache
        grad_logits = F.cross_entropy_bwd(grad_loss, ce_cache)
        grad_x, grad_w, _ = F.linear_bwd(grad_logits, lin_cache)
        self.weight.accumulate_grad(grad_w)
        self._cache = None
        return grad_x

    def project(self, x: np.ndarray) -> np.ndarray:
        """Vocabulary logits without a loss (the inference path).

        Accesses the (possibly tied, possibly partitioned) weight through
        the parameter dict, so under ZeRO-3 the access-interception
        mechanism gathers it on touch (Sec. 7.1.1).
        """
        w = self.weight
        logits, _ = F.linear_fwd(x, w.data, None)
        return logits

    def extra_repr(self) -> str:
        return f"hd={self.hidden_dim}, vocab={self.vocab_size}, tied={self.tied}"


class GPTModel(Module):
    """Token + position embeddings, ``nl`` blocks, final norm, LM head.

    ``forward(ids, targets)`` returns the mean cross-entropy loss;
    ``backward(1.0)`` (or the loss scale) accumulates all parameter grads.
    """

    def __init__(
        self,
        config: TransformerConfig,
        *,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else seeded_rng(0)
        self.config = config
        self.tok_emb = Embedding(config.vocab_size, config.hidden_dim, rng=rng, dtype=dtype)
        self.pos_emb = Embedding(config.max_seq, config.hidden_dim, rng=rng, dtype=dtype)
        self._block_names: list[str] = []
        for i in range(config.num_layers):
            block = TransformerBlock(
                config.hidden_dim,
                config.num_heads,
                dropout=config.dropout,
                rng=rng,
                dtype=dtype,
            )
            if config.activation_checkpointing:
                block = CheckpointedBlock(block)
            name = f"block{i}"
            setattr(self, name, block)
            self._block_names.append(name)
        self.ln_f = LayerNorm(config.hidden_dim, dtype=dtype)
        self.head = CrossEntropyHead(
            config.hidden_dim,
            config.vocab_size,
            tied_weight=self.tok_emb._parameters["weight"]
            if config.tie_embeddings
            else None,
            rng=rng,
            dtype=dtype,
        )
        self.name_parameters()

    @property
    def blocks(self) -> list[Module]:
        return [self._modules[n] for n in self._block_names]

    def forward(self, ids: np.ndarray, targets: np.ndarray) -> float:
        if ids.ndim != 2:
            raise ValueError(f"ids must be [bsz, seq], got shape {ids.shape}")
        bsz, seq = ids.shape
        if seq > self.config.max_seq:
            raise ValueError(f"sequence length {seq} exceeds max {self.config.max_seq}")
        pos = np.broadcast_to(np.arange(seq), (bsz, seq))
        x = self.tok_emb(ids) + self.pos_emb(pos)
        for name in self._block_names:
            x = self._modules[name](x)
        x = self.ln_f(x)
        return self.head(x, targets)

    def _backward(self, grad_loss: float) -> None:
        grad = self.head.backward(grad_loss)
        grad = self.ln_f.backward(grad)
        for name in reversed(self._block_names):
            grad = self._modules[name].backward(grad)
        self.pos_emb.backward(grad)
        self.tok_emb.backward(grad)
        return None

    # --- inference --------------------------------------------------------------
    def logits(self, ids: np.ndarray) -> np.ndarray:
        """Next-token logits ``[bsz, seq, vocab]`` (no loss, no caching).

        Submodules run through ``__call__`` so ZeRO hooks still gather and
        release parameters; caches are dropped afterwards.
        """
        bsz, seq = ids.shape
        pos = np.broadcast_to(np.arange(seq), (bsz, seq))
        x = self.tok_emb(ids) + self.pos_emb(pos)
        for name in self._block_names:
            x = self._modules[name](x)
        x = self.ln_f(x)
        out = self.head.project(x)
        for m in self.modules():
            object.__setattr__(m, "_cache", None)
        return out

    def generate(
        self,
        ids: np.ndarray,
        max_new_tokens: int,
        *,
        temperature: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Autoregressive decoding; greedy at temperature 0.

        The context window slides when the sequence would exceed
        ``max_seq``.  Returns the prompt plus the generated tokens.
        """
        if max_new_tokens < 0:
            raise ValueError("max_new_tokens must be non-negative")
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if temperature > 0 and rng is None:
            raise ValueError("sampling (temperature > 0) requires an rng")
        out = np.array(ids, dtype=np.int64)
        for _ in range(max_new_tokens):
            window = out[:, -self.config.max_seq :]
            last = self.logits(window)[:, -1, :]
            if temperature == 0.0:
                nxt = last.argmax(axis=-1)
            else:
                probs, _ = F.softmax_fwd(last / temperature)
                probs = probs.astype(np.float64)
                probs /= probs.sum(axis=-1, keepdims=True)
                nxt = np.array(
                    [rng.choice(self.config.vocab_size, p=p) for p in probs]
                )
            out = np.concatenate([out, nxt[:, None]], axis=1)
        return out
