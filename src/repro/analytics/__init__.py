"""The paper's analytic models.

* :mod:`repro.analytics.memory_model` — Sec. 3: parameter counts and the
  memory footprints of model states, activation checkpoints, and working
  memory (Eqs. 1-5, the Fig. 2a table);
* :mod:`repro.analytics.bandwidth_model` — Sec. 4: arithmetic intensity and
  the bandwidth-efficiency relation (Eqs. 6-11, Fig. 3, Table 3);
* :mod:`repro.analytics.model_zoo` — the experiment configurations of
  Table 1 and appendix Tables 4-8.
"""

from repro.analytics.memory_model import (
    transformer_params,
    layers_for_params,
    model_states_bytes,
    activation_checkpoint_bytes,
    full_activation_bytes,
    mswm_bytes,
    awm_bytes,
    max_batch_for_cpu_checkpoints,
    MemoryRequirements,
    memory_requirements,
)
from repro.analytics.bandwidth_model import (
    ait_param_grad,
    ait_optimizer_states,
    ait_activation_checkpoints,
    efficiency,
    required_bandwidth,
    compute_per_iter_flops,
    EfficiencyModel,
)
from repro.analytics.model_zoo import (
    ExperimentConfig,
    TABLE1_CONFIGS,
    FIG6A_CONFIGS,
    FIG6B_CONFIGS,
    FIG6C_CONFIG,
    FIG6D_CONFIG,
    FIG6E_CONFIGS,
    FIG2A_ROWS,
)

__all__ = [
    "transformer_params",
    "layers_for_params",
    "model_states_bytes",
    "activation_checkpoint_bytes",
    "full_activation_bytes",
    "mswm_bytes",
    "awm_bytes",
    "max_batch_for_cpu_checkpoints",
    "MemoryRequirements",
    "memory_requirements",
    "ait_param_grad",
    "ait_optimizer_states",
    "ait_activation_checkpoints",
    "efficiency",
    "required_bandwidth",
    "compute_per_iter_flops",
    "EfficiencyModel",
    "ExperimentConfig",
    "TABLE1_CONFIGS",
    "FIG6A_CONFIGS",
    "FIG6B_CONFIGS",
    "FIG6C_CONFIG",
    "FIG6D_CONFIG",
    "FIG6E_CONFIGS",
    "FIG2A_ROWS",
]
