"""The paper's experiment configurations (Table 1, appendix Tables 4-8).

Every evaluation figure references one of these configurations; the bench
harness pulls them from here so the reproduced experiments run the exact
model shapes the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.memory_model import transformer_params
from repro.core.config import OffloadDevice


@dataclass(frozen=True)
class ExperimentConfig:
    """One row of an experiment-configuration table."""

    name: str
    num_nodes: int
    num_gpus: int
    mp_degree: int  # model-parallel (tensor-slicing) degree; 1 = none
    num_layers: int
    hidden_dim: int
    attn_heads: int
    batch_per_gpu: float
    seq: int = 1024
    param_device: OffloadDevice = OffloadDevice.NONE
    optimizer_device: OffloadDevice = OffloadDevice.NONE

    @property
    def params(self) -> int:
        """Approximate parameter count via Eq. (1)."""
        return transformer_params(self.num_layers, self.hidden_dim)

    @property
    def total_batch(self) -> float:
        return self.batch_per_gpu * self.num_gpus

    @property
    def dp_degree(self) -> int:
        return self.num_gpus // self.mp_degree


def _cfg(name, nodes, mp, nl, hd, heads, bsz, pdev, odev) -> ExperimentConfig:
    return ExperimentConfig(
        name=name,
        num_nodes=nodes,
        num_gpus=nodes * 16,
        mp_degree=mp,
        num_layers=nl,
        hidden_dim=hd,
        attn_heads=heads,
        batch_per_gpu=bsz,
        param_device=pdev,
        optimizer_device=odev,
    )


_G = OffloadDevice.NONE
_C = OffloadDevice.CPU
_N = OffloadDevice.NVME
_K = 1024  # the paper: "K for 1024"

#: Table 1: main experiment configurations.
TABLE1_CONFIGS: dict[str, ExperimentConfig] = {
    c.name: c
    for c in [
        _cfg("10B-1node", 1, 1, 50, 4 * _K, 16, 8, _G, _G),
        _cfg("50B-1node", 1, 1, 62, 8 * _K, 32, 26, _C, _N),
        _cfg("100B-1node", 1, 1, 125, 8 * _K, 32, 24, _C, _N),
        _cfg("0.5T-1node", 1, 1, 124, 18 * _K, 64, 8, _N, _N),
        _cfg("1T-1node", 1, 1, 128, 25 * _K, 128, 7, _N, _N),
        _cfg("0.5T-32node", 32, 4, 124, 18 * _K, 64, 7, _G, _G),
        _cfg("1T-32node", 32, 4, 128, 25 * _K, 128, 5, _G, _G),
        _cfg("5T-32node", 32, 4, 174, 48 * _K, 256, 3, _N, _N),
        _cfg("10T-32node", 32, 4, 200, 64 * _K, 512, 2, _N, _N),
        _cfg("20T-32node", 32, 8, 205, 88 * _K, 512, 1.25, _N, _N),
    ]
}

#: Table 4: Fig. 6a max-model-size configurations (single DGX-2, 16 GPUs).
FIG6A_CONFIGS: dict[str, ExperimentConfig] = {
    c.name: c
    for c in [
        _cfg("1.4B", 1, 1, 40, 1536, 16, 1, _G, _G),
        _cfg("10B", 1, 1, 50, 4096, 16, 1, _G, _G),
        _cfg("13B", 1, 1, 64, 4096, 16, 1, _G, _C),
        _cfg("20B-zero3", 1, 1, 98, 4096, 32, 1, _G, _G),
        _cfg("20B-3d", 1, 4, 98, 4096, 32, 1, _G, _G),
        _cfg("70B", 1, 1, 125, 8192, 32, 1, _C, _C),
        _cfg("1000B", 1, 4, 128, 25600, 256, 5, _N, _N),
    ]
}

#: Table 5: Fig. 6b max-hidden-size configurations (1-layer transformer).
FIG6B_CONFIGS: dict[int, ExperimentConfig] = {
    hd: ExperimentConfig(
        name=f"hd{hd}",
        num_nodes=1,
        num_gpus=16,
        mp_degree=1,
        num_layers=1,
        hidden_dim=hd,
        attn_heads=16 if hd < 65536 else 32,
        batch_per_gpu=1,
    )
    for hd in (8192, 16384, 32768, 65536)
}

#: Table 6: Fig. 6c configuration (8B model, sweep of GPU counts).
FIG6C_CONFIG = ExperimentConfig(
    name="8B-grad-offload",
    num_nodes=4,
    num_gpus=64,
    mp_degree=1,
    num_layers=10,
    hidden_dim=8192,
    attn_heads=16,
    batch_per_gpu=2,
)
FIG6C_GPU_SWEEP = (4, 16, 32, 64)

#: Table 7: Fig. 6d configuration (8B model, batch-size sweep on 64 GPUs).
FIG6D_CONFIG = ExperimentConfig(
    name="8B-overlap",
    num_nodes=4,
    num_gpus=64,
    mp_degree=1,
    num_layers=10,
    hidden_dim=8192,
    attn_heads=16,
    batch_per_gpu=2,
)
FIG6D_BATCH_SWEEP = (2, 4, 8, 10, 14, 16)

#: Table 8: Fig. 6e configurations (activation checkpoint offload).
FIG6E_CONFIGS: dict[int, ExperimentConfig] = {
    hd: ExperimentConfig(
        name=f"act-offload-hd{hd}",
        num_nodes=4 if hd == 65536 else 2,
        num_gpus=64 if hd == 65536 else 32,
        mp_degree=1,
        num_layers=5,
        hidden_dim=hd,
        attn_heads=16,
        batch_per_gpu=4,
        optimizer_device=_N if hd == 65536 else _C,
    )
    for hd in (2048, 8192, 16384, 32768, 65536)
}

#: Fig. 2a rows: (params_label, layers, hidden, attn_heads).  Hidden sizes
#: are the paper's "10K"-style labels, interpreted as multiples of 1024.
FIG2A_ROWS: list[tuple[str, int, int, int]] = [
    ("0.10T", 80, 10 * _K, 128),
    ("0.50T", 100, 20 * _K, 160),
    ("1.01T", 128, 25 * _K, 256),
    ("10.05T", 195, 64 * _K, 512),
    ("101.47T", 315, 160 * _K, 1024),
]
