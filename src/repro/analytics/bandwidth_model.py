"""Bandwidth requirements for efficient training (Sec. 4).

Implements the efficiency metric and the arithmetic-intensity expressions:

* Eq. (6): ``efficiency = ait*bw / (ait*bw + peak_tp)``;
* Eqs. (7)-(8): total computation per iteration
  ``2 * 4 * bsz * seq * params`` (fwd + 2x bwd + 1x recompute);
* Eq. (9): AIT w.r.t. parameters and gradients = ``seq * bsz``;
* Eq. (10): AIT w.r.t. optimizer states = ``seq * bsz / 4``;
* Eq. (11): AIT w.r.t. activation checkpoints = ``24 * hd * ci``.

``peak_tp`` defaults to the 70 TFlops/GPU the paper measured empirically on
V100s for hidden sizes 8K-64K (Sec. 4.2).  :func:`required_bandwidth`
inverts Eq. (6), which is how Table 3's future-hardware rows are produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import TFLOP

DEFAULT_PEAK_TP = 70 * TFLOP  # achievable single-GPU peak (Sec. 4.2)


def compute_per_iter_flops(*, bsz: int, seq: int, params: int) -> float:
    """Eq. (7): forward (2x) + backward (4x) + recompute (2x) per token."""
    if bsz <= 0 or seq <= 0 or params <= 0:
        raise ValueError("bsz, seq and params must be positive")
    return 2.0 * 4.0 * bsz * seq * params


def ait_param_grad(*, seq: int, bsz: int) -> float:
    """Eq. (9): FLOPs per byte moved for parameters + gradients.

    Derivation (Sec. 4.1): params are loaded for forward, backward, and
    recompute (3x) and gradients stored once (1x), i.e. ``4 * params``
    tensors = ``8 * params`` bytes in fp16, against ``8 * bsz * seq *
    params`` FLOPs — leaving ``seq * bsz``.
    """
    if seq <= 0 or bsz <= 0:
        raise ValueError("seq and bsz must be positive")
    return float(seq * bsz)


def ait_optimizer_states(*, seq: int, bsz: int) -> float:
    """Eq. (10): optimizer states are read+written once = 32x params bytes."""
    if seq <= 0 or bsz <= 0:
        raise ValueError("seq and bsz must be positive")
    return seq * bsz / 4.0


def ait_activation_checkpoints(*, hidden_dim: int, ci: int = 1) -> float:
    """Eq. (11): checkpoints are written in fwd and read in bwd."""
    if hidden_dim <= 0 or ci <= 0:
        raise ValueError("hidden_dim and ci must be positive")
    return 24.0 * hidden_dim * ci


def efficiency(*, ait: float, bw: float, peak_tp: float = DEFAULT_PEAK_TP) -> float:
    """Eq. (6): fraction of peak sustained at data-movement bandwidth ``bw``.

    ``bw`` in bytes/s, ``peak_tp`` in FLOP/s, ``ait`` in FLOP/byte.
    """
    if ait <= 0 or bw <= 0 or peak_tp <= 0:
        raise ValueError("ait, bw and peak_tp must be positive")
    x = ait * bw
    return x / (x + peak_tp)


def required_bandwidth(
    *, ait: float, target_efficiency: float, peak_tp: float = DEFAULT_PEAK_TP
) -> float:
    """Invert Eq. (6): bandwidth needed to sustain ``target_efficiency``."""
    if not 0.0 < target_efficiency < 1.0:
        raise ValueError("target_efficiency must be in (0, 1)")
    if ait <= 0 or peak_tp <= 0:
        raise ValueError("ait and peak_tp must be positive")
    return peak_tp / ait * target_efficiency / (1.0 - target_efficiency)


@dataclass(frozen=True)
class EfficiencyModel:
    """Eq. (6) bound to a workload (seq, bsz, hd, ci) and device peak."""

    seq: int = 1024
    bsz: int = 2
    hidden_dim: int = 8192
    ci: int = 1
    peak_tp: float = DEFAULT_PEAK_TP

    def param_grad_efficiency(self, bw: float) -> float:
        return efficiency(
            ait=ait_param_grad(seq=self.seq, bsz=self.bsz),
            bw=bw,
            peak_tp=self.peak_tp,
        )

    def optimizer_efficiency(self, bw: float) -> float:
        return efficiency(
            ait=ait_optimizer_states(seq=self.seq, bsz=self.bsz),
            bw=bw,
            peak_tp=self.peak_tp,
        )

    def activation_efficiency(self, bw: float) -> float:
        return efficiency(
            ait=ait_activation_checkpoints(hidden_dim=self.hidden_dim, ci=self.ci),
            bw=bw,
            peak_tp=self.peak_tp,
        )

    def future_hardware_row(
        self, *, peak_multiplier: float, num_devices: int = 512
    ) -> dict[str, float]:
        """One Table 3 row: bandwidth needs when compute grows by ``x``.

        The slow-memory bound is the optimizer-state requirement at 90%
        efficiency with batch 2/GPU — the Sec. 4.2 worst case ("nearly
        1.5 TB/s").  Because ZeRO-Infinity partitions the optimizer step
        across all devices (Sec. 5.2.2), that aggregate divides by the
        device count to give the per-device slow-memory bandwidth (the
        paper's 3 GB/s on V100).  GPU-GPU comes from the parameter/gradient
        bound at 50% efficiency with batch 1 (the paper's 70 GB/s).
        """
        peak = self.peak_tp * peak_multiplier
        slow_aggregate = required_bandwidth(
            ait=ait_optimizer_states(seq=self.seq, bsz=2),
            target_efficiency=0.9,
            peak_tp=peak,
        )
        gpu_gpu = required_bandwidth(
            ait=ait_param_grad(seq=self.seq, bsz=1),
            target_efficiency=0.5,
            peak_tp=peak,
        )
        return {
            "devices": float(num_devices),
            "peak_pflops_per_device": peak / 1e15,
            "slow_memory_bw_per_device": slow_aggregate / num_devices,
            "slow_memory_aggregate_bw": slow_aggregate,
            "gpu_to_gpu_bw": gpu_gpu,
        }
