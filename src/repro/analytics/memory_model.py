"""Memory requirements for large-model training (Sec. 3).

Implements Eqs. (1)-(5) exactly as stated:

* Eq. (1): transformer parameter count ``12 * nl * hd^2``;
* Eq. (2): model-state bytes ``240 * nl * hd^2`` (20 bytes/param under
  mixed-precision Adam);
* Eq. (3): activation-checkpoint bytes ``2 * bsz * seq * hd * nl / ci``;
* Eq. (4): model-state working memory ``4 * hd * 4hd`` bytes — the fp16
  parameter + gradient of the largest ``(hd, 4hd)`` linear;
* Eq. (5): activation working memory
  ``bsz * seq * ci * (16 hd + 2 attn_heads * seq)`` bytes.

:func:`memory_requirements` bundles them per model configuration and is what
the Fig. 2a bench tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tensor.dtypes import BYTES_PER_PARAM_TOTAL


def transformer_params(num_layers: int, hidden_dim: int) -> int:
    """Eq. (1): approximate parameter count of a GPT-like transformer."""
    if num_layers <= 0 or hidden_dim <= 0:
        raise ValueError("num_layers and hidden_dim must be positive")
    return 12 * num_layers * hidden_dim**2


def layers_for_params(total_params: int, hidden_dim: int) -> int:
    """Invert Eq. (1): layers needed to reach ``total_params`` at ``hd``."""
    if total_params <= 0 or hidden_dim <= 0:
        raise ValueError("total_params and hidden_dim must be positive")
    return max(1, round(total_params / (12 * hidden_dim**2)))


def model_states_bytes(params: int) -> int:
    """Eq. (2): 20 bytes per parameter (fp16 p+g, fp32 Adam state)."""
    if params < 0:
        raise ValueError("params must be non-negative")
    return BYTES_PER_PARAM_TOTAL * params


def activation_checkpoint_bytes(
    *, bsz: int, seq: int, hidden_dim: int, num_layers: int, ci: int = 1
) -> int:
    """Eq. (3): fp16 checkpoints, one per ``ci`` transformer blocks."""
    if ci <= 0:
        raise ValueError("ci must be positive")
    return 2 * bsz * seq * hidden_dim * num_layers // ci


def full_activation_bytes(
    *, bsz: int, seq: int, hidden_dim: int, num_layers: int, attn_heads: int
) -> int:
    """All intermediate activations (no checkpointing): Eq. (5) x nl blocks.

    This is the "Act." column of Fig. 2a — the memory checkpointing saves.
    """
    return num_layers * awm_bytes(
        bsz=bsz, seq=seq, hidden_dim=hidden_dim, attn_heads=attn_heads, ci=1
    )


def mswm_bytes(hidden_dim: int) -> int:
    """Eq. (4): fp16 parameter+gradient of the largest (hd, 4hd) linear."""
    if hidden_dim <= 0:
        raise ValueError("hidden_dim must be positive")
    return 4 * hidden_dim * 4 * hidden_dim


def awm_bytes(
    *, bsz: int, seq: int, hidden_dim: int, attn_heads: int, ci: int = 1
) -> int:
    """Eq. (5): activations between two consecutive checkpoints."""
    if bsz <= 0 or seq <= 0 or hidden_dim <= 0 or attn_heads <= 0 or ci <= 0:
        raise ValueError("all dimensions must be positive")
    return bsz * seq * ci * (16 * hidden_dim + 2 * attn_heads * seq)


def max_batch_for_cpu_checkpoints(
    *,
    cpu_bytes_per_node: int,
    gpus_per_node: int,
    hidden_dim: int,
    num_layers: int,
    seq: int = 1024,
    ci: int = 1,
    reserve_fraction: float = 0.2,
) -> float:
    """Largest per-GPU batch whose activation checkpoints fit CPU memory.

    Sec. 8.2 attributes the 20T throughput drop to "an extremely small
    batch size per GPU ... as a result of limited CPU memory to store
    activation checkpoints"; this inverts Eq. (3) to expose that ceiling.
    ``reserve_fraction`` holds back CPU memory for pinned buffers and the
    staging the offload engine needs.
    """
    if cpu_bytes_per_node <= 0 or gpus_per_node <= 0:
        raise ValueError("cpu_bytes_per_node and gpus_per_node must be positive")
    budget = cpu_bytes_per_node * (1.0 - reserve_fraction)
    per_unit = activation_checkpoint_bytes(
        bsz=gpus_per_node, seq=seq, hidden_dim=hidden_dim, num_layers=num_layers, ci=ci
    )
    return budget / per_unit


@dataclass(frozen=True)
class MemoryRequirements:
    """All Sec.-3 quantities for one model/workload configuration."""

    params: int
    model_states: int  # bytes, total across the cluster
    activation_checkpoints: int  # bytes per node (checkpointed)
    full_activations: int  # bytes per node (no checkpointing)
    mswm: int  # bytes per GPU
    awm: int  # bytes per GPU


def memory_requirements(
    *,
    num_layers: int,
    hidden_dim: int,
    attn_heads: int,
    bsz_per_node: int = 32,
    bsz_per_gpu: int = 4,
    seq: int = 1024,
    ci: int = 1,
) -> MemoryRequirements:
    """Sec. 3 profile using the paper's Fig. 2a workload defaults.

    Fig. 2a uses batch 32 per node for the activation columns (2 per GPU on
    16 GPUs, conservative) and a per-GPU batch for the working-memory
    columns.
    """
    params = transformer_params(num_layers, hidden_dim)
    return MemoryRequirements(
        params=params,
        model_states=model_states_bytes(params),
        activation_checkpoints=activation_checkpoint_bytes(
            bsz=bsz_per_node,
            seq=seq,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            ci=ci,
        ),
        full_activations=full_activation_bytes(
            bsz=bsz_per_node,
            seq=seq,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            attn_heads=attn_heads,
        ),
        mswm=mswm_bytes(hidden_dim),
        awm=awm_bytes(
            bsz=bsz_per_gpu,
            seq=seq,
            hidden_dim=hidden_dim,
            attn_heads=attn_heads,
            ci=ci,
        ),
    )
