"""Memory accounting and a fragmentation-aware allocator.

Two cooperating pieces:

* :class:`MemoryLedger` — lightweight byte counters per device tier, used by
  the functional engine to check that a training configuration respects the
  modeled capacities (the "does it fit" half of the paper's scale claims).

* :class:`FirstFitAllocator` — an address-space allocator with first-fit
  placement over a free list.  It reproduces the contiguity failure mode the
  paper studies: MSWM "requires multiple gigabytes in contiguous memory,
  which can result in running out of memory ... due to lack of enough
  contiguous memory" (Sec. 3).  The Fig. 6b experiment pre-fragments GPU
  memory into 2 GB chunks; :meth:`FirstFitAllocator.pre_fragment` implements
  that literally by capping the maximum contiguous block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tensor.device import Device, DeviceKind


class AllocationError(MemoryError):
    """Raised when an allocation cannot be satisfied.

    Carries enough context to distinguish a capacity failure from a
    fragmentation failure, which is the distinction Fig. 6b turns on.
    """

    def __init__(self, message: str, *, requested: int, free: int, largest: int):
        super().__init__(message)
        self.requested = requested
        self.free = free
        self.largest_contiguous = largest


@dataclass
class MemoryLedger:
    """Byte counters per device tier, with optional capacity caps.

    ``capacities`` maps tier kind ("gpu"/"cpu"/"nvme") to a per-device byte
    limit; allocate() raises :class:`AllocationError` on overflow when a cap
    is configured.  GPU indices are tracked separately so a 16-GPU node's
    per-device HBM is not pooled.

    Beyond the bare counters, the ledger carries *attribution* — every
    allocation may be tagged with a category (see
    ``repro.obs.memscope.CATEGORIES``) and an owner — and a *watermark*
    API (:meth:`watermark`) that snapshots per-kind usage under a label,
    so exception-unwind tests can assert the ledger returns to its
    pre-step level instead of inflating across aborted steps.
    """

    capacities: dict[str, int] = field(default_factory=dict)
    usage: dict[Device, int] = field(default_factory=dict)
    peak: dict[Device, int] = field(default_factory=dict)
    # (kind, category) -> bytes currently attributed
    attribution: dict[tuple[str, str], int] = field(default_factory=dict)
    # labelled usage snapshots: (label, {kind: bytes})
    watermarks: list[tuple[str, dict[str, int]]] = field(default_factory=list)
    underflows: int = 0

    def allocate(
        self,
        device: Device,
        nbytes: int,
        *,
        category: str = "workspace",
        owner: str = "",
    ) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        current = self.usage.get(device, 0) + nbytes
        cap = self.capacities.get(device.kind.value)
        if cap is not None and current > cap:
            raise AllocationError(
                f"{device}: {current} bytes exceeds capacity {cap}"
                f" (category={category}"
                + (f", owner={owner}" if owner else "")
                + ")",
                requested=nbytes,
                free=max(cap - self.usage.get(device, 0), 0),
                largest=max(cap - self.usage.get(device, 0), 0),
            )
        self.usage[device] = current
        self.peak[device] = max(self.peak.get(device, 0), current)
        akey = (device.kind.value, category)
        self.attribution[akey] = self.attribution.get(akey, 0) + nbytes

    def free(
        self,
        device: Device,
        nbytes: int,
        *,
        category: str = "workspace",
        owner: str = "",
    ) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        current = self.usage.get(device, 0) - nbytes
        if current < 0:
            raise ValueError(f"{device}: freeing more bytes than allocated")
        self.usage[device] = current
        akey = (device.kind.value, category)
        held = self.attribution.get(akey, 0)
        removed = min(held, nbytes)
        if removed < nbytes:
            self.underflows += 1  # freed under a different tag than alloc'd
        if removed:
            left = held - removed
            if left:
                self.attribution[akey] = left
            else:
                del self.attribution[akey]

    def used(self, device: Device) -> int:
        return self.usage.get(device, 0)

    def attribution_by_kind(self, kind: DeviceKind | str) -> dict[str, int]:
        """Current bytes per category on one tier kind."""
        k = DeviceKind(kind).value
        return {c: v for (kk, c), v in self.attribution.items() if kk == k and v}

    def watermark(self, label: str) -> dict[str, int]:
        """Snapshot per-kind usage under ``label``; returns the snapshot."""
        snap: dict[str, int] = {}
        for d, v in self.usage.items():
            snap[d.kind.value] = snap.get(d.kind.value, 0) + v
        self.watermarks.append((label, snap))
        return snap

    def used_by_kind(self, kind: DeviceKind | str) -> int:
        k = DeviceKind(kind)
        return sum(v for d, v in self.usage.items() if d.kind is k)

    def peak_by_kind(self, kind: DeviceKind | str) -> int:
        k = DeviceKind(kind)
        return sum(v for d, v in self.peak.items() if d.kind is k)

    def reset_peak(self) -> None:
        self.peak = dict(self.usage)


@dataclass(frozen=True, slots=True)
class Block:
    """A half-open byte range ``[offset, offset + size)``."""

    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size


class FirstFitAllocator:
    """First-fit allocator over a linear address space.

    Free blocks are kept address-ordered and coalesced on free.  The
    allocator is deterministic, which makes fragmentation experiments
    reproducible.
    """

    def __init__(self, capacity: int, *, alignment: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if alignment <= 0 or (alignment & (alignment - 1)):
            raise ValueError("alignment must be a positive power of two")
        self.capacity = capacity
        self.alignment = alignment
        self._free: list[Block] = [Block(0, capacity)]
        self._allocated: dict[int, Block] = {}

    # --- introspection -------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return sum(b.size for b in self._free)

    @property
    def used_bytes(self) -> int:
        return self.capacity - self.free_bytes

    @property
    def largest_free_block(self) -> int:
        return max((b.size for b in self._free), default=0)

    @property
    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when memory is one free run."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def _round(self, nbytes: int) -> int:
        a = self.alignment
        return ((nbytes + a - 1) // a) * a

    # --- allocation ---------------------------------------------------------
    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` (rounded to alignment); returns the offset.

        Raises :class:`AllocationError` when no single free block is large
        enough — even if the *total* free memory would suffice.  That gap is
        precisely the fragmentation OOM of Sec. 3 / Fig. 6b.
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        size = self._round(nbytes)
        for i, blk in enumerate(self._free):
            if blk.size >= size:
                self._free.pop(i)
                if blk.size > size:
                    self._free.insert(i, Block(blk.offset + size, blk.size - size))
                self._allocated[blk.offset] = Block(blk.offset, size)
                return blk.offset
        raise AllocationError(
            f"cannot allocate {size} bytes: free={self.free_bytes},"
            f" largest contiguous={self.largest_free_block}",
            requested=size,
            free=self.free_bytes,
            largest=self.largest_free_block,
        )

    def free(self, offset: int) -> None:
        """Free the block at ``offset``, coalescing with neighbours."""
        try:
            blk = self._allocated.pop(offset)
        except KeyError as e:
            raise ValueError(f"no allocation at offset {offset}") from e
        # insert address-ordered
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].offset < blk.offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, blk)
        self._coalesce(lo)

    def _coalesce(self, idx: int) -> None:
        # merge with next
        if idx + 1 < len(self._free):
            cur, nxt = self._free[idx], self._free[idx + 1]
            if cur.end == nxt.offset:
                self._free[idx : idx + 2] = [Block(cur.offset, cur.size + nxt.size)]
        # merge with previous
        if idx > 0:
            prev, cur = self._free[idx - 1], self._free[idx]
            if prev.end == cur.offset:
                self._free[idx - 1 : idx + 1] = [
                    Block(prev.offset, prev.size + cur.size)
                ]

    # --- experiment support ---------------------------------------------------
    def pre_fragment(self, chunk_bytes: int) -> None:
        """Cap the largest contiguous free run at ``chunk_bytes``.

        Implements the Fig. 6b setup: "we pre fragment the total GPU memory
        into 2 GB contiguous chunks so that all memory allocation requests
        larger than 2GB will fail."  We place a one-alignment-unit pinned
        sentinel between consecutive chunks; sentinels are never freed.
        """
        if chunk_bytes <= self.alignment:
            raise ValueError("chunk size must exceed the alignment unit")
        if self._allocated:
            raise RuntimeError("pre_fragment requires a pristine allocator")
        sent = self.alignment
        new_free: list[Block] = []
        offset = 0
        while offset < self.capacity:
            run = min(chunk_bytes, self.capacity - offset)
            if run <= sent:
                break
            new_free.append(Block(offset, run))
            offset += run + sent  # sentinel hole is simply not in the free list
        self._free = new_free
        # Account sentinel bytes as permanently allocated.
        total_free = sum(b.size for b in new_free)
        self._sentinel_bytes = self.capacity - total_free
