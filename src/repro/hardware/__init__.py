"""Hardware models of the paper's evaluation platform.

Device specifications (V100 GPU, host CPU memory, NVMe drives, PCIe Gen3,
NVLink, InfiniBand), node and cluster topologies (NVIDIA DGX-2, DGX-2
SuperPOD), and a memory allocator with controllable fragmentation.  The
numbers default to those the paper states in Fig. 2b and Sec. 4-6.
"""

from repro.hardware.devices import (
    DeviceSpec,
    GPUSpec,
    LinkSpec,
    MemorySpec,
    V100_32GB,
    A100_80GB,
    DGX2_CPU_MEMORY,
    DGX2_NVME,
    PCIE_GEN3_X16,
    NVLINK_V100,
    INFINIBAND_800G,
)
from repro.hardware.topology import (
    ClusterTopology,
    NodeTopology,
    dgx2_node,
    dgx2_cluster,
    CLUSTER_PRESETS,
)
from repro.hardware.memory import (
    AllocationError,
    Block,
    FirstFitAllocator,
    MemoryLedger,
)

__all__ = [
    "DeviceSpec",
    "GPUSpec",
    "LinkSpec",
    "MemorySpec",
    "V100_32GB",
    "A100_80GB",
    "DGX2_CPU_MEMORY",
    "DGX2_NVME",
    "PCIE_GEN3_X16",
    "NVLINK_V100",
    "INFINIBAND_800G",
    "ClusterTopology",
    "NodeTopology",
    "dgx2_node",
    "dgx2_cluster",
    "CLUSTER_PRESETS",
    "AllocationError",
    "Block",
    "FirstFitAllocator",
    "MemoryLedger",
]
