"""Device and link specifications.

All bandwidth and capacity numbers default to the values the paper reports
for the NVIDIA V100 DGX-2 SuperPOD platform (Fig. 2b and Secs. 4-6):

* V100 SXM3: 32 GB HBM2, 600-900 GB/s memory bandwidth, ~70 TFlops
  *achievable* peak for transformer workloads (Sec. 4.2 empirical method);
* per-GPU PCIe Gen3 x16: ~12 GB/s to host when a single GPU reads;
* parallel reads from all 16 GPUs of a DGX-2: 3.0 GB/s per GPU from CPU
  memory, 1.6 GB/s per GPU from NVMe (aggregate 48 / 25.6 GB/s per node);
* 800 Gbps InfiniBand between nodes; 150-300 GB/s NVLink within a node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, TB, TFLOP


@dataclass(frozen=True, slots=True)
class MemorySpec:
    """A memory tier: capacity plus sequential read/write bandwidth."""

    name: str
    capacity_bytes: int
    read_bw: float  # bytes/s
    write_bw: float  # bytes/s

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ValueError(f"{self.name}: bandwidths must be positive")


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """A point-to-point or shared interconnect with usable bandwidth."""

    name: str
    bandwidth: float  # bytes/s usable per direction
    latency_s: float = 5e-6

    def transfer_time(self, nbytes: float) -> float:
        """Alpha-beta time to move ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """A compute device with attached memory."""

    name: str
    memory: MemorySpec
    peak_flops: float  # achievable peak, FLOP/s


@dataclass(frozen=True, slots=True)
class GPUSpec(DeviceSpec):
    """A GPU: adds the host link it hangs off."""

    host_link: LinkSpec = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Concrete parts of the paper's platform
# ---------------------------------------------------------------------------

PCIE_GEN3_X16 = LinkSpec("pcie-gen3-x16", bandwidth=12 * GB, latency_s=5e-6)
"""Single-GPU PCIe to host: the paper's 'meager 12 GB/s' (Sec. 5.2.1)."""

NVLINK_V100 = LinkSpec("nvlink-v100", bandwidth=150 * GB, latency_s=3e-6)
"""Intra-node GPU-GPU via NVSwitch; the paper quotes 150-300 GB/s (Fig. 2b).
We use the conservative end."""

INFINIBAND_800G = LinkSpec("ib-800gbps", bandwidth=100 * GB, latency_s=2e-6)
"""Inter-node fabric: 800 Gbps = 100 GB/s (Sec. 8.1)."""

V100_HBM = MemorySpec("v100-hbm2", capacity_bytes=32 * GB, read_bw=900 * GB, write_bw=900 * GB)

V100_32GB = GPUSpec(
    name="V100-SXM3-32GB",
    memory=V100_HBM,
    peak_flops=70 * TFLOP,  # empirical achievable peak, Sec. 4.2
    host_link=PCIE_GEN3_X16,
)

A100_80GB = GPUSpec(
    name="A100-SXM4-80GB",
    memory=MemorySpec("a100-hbm2e", capacity_bytes=80 * GB, read_bw=2000 * GB, write_bw=2000 * GB),
    peak_flops=180 * TFLOP,
    host_link=LinkSpec("pcie-gen4-x16", bandwidth=24 * GB, latency_s=5e-6),
)

DGX2_CPU_MEMORY = MemorySpec(
    "dgx2-dram", capacity_bytes=int(1.5 * TB), read_bw=100 * GB, write_bw=100 * GB
)
"""1.5 TB DRAM per DGX-2 node (Fig. 2b); ~100 GB/s socket bandwidth (Sec. 5.2.1 fn)."""

DGX2_NVME = MemorySpec(
    "dgx2-nvme", capacity_bytes=28 * TB, read_bw=25 * GB, write_bw=25 * GB
)
"""28 TB NVMe per DGX-2 node, ~25 GB/s aggregate sequential (Sec. 5.2.1 fn)."""

# Per-GPU achievable bandwidth when all 16 GPUs of a DGX-2 read in parallel
# (Fig. 2b, last two columns).
DGX2_CPU_BW_PER_GPU = 3.0 * GB
DGX2_NVME_BW_PER_GPU = 1.6 * GB
