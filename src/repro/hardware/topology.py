"""Node and cluster topologies.

A :class:`NodeTopology` describes one server (GPUs, CPU memory, NVMe and the
links between them); a :class:`ClusterTopology` replicates nodes over an
inter-node fabric.  The derived-quantity methods reproduce the aggregate
memory and per-GPU bandwidth table of Fig. 2b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.devices import (
    DGX2_CPU_MEMORY,
    DGX2_NVME,
    GPUSpec,
    INFINIBAND_800G,
    LinkSpec,
    MemorySpec,
    NVLINK_V100,
    V100_32GB,
)
from repro.utils.units import GB


@dataclass(frozen=True)
class NodeTopology:
    """One multi-GPU server.

    ``pcie_switches`` models the DGX-2 layout where GPUs share PCIe root
    complexes; with all GPUs reading from host memory in parallel, each GPU
    sees ``cpu_bw_per_gpu_parallel`` rather than the full link bandwidth.
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    cpu_memory: MemorySpec
    nvme: MemorySpec
    intra_node_link: LinkSpec = NVLINK_V100
    cpu_bw_per_gpu_parallel: float = 3.0 * GB
    nvme_bw_per_gpu_parallel: float = 1.6 * GB

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")

    # --- aggregate capacities (Fig. 2b columns 3-5) -----------------------
    @property
    def gpu_memory_bytes(self) -> int:
        return self.gpu.memory.capacity_bytes * self.gpus_per_node

    @property
    def cpu_memory_bytes(self) -> int:
        return self.cpu_memory.capacity_bytes

    @property
    def nvme_bytes(self) -> int:
        return self.nvme.capacity_bytes

    # --- parallel-read bandwidths ------------------------------------------
    @property
    def aggregate_cpu_bw(self) -> float:
        """All GPUs reading host memory in parallel (bytes/s per node)."""
        return self.cpu_bw_per_gpu_parallel * self.gpus_per_node

    @property
    def aggregate_nvme_bw(self) -> float:
        """All GPUs reading NVMe in parallel (bytes/s per node).

        Bounded by the drive array's own sequential bandwidth.
        """
        return min(
            self.nvme_bw_per_gpu_parallel * self.gpus_per_node, self.nvme.read_bw
        )

    def gpu_to_slow_memory_bw(self, *, nvme: bool, parallel: bool) -> float:
        """Per-GPU bandwidth to CPU or NVMe memory.

        ``parallel=False`` is the broadcast-based regime (one PCIe link
        active, Sec. 6.1); ``parallel=True`` is the bandwidth-centric
        allgather regime where every link pulls its shard.
        """
        if not parallel:
            bw = self.gpu.host_link.bandwidth
            return min(bw, self.nvme.read_bw) if nvme else bw
        return self.nvme_bw_per_gpu_parallel if nvme else self.cpu_bw_per_gpu_parallel


@dataclass(frozen=True)
class ClusterTopology:
    """``num_nodes`` identical nodes over an inter-node fabric."""

    node: NodeTopology
    num_nodes: int
    inter_node_link: LinkSpec = INFINIBAND_800G

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    @property
    def num_gpus(self) -> int:
        return self.node.gpus_per_node * self.num_nodes

    # --- aggregate memory (Fig. 2b) -------------------------------------------
    @property
    def gpu_memory_bytes(self) -> int:
        return self.node.gpu_memory_bytes * self.num_nodes

    @property
    def cpu_memory_bytes(self) -> int:
        return self.node.cpu_memory_bytes * self.num_nodes

    @property
    def nvme_bytes(self) -> int:
        return self.node.nvme_bytes * self.num_nodes

    def memory_bytes(self, tier: str) -> int:
        """Aggregate capacity of ``"gpu"``, ``"cpu"`` or ``"nvme"``."""
        try:
            return {
                "gpu": self.gpu_memory_bytes,
                "cpu": self.cpu_memory_bytes,
                "nvme": self.nvme_bytes,
            }[tier]
        except KeyError as e:
            raise ValueError(f"unknown memory tier {tier!r}") from e

    # --- bandwidth ---------------------------------------------------------------
    @property
    def aggregate_cpu_bw(self) -> float:
        return self.node.aggregate_cpu_bw * self.num_nodes

    @property
    def aggregate_nvme_bw(self) -> float:
        return self.node.aggregate_nvme_bw * self.num_nodes

    def gpu_to_gpu_bw(self) -> float:
        """Per-GPU bandwidth for GPU-GPU collectives.

        Within one node collectives ride NVLink; across nodes they are
        bounded by each node's share of the fabric, divided among its GPUs.
        The paper's Fig. 2b reports 60-100 GB/s per GPU at multi-node scale
        — i.e. interconnect-bound; we take the conservative end of NVLink
        and fabric numbers.
        """
        if self.num_nodes == 1:
            return self.node.intra_node_link.bandwidth
        return min(
            self.node.intra_node_link.bandwidth,
            self.inter_node_link.bandwidth,
        )


def dgx2_node() -> NodeTopology:
    """The paper's evaluation node: 16x V100 32 GB, 1.5 TB DRAM, 28 TB NVMe."""
    return NodeTopology(
        name="DGX-2",
        gpu=V100_32GB,
        gpus_per_node=16,
        cpu_memory=DGX2_CPU_MEMORY,
        nvme=DGX2_NVME,
    )


def dgx2_cluster(num_nodes: int) -> ClusterTopology:
    """A DGX-2 SuperPOD slice with ``num_nodes`` nodes (16 GPUs each)."""
    return ClusterTopology(node=dgx2_node(), num_nodes=num_nodes)


#: The cluster sizes tabulated in Fig. 2b (nodes -> topology).
CLUSTER_PRESETS: dict[int, ClusterTopology] = {
    n: dgx2_cluster(n) for n in (1, 4, 16, 32, 64, 96)
}
