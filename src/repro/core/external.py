"""External parameters: used across module boundaries (Sec. 7.1.1).

Some architectures use a parameter defined in one submodule inside another
submodule's forward/backward — GPT's tied embedding being the canonical
case.  The coordinator's per-module hooks cannot know to gather them, so
ZeRO-Infinity provides three mechanisms, all implemented here:

1. **Manual registration** (:func:`register_external_parameter`): the
   parameter is gathered/released with the registered consumer module and
   picked up by its prefetch window.

2. **Intercepting partitioned parameter accesses**
   (:class:`InterceptingParameterDict`): the module's parameter hash table
   is replaced by a subclass whose access hook blocks-allgathers any
   still-partitioned parameter and auto-registers it as external.

3. **Activation introspection** (:func:`install_activation_introspection`):
   forward outputs are inspected for :class:`Parameter` objects (e.g.
   Megatron returning bias vectors); any partitioned parameter found is
   gathered and auto-registered.
"""

from __future__ import annotations


from repro.nn.module import Module
from repro.nn.parameter import Parameter, ParameterDict, PartitionState


class ExternalParameterRegistry:
    """Tracks which modules consume which foreign parameters."""

    def __init__(self) -> None:
        # consumer module id -> parameters to gather with that module
        self._by_module: dict[int, list[Parameter]] = {}
        self.auto_registrations = 0

    def register(self, module: Module, param: Parameter) -> None:
        plist = self._by_module.setdefault(id(module), [])
        if all(p is not param for p in plist):
            plist.append(param)

    def params_for(self, module: Module) -> list[Parameter]:
        return self._by_module.get(id(module), [])

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_module.values())


def register_external_parameter(
    coordinator, module: Module, param: Parameter
) -> None:
    """Manually declare that ``module`` consumes ``param`` (public API).

    Installs gather/release hooks on the consumer so the foreign parameter
    follows the same fetch/partition lifecycle as the module's own.
    """
    registry: ExternalParameterRegistry = coordinator.external_registry

    def gather_hook(mod, *_):
        if param.state is PartitionState.PARTITIONED:
            coordinator.partitioner.gather(param)
            coordinator.stats.gathers += 1

    def release_hook(mod, *_):
        if param.zero_meta is not None and param.state is PartitionState.AVAILABLE:
            coordinator.partitioner.release(param)
            coordinator.stats.releases += 1

    was_known = any(p is param for p in registry.params_for(module))
    if was_known:
        return
    registry.register(module, param)
    module.register_forward_pre_hook(gather_hook)
    module.register_forward_hook(lambda m, a, o: (release_hook(m), None)[1])
    module.register_backward_pre_hook(gather_hook)
    module.register_backward_hook(release_hook)


class InterceptingParameterDict(ParameterDict):
    """Parameter hash table that gathers partitioned parameters on touch.

    "When a partitioned parameter is accessed, we do a blocking allgather on
    the parameter, register it as an external parameter, and then return the
    gathered parameter."
    """

    def __init__(self, base: ParameterDict, module: Module, coordinator) -> None:
        super().__init__(base)
        self._module = module
        self._coordinator = coordinator

    def touched(self, key: str, param: Parameter) -> Parameter:
        if param.state is PartitionState.PARTITIONED:
            coordinator = self._coordinator
            coordinator.partitioner.gather(param)  # blocking allgather
            coordinator.stats.gathers += 1
            coordinator.external_registry.auto_registrations += 1
            register_external_parameter(coordinator, self._module, param)
        return param


def install_parameter_interception(model: Module, coordinator) -> None:
    """Swap every module's parameter dict for the intercepting subclass."""
    for module in model.modules():
        current = module._parameters
        if isinstance(current, InterceptingParameterDict):
            continue
        object.__setattr__(
            module,
            "_parameters",
            InterceptingParameterDict(current, module, coordinator),
        )


def install_activation_introspection(model: Module, coordinator) -> None:
    """Inspect forward outputs for partitioned parameters and register them.

    Checks the output object (and one level of tuple/list nesting) for
    :class:`Parameter` instances returned from a submodule's forward.
    """

    def introspect(module: Module, args, output):
        candidates = (
            list(output) if isinstance(output, (tuple, list)) else [output]
        )
        for item in candidates:
            if isinstance(item, Parameter):
                if item.state is PartitionState.PARTITIONED:
                    coordinator.partitioner.gather(item)
                    coordinator.stats.gathers += 1
                coordinator.external_registry.auto_registrations += 1
                register_external_parameter(coordinator, module, item)
        return None

    for module in model.modules():
        module.register_forward_hook(introspect)
