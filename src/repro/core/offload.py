"""The infinity offload engine (Sec. 6.3).

Routes named tensors (parameter shards, gradient shards, optimizer state
shards) to their configured tier:

* ``NONE``  — kept in (simulated) GPU memory;
* ``CPU``   — kept in host arrays, crossing the owning GPU's host link;
* ``NVME``  — spooled to the file-backed :class:`~repro.nvme.store.TensorStore`
  through the async engine, staged via the pinned buffer pool.

Per-rank host-link byte counters make the bandwidth-centric argument
measurable: with owner/broadcast layout all of a parameter's bytes cross one
rank's link; with sharded/allgather layout each rank's link carries 1/dp of
them (Sec. 6.1).

Asynchronous prefetch (:meth:`prefetch`) starts an NVMe read into a pinned
staging buffer and parks the handle; a later :meth:`fetch` of the same key
waits on the handle instead of issuing a fresh read — the nc-transfer leg of
the overlap-centric design (Sec. 6.2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.check.runtime import get_checker
from repro.core.config import OffloadConfig, OffloadDevice
from repro.hardware.memory import MemoryLedger
from repro.nvme.aio import IORequest
from repro.obs.memscope import attribution_for_key, get_memscope, mem_sample
from repro.obs.metrics import get_registry
from repro.obs.perfscope import stall_span
from repro.obs.tracer import trace_span
from repro.nvme.buffers import PinnedBuffer, PinnedBufferPool
from repro.nvme.store import TensorStore, shadow_key
from repro.tensor.device import CPU, gpu


@dataclass
class OffloadCounters:
    """Data-movement accounting for the offload tier."""

    host_link_bytes: dict[int, int] = field(default_factory=dict)  # per GPU rank
    nvme_read_bytes: int = 0
    nvme_write_bytes: int = 0
    cpu_read_bytes: int = 0
    cpu_write_bytes: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    # Resilience fallbacks (docs/resilience.md): staged degradations that
    # keep training going when the async path fails under it.
    pinned_fallbacks: int = 0  # pool exhausted -> unpinned staging buffer
    prefetch_fallbacks: int = 0  # prefetch read died -> sync re-read
    abandoned_prefetch_errors: int = 0  # failed reads drained on overwrite

    def add_link(self, rank: int, nbytes: int) -> None:
        self.host_link_bytes[rank] = self.host_link_bytes.get(rank, 0) + nbytes

    @property
    def max_link_bytes(self) -> int:
        return max(self.host_link_bytes.values(), default=0)

    @property
    def total_link_bytes(self) -> int:
        return sum(self.host_link_bytes.values())


@dataclass
class _Inflight:
    buffer: np.ndarray
    pin: Optional[PinnedBuffer]
    request: IORequest


class InfinityOffloadEngine:
    """Tier-routing storage for every partitioned model state."""

    def __init__(
        self,
        config: OffloadConfig,
        *,
        ledger: Optional[MemoryLedger] = None,
        check=None,
    ) -> None:
        self.config = config
        self.ledger = ledger
        self.counters = OffloadCounters()
        if check is None:
            check = get_checker()
        self._check = check
        # in-memory tiers: key -> (array, device_tag)
        self._mem: dict[str, tuple[np.ndarray, object]] = {}
        self.pool = PinnedBufferPool(config.pinned_budget_bytes, check=check)
        self.store: Optional[TensorStore] = (
            TensorStore(
                config.nvme_dir,
                pool=self.pool,
                check=check,
                verify_checksums=config.verify_checksums,
                atomic_commits=config.atomic_spool_commits,
                io_retries=config.io_retries,
                io_backoff_us=config.io_backoff_us,
            )
            if config.any_nvme
            else None
        )
        self._inflight: dict[str, _Inflight] = {}
        self._lock = threading.Lock()

    # --- helpers -----------------------------------------------------------------
    #
    # Residency accounting feeds two sinks at the same choke points: the
    # capacity-enforcing MemoryLedger (when configured) and the global
    # memscope (when enabled) — so their totals agree by construction.
    def _ledger_alloc(self, device_tag, nbytes: int, key: str) -> None:
        scope = get_memscope()
        if scope.enabled or self.ledger is not None:
            category, owner = attribution_for_key(key)
            scope.alloc(
                device_tag.kind.value, nbytes, category=category, owner=owner
            )
            if self.ledger is not None:
                self.ledger.allocate(
                    device_tag, nbytes, category=category, owner=owner
                )

    def _ledger_free(self, device_tag, nbytes: int, key: str) -> None:
        scope = get_memscope()
        if scope.enabled or self.ledger is not None:
            category, owner = attribution_for_key(key)
            scope.free(
                device_tag.kind.value, nbytes, category=category, owner=owner
            )
            if self.ledger is not None:
                self.ledger.free(device_tag, nbytes, category=category, owner=owner)

    def _drop_mem(self, key: str) -> None:
        old = self._mem.pop(key, None)
        if old is not None:
            arr, tag = old
            self._ledger_free(tag, arr.nbytes, key)

    def _abandon_inflight(self, inflight: _Inflight) -> None:
        """Drain a prefetch whose bytes will never be used.

        Called when the key is about to be overwritten or discarded: a
        failed read is harmless here, but it is still counted (silently
        swallowing I/O errors is a lint violation in this tree) and the
        staging pin always returns to the pool.
        """
        try:
            inflight.request.wait()
        except OSError:
            self.counters.abandoned_prefetch_errors += 1
            get_registry().counter("faults.abandoned_prefetch").inc()
        finally:
            if inflight.pin is not None:
                inflight.pin.release()

    # --- stash ------------------------------------------------------------------
    def stash(
        self,
        key: str,
        array: np.ndarray,
        device: OffloadDevice,
        *,
        rank: int,
        sync: bool = True,
    ) -> Optional[IORequest]:
        """Place ``array`` under ``key`` on ``device``.

        ``rank`` identifies whose host link the bytes cross (for CPU/NVMe
        placement).  For NVMe, ``sync=False`` returns the in-flight write
        handle so gradient offload can overlap backward compute.
        """
        arr = np.ascontiguousarray(array)
        if device is OffloadDevice.NONE:
            self._drop_mem(key)
            self._mem[key] = (arr.copy(), gpu(rank))
            self._ledger_alloc(gpu(rank), arr.nbytes, key)
            return None
        if device is OffloadDevice.CPU:
            with trace_span(
                "offload:swap_out", cat="offload", tier="cpu",
                bytes=int(arr.nbytes), rank=rank,
            ):
                self._drop_mem(key)
                self._mem[key] = (arr.copy(), CPU)
                self._ledger_alloc(CPU, arr.nbytes, key)
                self.counters.add_link(rank, arr.nbytes)
                self.counters.cpu_write_bytes += arr.nbytes
            mem_sample("swap_out:cpu")
            return None
        if device is OffloadDevice.NVME:
            if self.store is None:
                raise RuntimeError("NVMe placement configured without a store")
            with trace_span(
                "offload:swap_out", cat="offload", tier="nvme",
                bytes=int(arr.nbytes), rank=rank, sync=sync,
            ):
                # an in-flight prefetch is still reading this key's file;
                # drain it before the write lands in the same byte range
                # (and before the staging buffer returns to the pool with
                # stale bytes)
                with self._lock:
                    inflight = self._inflight.pop(key, None)
                if inflight is not None:
                    self._abandon_inflight(inflight)
                self._drop_mem(key)  # key may migrate tiers
                self.counters.add_link(rank, arr.nbytes)
                self.counters.nvme_write_bytes += arr.nbytes
                req = self.store.write_async(key, arr)
                mem_sample("swap_out:nvme")
                if sync:
                    req.wait()
                    return None
                return req
        raise ValueError(f"unknown offload device {device}")

    # --- staged (double-buffered) NVMe updates ------------------------------------
    #
    # The transactional optimizer step never overwrites a live NVMe record
    # in place: fallible writes stream into the key's shadow record, and
    # only once every byte has landed does ``promote_staged`` rename the
    # shadow over the primary — an infallible commit, so a fault at any
    # point leaves the primaries untouched and the step replayable.
    def stage_nvme(
        self, key: str, array: np.ndarray, *, rank: int
    ) -> IORequest:
        """Begin writing ``array`` into ``key``'s shadow record.

        Byte accounting matches :meth:`stash`'s NVMe path — the bytes
        cross the same host link whether they land in the primary or its
        shadow.  Commit with :meth:`promote_staged`, abandon with
        :meth:`discard_staged`.
        """
        if self.store is None:
            raise RuntimeError("NVMe staging requires a store")
        arr = np.ascontiguousarray(array)
        with trace_span(
            "offload:swap_out", cat="offload", tier="nvme",
            bytes=int(arr.nbytes), rank=rank, staged=True,
        ):
            self.counters.add_link(rank, arr.nbytes)
            self.counters.nvme_write_bytes += arr.nbytes
            return self.store.write_async(shadow_key(key), arr)

    def promote_staged(self, key: str) -> None:
        """Rename ``key``'s fully written shadow record onto the primary.

        Drains any in-flight prefetch of the primary first (the rename
        must not race a read staging stale bytes) and drops a resident
        copy — the promoted record is now the single source of truth.
        """
        if self.store is None:
            raise RuntimeError("NVMe staging requires a store")
        with self._lock:
            inflight = self._inflight.pop(key, None)
        if inflight is not None:
            self._abandon_inflight(inflight)
        self._drop_mem(key)  # key may migrate tiers
        self.store.promote(shadow_key(key), key)

    def discard_staged(self, key: str) -> None:
        """Drop ``key``'s shadow record (transaction rollback path)."""
        if self.store is not None:
            self.store.delete(shadow_key(key))

    # --- in-place slice update ----------------------------------------------------
    def update_slice(
        self, key: str, offset_numel: int, array: np.ndarray, *, rank: int
    ) -> None:
        """Overwrite ``array.size`` elements of flat ``key`` at ``offset_numel``.

        The write-through path for slice-level updates (owner-layout shard
        write-back): only the slice crosses the host link, instead of the
        fetch-whole/patch/re-stash round trip that moves the entire buffer
        twice.  The key must already exist; tier placement is unchanged.
        """
        arr = np.ascontiguousarray(array).reshape(-1)
        # an in-flight prefetch holds pre-update bytes; drain it so a later
        # fetch cannot observe the stale staging buffer
        with self._lock:
            inflight = self._inflight.pop(key, None)
        if inflight is not None:
            self._abandon_inflight(inflight)
        entry = self._mem.get(key)
        if entry is not None:
            stored, tag = entry
            if offset_numel < 0 or offset_numel + arr.size > stored.size:
                raise ValueError(
                    f"slice [{offset_numel}, {offset_numel + arr.size}) out of"
                    f" bounds for {key!r} with {stored.size} elements"
                )
            flat = stored.reshape(-1)
            on_cpu = tag is CPU or getattr(tag, "is_cpu", False)
            with trace_span(
                "offload:update_slice", cat="offload",
                tier="cpu" if on_cpu else "gpu",
                bytes=int(arr.nbytes), rank=rank,
            ):
                flat[offset_numel : offset_numel + arr.size] = arr.astype(
                    stored.dtype, copy=False
                )
                if on_cpu:
                    self.counters.add_link(rank, arr.nbytes)
                    self.counters.cpu_write_bytes += arr.nbytes
            return
        if self.store is not None and key in self.store:
            with trace_span(
                "offload:update_slice", cat="offload", tier="nvme",
                bytes=int(arr.nbytes), rank=rank,
            ):
                self.counters.add_link(rank, arr.nbytes)
                self.counters.nvme_write_bytes += arr.nbytes
                self.store.write_range(key, offset_numel, arr).wait()
            return
        raise KeyError(f"offload engine has no tensor {key!r}")

    # --- fetch -------------------------------------------------------------------
    def fetch(self, key: str, *, rank: int) -> np.ndarray:
        """Load the tensor stored under ``key`` (waits on any prefetch)."""
        inflight = None
        if self._inflight:  # only ever populated when an NVMe tier exists
            with self._lock:
                inflight = self._inflight.pop(key, None)
        if inflight is not None:
            with trace_span(
                "offload:swap_in", cat="offload", tier="nvme",
                prefetched=True, rank=rank,
            ):
                try:
                    inflight.request.wait()
                    out = np.array(inflight.buffer, copy=True)
                except OSError:
                    # Prefetch read died (aio retries already exhausted).
                    # The spool file is intact — only the staging transfer
                    # failed — so recover with a synchronous re-read.
                    if inflight.pin is not None:
                        inflight.pin.release()
                        inflight.pin = None
                    self.counters.prefetch_fallbacks += 1
                    get_registry().counter("faults.prefetch_fallback").inc()
                    out = self.store.read(key)
            if inflight.pin is not None:
                inflight.pin.release()
            self.counters.prefetch_hits += 1
            get_registry().counter("prefetch.hits").inc()
            self.counters.add_link(rank, out.nbytes)
            self.counters.nvme_read_bytes += out.nbytes
            mem_sample("swap_in:nvme")
            return out
        entry = self._mem.get(key)
        if entry is not None:
            arr, tag = entry
            if tag is CPU or getattr(tag, "is_cpu", False):
                with trace_span(
                    "offload:swap_in", cat="offload", tier="cpu",
                    bytes=int(arr.nbytes), rank=rank,
                ):
                    self.counters.add_link(rank, arr.nbytes)
                    self.counters.cpu_read_bytes += arr.nbytes
                    return arr.copy()
            return arr.copy()
        if self.store is not None and key in self.store:
            self.counters.prefetch_misses += 1
            get_registry().counter("prefetch.misses").inc()
            # demand fetch: the step blocks on a read the prefetcher missed
            with stall_span(
                "prefetch_miss", owner=attribution_for_key(key)[1], key=key
            ), trace_span(
                "offload:swap_in", cat="offload", tier="nvme",
                prefetched=False, rank=rank,
            ):
                out = self.store.read(key)
            self.counters.add_link(rank, out.nbytes)
            self.counters.nvme_read_bytes += out.nbytes
            mem_sample("swap_in:nvme")
            return out
        raise KeyError(f"offload engine has no tensor {key!r}")

    def fetch_into(self, key: str, dest: np.ndarray, *, rank: int) -> None:
        """Load ``key`` directly into ``dest`` — no intermediate allocation.

        The zero-copy sibling of :meth:`fetch` for callers that own a
        staging buffer (the coalesced gather path): resident tiers copy
        straight from storage into ``dest``; the NVMe tier reads into it.
        Byte accounting matches :meth:`fetch` exactly.
        """
        inflight = None
        if self._inflight:  # only ever populated when an NVMe tier exists
            with self._lock:
                inflight = self._inflight.pop(key, None)
        if inflight is not None:
            with trace_span(
                "offload:swap_in", cat="offload", tier="nvme",
                prefetched=True, rank=rank,
            ):
                try:
                    inflight.request.wait()
                    np.copyto(dest, inflight.buffer.reshape(-1)[: dest.size])
                except OSError:
                    # Same recovery as fetch(): sync re-read of the intact
                    # spool file after a failed prefetch transfer.
                    if inflight.pin is not None:
                        inflight.pin.release()
                        inflight.pin = None
                    self.counters.prefetch_fallbacks += 1
                    get_registry().counter("faults.prefetch_fallback").inc()
                    self.store.read(key, dest)
            if inflight.pin is not None:
                inflight.pin.release()
            self.counters.prefetch_hits += 1
            get_registry().counter("prefetch.hits").inc()
            self.counters.add_link(rank, dest.nbytes)
            self.counters.nvme_read_bytes += dest.nbytes
            return
        entry = self._mem.get(key)
        if entry is not None:
            arr, tag = entry
            if arr.size != dest.size:
                raise ValueError(
                    f"{key!r} has {arr.size} elements, destination {dest.size}"
                )
            np.copyto(dest, arr.reshape(-1))
            if tag is CPU or getattr(tag, "is_cpu", False):
                self.counters.add_link(rank, arr.nbytes)
                self.counters.cpu_read_bytes += arr.nbytes
            return
        if self.store is not None and key in self.store:
            self.counters.prefetch_misses += 1
            get_registry().counter("prefetch.misses").inc()
            # demand fetch: the step blocks on a read the prefetcher missed
            with stall_span(
                "prefetch_miss", owner=attribution_for_key(key)[1], key=key
            ), trace_span(
                "offload:swap_in", cat="offload", tier="nvme",
                prefetched=False, rank=rank,
            ):
                self.store.read(key, dest)
            self.counters.add_link(rank, dest.nbytes)
            self.counters.nvme_read_bytes += dest.nbytes
            return
        raise KeyError(f"offload engine has no tensor {key!r}")

    @property
    def can_prefetch(self) -> bool:
        """Whether async lookahead is possible at all (an NVMe tier exists)."""
        return self.store is not None

    def prefetch(self, key: str, *, rank: int) -> bool:
        """Begin an async NVMe read of ``key``; no-op for resident tiers.

        Returns True when a read was actually started.
        """
        if self.store is None or key not in self.store or key in self._mem:
            return False
        with self._lock:
            if key in self._inflight:
                return False
        shape, dtype, nbytes = self.store.meta(key)
        numel = int(np.prod(shape, dtype=np.int64)) if shape else 1
        with trace_span(
            "offload:prefetch_start", cat="prefetch", bytes=int(nbytes), rank=rank
        ):
            try:
                pin = self.pool.acquire(numel, dtype)
                buffer = pin.array
            except MemoryError:
                # Pinned pool exhausted: fall back to an unpinned staging buffer
                # rather than stalling the prefetch pipeline.  The fallback
                # allocation itself is time the budget cost us.
                with stall_span("pinned_wait", owner="pool", key=key):
                    pin = None
                    buffer = np.empty(numel, dtype=dtype)  # lint: allow-rawalloc
                    self.counters.pinned_fallbacks += 1
                    get_registry().counter("faults.pinned_fallback").inc()
            target, req = self.store.read_async(key, buffer)
            with self._lock:
                self._inflight[key] = _Inflight(target, pin, req)
        return True

    # --- lifecycle --------------------------------------------------------------
    def contains(self, key: str) -> bool:
        if key in self._mem or key in self._inflight:
            return True
        return self.store is not None and key in self.store

    def bytes_by_kind(self) -> dict[str, dict[str, int]]:
        """Resident bytes per tier per state kind (``param16``, ``grad16``,
        ``master``, ``exp_avg``, ...), keyed by the trailing key segment.

        The observability view behind ``engine.memory_breakdown()``: where
        is every byte of model state right now?
        """
        out: dict[str, dict[str, int]] = {}

        def add(tier: str, key: str, nbytes: int) -> None:
            kind = key.rsplit(".", 1)[-1]
            out.setdefault(tier, {})
            out[tier][kind] = out[tier].get(kind, 0) + nbytes

        for key, (arr, tag) in self._mem.items():
            tier = "cpu" if getattr(tag, "is_cpu", False) else "gpu"
            add(tier, key, arr.nbytes)
        if self.store is not None:
            for key in self.store.keys():
                add("nvme", key, self.store.nbytes(key))
        return out

    def discard(self, key: str) -> None:
        with self._lock:
            inflight = self._inflight.pop(key, None)
        if inflight is not None:
            self._abandon_inflight(inflight)
        self._drop_mem(key)
        if self.store is not None:
            self.store.delete(key)

    def synchronize(self) -> None:
        if self.store is not None:
            self.store.engine.synchronize()

    def close(self) -> None:
        with self._lock:
            inflight = list(self._inflight.values())
            self._inflight.clear()
        for f in inflight:
            self._abandon_inflight(f)
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "InfinityOffloadEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
