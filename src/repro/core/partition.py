"""Parameter partitioning: bandwidth-centric and owner-based layouts.

Sec. 6.1 contrasts two data mappings for offloaded parameters:

* **owner/broadcast** (ZeRO / ZeRO-Offload): each parameter is fully owned
  by one data-parallel process; before use it crosses *that process's* PCIe
  link and is broadcast — only one link active per parameter;
* **bandwidth-centric / allgather** (ZeRO-Infinity): each parameter is
  sharded across *all* processes; before use every rank pulls its 1/dp slice
  over its own link and the shards are allgathered — all links active, so
  effective slow-memory bandwidth scales linearly with dp.

Both layouts are implemented here so the benchmarks can measure the
difference.  The wire volume of broadcast and allgather is identical (the
paper's observation); what changes is how many host links the volume is
spread across, which the offload engine's per-link counters capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.comm.group import ProcessGroup
from repro.core.config import OffloadDevice
from repro.core.offload import InfinityOffloadEngine
from repro.nn.parameter import Parameter, PartitionState
from repro.tensor.flat import pad_to_multiple, partition_bounds


@dataclass
class ZeroParamMeta:
    """Bookkeeping attached to a partitioned parameter (``param.zero_meta``)."""

    full_shape: tuple[int, ...]
    np_dtype: np.dtype
    world_size: int
    padded_numel: int
    shard_numel: int
    owner_rank: Optional[int]  # None => sharded over all ranks
    device: OffloadDevice

    @property
    def full_numel(self) -> int:
        n = 1
        for s in self.full_shape:
            n *= s
        return n

    def shard_key(self, rank: int, kind: str = "param16") -> str:
        return f"r{rank}.{kind}"


class ParameterPartitioner:
    """Splits, gathers, releases and updates partitioned parameters."""

    def __init__(
        self,
        world_size: int,
        *,
        offload: InfinityOffloadEngine,
        comm: Optional[ProcessGroup] = None,
        bandwidth_centric: bool = True,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.world_size = world_size
        self.offload = offload
        self.comm = comm or ProcessGroup(world_size)
        self.bandwidth_centric = bandwidth_centric
        self._owner_rr = 0  # round-robin owner assignment for owner layout

    # --- keys -------------------------------------------------------------------
    @staticmethod
    def _key(param: Parameter, rank: int, kind: str = "param16") -> str:
        return f"p{param.unique_id}.r{rank}.{kind}"

    def param_shard_key(self, param: Parameter, rank: int) -> str:
        return self._key(param, rank, "param16")

    # --- partition -------------------------------------------------------------
    def partition(self, param: Parameter) -> None:
        """Shard ``param`` and hand the shards to the offload engine.

        After this call ``param.data`` is an empty placeholder and
        ``param.state`` is ``PARTITIONED``; compute must not touch it until
        :meth:`gather` runs.
        """
        if param.state is not PartitionState.AVAILABLE:
            raise RuntimeError(f"cannot partition {param}: state={param.state}")
        flat = param.data.reshape(-1)
        numel = int(flat.size)
        padded = pad_to_multiple(max(numel, 1), self.world_size)
        shard_numel = padded // self.world_size

        if self.bandwidth_centric:
            owner: Optional[int] = None
            for rank in range(self.world_size):
                lo, hi = partition_bounds(numel, self.world_size, rank)
                shard = np.zeros(shard_numel, dtype=flat.dtype)
                if hi > lo:
                    shard[: hi - lo] = flat[lo:hi]
                self.offload.stash(
                    self._key(param, rank, "param16"),
                    shard,
                    self.offload.config.param_device,
                    rank=rank,
                )
        else:
            owner = self._owner_rr % self.world_size
            self._owner_rr += 1
            padded_full = np.zeros(padded, dtype=flat.dtype)
            padded_full[:numel] = flat
            self.offload.stash(
                self._key(param, owner, "param16"),
                padded_full,
                self.offload.config.param_device,
                rank=owner,
            )

        param.zero_meta = ZeroParamMeta(
            full_shape=tuple(param.data.shape),
            np_dtype=param.data.dtype,
            world_size=self.world_size,
            padded_numel=padded,
            shard_numel=shard_numel,
            owner_rank=owner,
            device=self.offload.config.param_device,
        )
        param.data = np.empty(0, dtype=flat.dtype)
        param.state = PartitionState.PARTITIONED

    # --- gather ------------------------------------------------------------------
    def gather(self, param: Parameter) -> None:
        """Reconstruct the full parameter on every rank (allgather path).

        Idempotent: gathering an AVAILABLE parameter is a no-op, which is
        what lets external-parameter interception call it defensively.
        """
        if param.state is PartitionState.AVAILABLE:
            return
        meta: ZeroParamMeta = param.zero_meta
        if meta is None:
            raise RuntimeError("gather on a parameter that was never partitioned")
        if meta.owner_rank is None:
            shards = [
                self.offload.fetch(self._key(param, r, "param16"), rank=r)
                for r in range(meta.world_size)
            ]
            gathered = self.comm.allgather(shards)[0]
        else:
            full = self.offload.fetch(
                self._key(param, meta.owner_rank, "param16"), rank=meta.owner_rank
            )
            gathered = self.comm.broadcast(
                [full if r == meta.owner_rank else None for r in range(meta.world_size)],
                root=meta.owner_rank,
            )[0]
        param.data = gathered[: meta.full_numel].reshape(meta.full_shape)
        param.state = PartitionState.AVAILABLE

    def release(self, param: Parameter) -> None:
        """Drop the full tensor after use; shards remain at their home tier.

        The inverse of :meth:`gather` — "after the execution of the
        operator, ZeRO-3 also removes the parameters" (Sec. 2).
        """
        if param.state is not PartitionState.AVAILABLE or param.zero_meta is None:
            return
        param.data = np.empty(0, dtype=param.zero_meta.np_dtype)
        param.state = PartitionState.PARTITIONED

    # --- shard access (optimizer path) -----------------------------------------
    def get_shard(self, param: Parameter, rank: int) -> np.ndarray:
        """This rank's fp16 shard (owner layout: the rank's slice of it)."""
        meta: ZeroParamMeta = param.zero_meta
        if meta.owner_rank is None:
            return self.offload.fetch(self._key(param, rank, "param16"), rank=rank)
        full = self.offload.fetch(
            self._key(param, meta.owner_rank, "param16"), rank=meta.owner_rank
        )
        lo = rank * meta.shard_numel
        return full[lo : lo + meta.shard_numel]

    def update_shard(self, param: Parameter, rank: int, new_shard: np.ndarray) -> None:
        """Write back an updated fp16 shard (post optimizer step)."""
        meta: ZeroParamMeta = param.zero_meta
        if new_shard.size != meta.shard_numel:
            raise ValueError(
                f"shard size {new_shard.size} != expected {meta.shard_numel}"
            )
        if meta.owner_rank is None:
            self.offload.stash(
                self._key(param, rank, "param16"),
                new_shard.astype(meta.np_dtype, copy=False),
                self.offload.config.param_device,
                rank=rank,
            )
        else:
            full = self.offload.fetch(
                self._key(param, meta.owner_rank, "param16"), rank=meta.owner_rank
            )
            lo = rank * meta.shard_numel
            full[lo : lo + meta.shard_numel] = new_shard
            self.offload.stash(
                self._key(param, meta.owner_rank, "param16"),
                full,
                self.offload.config.param_device,
                rank=meta.owner_rank,
            )

    def free(self, param: Parameter) -> None:
        """Drop every stored shard of ``param`` (used when a parameter is
        replaced, e.g. by memory-centric tiling)."""
        meta: ZeroParamMeta = param.zero_meta
        if meta is None:
            return
        ranks = (
            range(meta.world_size) if meta.owner_rank is None else [meta.owner_rank]
        )
        for r in ranks:
            self.offload.discard(self._key(param, r, "param16"))
        param.zero_meta = None

    # --- prefetch support ----------------------------------------------------------
    def prefetch_keys(self, param: Parameter) -> list[tuple[str, int]]:
        """(key, rank) pairs whose fetch reconstructs this parameter."""
        meta: ZeroParamMeta = param.zero_meta
        if meta is None:
            return []
        if meta.owner_rank is None:
            return [
                (self._key(param, r, "param16"), r) for r in range(meta.world_size)
            ]
        return [(self._key(param, meta.owner_rank, "param16"), meta.owner_rank)]
