"""Parameter partitioning: bandwidth-centric and owner-based layouts.

Sec. 6.1 contrasts two data mappings for offloaded parameters:

* **owner/broadcast** (ZeRO / ZeRO-Offload): each parameter is fully owned
  by one data-parallel process; before use it crosses *that process's* PCIe
  link and is broadcast — only one link active per parameter;
* **bandwidth-centric / allgather** (ZeRO-Infinity): each parameter is
  sharded across *all* processes; before use every rank pulls its 1/dp slice
  over its own link and the shards are allgathered — all links active, so
  effective slow-memory bandwidth scales linearly with dp.

Both layouts are implemented here so the benchmarks can measure the
difference.  The wire volume of broadcast and allgather is identical (the
paper's observation); what changes is how many host links the volume is
spread across, which the offload engine's per-link counters capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.check.runtime import CheckContext, get_checker
from repro.comm.group import ProcessGroup
from repro.core.config import OffloadDevice
from repro.core.offload import InfinityOffloadEngine
from repro.nn.parameter import Parameter, PartitionState
from repro.obs.memscope import attributed_empty, get_memscope
from repro.tensor.flat import pad_to_multiple, partition_bounds


@dataclass
class ZeroParamMeta:
    """Bookkeeping attached to a partitioned parameter (``param.zero_meta``)."""

    full_shape: tuple[int, ...]
    np_dtype: np.dtype
    world_size: int
    padded_numel: int
    shard_numel: int
    owner_rank: Optional[int]  # None => sharded over all ranks
    device: OffloadDevice

    @property
    def full_numel(self) -> int:
        n = 1
        for s in self.full_shape:
            n *= s
        return n

    def shard_key(self, rank: int, kind: str = "param16") -> str:
        return f"r{rank}.{kind}"


class ParameterPartitioner:
    """Splits, gathers, releases and updates partitioned parameters."""

    def __init__(
        self,
        world_size: int,
        *,
        offload: InfinityOffloadEngine,
        comm: Optional[ProcessGroup] = None,
        bandwidth_centric: bool = True,
        check: Optional[CheckContext] = None,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.world_size = world_size
        self.offload = offload
        self._check = check if check is not None else get_checker()
        self.comm = comm or ProcessGroup(world_size, check=self._check)
        self.bandwidth_centric = bandwidth_centric
        self._owner_rr = 0  # round-robin owner assignment for owner layout
        # reusable allgather output for gather_coalesced, keyed by dtype;
        # shards are assembled in-place so there is no input staging
        self._coalesce_out: dict[np.dtype, np.ndarray] = {}
        # shard keys are rebuilt for every fetch on the hot path; memoise
        # the f-string formatting per (param, rank, kind)
        self._key_cache: dict[tuple[int, int, str], str] = {}

    # --- keys -------------------------------------------------------------------
    def _key(self, param: Parameter, rank: int, kind: str = "param16") -> str:
        ident = (param.unique_id, rank, kind)
        key = self._key_cache.get(ident)
        if key is None:
            key = f"p{param.unique_id}.r{rank}.{kind}"
            self._key_cache[ident] = key
        return key

    def param_shard_key(self, param: Parameter, rank: int) -> str:
        return self._key(param, rank, "param16")

    # --- checker hooks ----------------------------------------------------------
    def _zerosan(self):
        """The lifecycle sanitizer, or ``None`` (the disabled fast path)."""
        ck = self._check
        return None if ck is None else ck.zerosan

    def _released_data(self, param: Parameter, dtype) -> np.ndarray:
        """The placeholder installed as ``param.data`` while partitioned.

        With ZeroSan enabled this is a tripwire array that reports
        use-after-release at the offending ufunc; otherwise the plain empty
        array the engine has always used.
        """
        san = self._zerosan()
        if san is not None:
            return san.placeholder(param, dtype)
        return np.empty(0, dtype=dtype)  # lint: allow-rawalloc

    # --- gather-buffer accounting (memscope) ------------------------------------
    @staticmethod
    def _gather_bytes(meta: "ZeroParamMeta") -> int:
        return meta.padded_numel * np.dtype(meta.np_dtype).itemsize

    def _account_gather(self, param: Parameter) -> None:
        scope = get_memscope()
        if scope.enabled:
            scope.alloc(
                "gpu",
                self._gather_bytes(param.zero_meta),
                category="gather_buffer",
                owner=f"p{param.unique_id}",
            )

    def _account_release(self, param: Parameter) -> None:
        scope = get_memscope()
        if scope.enabled:
            scope.free(
                "gpu",
                self._gather_bytes(param.zero_meta),
                category="gather_buffer",
                owner=f"p{param.unique_id}",
            )

    # --- partition -------------------------------------------------------------
    def partition(self, param: Parameter) -> None:
        """Shard ``param`` and hand the shards to the offload engine.

        After this call ``param.data`` is an empty placeholder and
        ``param.state`` is ``PARTITIONED``; compute must not touch it until
        :meth:`gather` runs.
        """
        if param.state is not PartitionState.AVAILABLE:
            raise RuntimeError(f"cannot partition {param}: state={param.state}")
        flat = param.data.reshape(-1)
        numel = int(flat.size)
        padded = pad_to_multiple(max(numel, 1), self.world_size)
        shard_numel = padded // self.world_size

        if self.bandwidth_centric:
            owner: Optional[int] = None
            for rank in range(self.world_size):
                lo, hi = partition_bounds(numel, self.world_size, rank)
                shard = np.zeros(shard_numel, dtype=flat.dtype)  # lint: allow-rawalloc
                if hi > lo:
                    shard[: hi - lo] = flat[lo:hi]
                self.offload.stash(
                    self._key(param, rank, "param16"),
                    shard,
                    self.offload.config.param_device,
                    rank=rank,
                )
        else:
            owner = self._owner_rr % self.world_size
            self._owner_rr += 1
            padded_full = np.zeros(padded, dtype=flat.dtype)  # lint: allow-rawalloc
            padded_full[:numel] = flat
            self.offload.stash(
                self._key(param, owner, "param16"),
                padded_full,
                self.offload.config.param_device,
                rank=owner,
            )

        param.zero_meta = ZeroParamMeta(
            full_shape=tuple(param.data.shape),
            np_dtype=param.data.dtype,
            world_size=self.world_size,
            padded_numel=padded,
            shard_numel=shard_numel,
            owner_rank=owner,
            device=self.offload.config.param_device,
        )
        san = self._zerosan()
        if san is not None:
            san.on_partition(param)
        param.data = self._released_data(param, flat.dtype)
        param.state = PartitionState.PARTITIONED

    # --- gather ------------------------------------------------------------------
    def gather(self, param: Parameter) -> None:
        """Reconstruct the full parameter on every rank (allgather path).

        Idempotent: gathering an AVAILABLE parameter is a no-op, which is
        what lets external-parameter interception call it defensively.
        """
        if param.state is PartitionState.AVAILABLE:
            return
        meta: ZeroParamMeta = param.zero_meta
        if meta is None:
            raise RuntimeError("gather on a parameter that was never partitioned")
        san = self._zerosan()
        if san is not None:
            san.on_gather_begin(param)
        if meta.owner_rank is None:
            shards = [
                self.offload.fetch(self._key(param, r, "param16"), rank=r)
                for r in range(meta.world_size)
            ]
            gathered = self.comm.allgather(shards)[0]
        else:
            full = self.offload.fetch(
                self._key(param, meta.owner_rank, "param16"), rank=meta.owner_rank
            )
            gathered = self.comm.broadcast(
                [full if r == meta.owner_rank else None for r in range(meta.world_size)],
                root=meta.owner_rank,
            )[0]
        param.data = gathered[: meta.full_numel].reshape(meta.full_shape)
        param.state = PartitionState.AVAILABLE
        self._account_gather(param)
        if san is not None:
            san.on_gather_end(param)

    # --- coalesced gather (module granularity) -----------------------------------
    def _staging(self, dtype: np.dtype, block: int) -> np.ndarray:
        """Reusable allgather output buffer for a shard block (grown on
        demand, never shrunk — no fresh allocation per collective)."""
        out = self._coalesce_out.get(dtype)
        if out is None or out.size < block * self.world_size:
            scope = get_memscope()
            if scope.enabled and out is not None:
                scope.free(
                    "gpu",
                    out.nbytes,
                    category="gather_buffer",
                    owner="coalesce.staging",
                )
            out = attributed_empty(
                block * self.world_size,
                dtype,
                tier="gpu",
                category="gather_buffer",
                owner="coalesce.staging",
            )
            self._coalesce_out[dtype] = out
        return out

    @staticmethod
    def _split_layouts(params) -> tuple[list[Parameter], list[Parameter]]:
        """Partitioned params split into (sharded/allgather, owner/broadcast)."""
        todo = [
            p
            for p in params
            if p.state is PartitionState.PARTITIONED and p.zero_meta is not None
        ]
        sharded = [p for p in todo if p.zero_meta.owner_rank is None]
        owned = [p for p in todo if p.zero_meta.owner_rank is not None]
        return sharded, owned

    def gather_coalesced(self, params: Sequence[Parameter]) -> int:
        """Reconstruct a module's worth of parameters from one allgather.

        The paper's bandwidth-centric retrieval fetches "a layer's worth"
        of shards per collective (Sec. 5.1/6.1): for each rank the shards
        of every still-partitioned parameter are concatenated into a
        reusable staging buffer, a single allgather reconstructs the full
        concatenation, and every parameter is sliced back out — one
        collective per (module, dtype) instead of one per parameter, with
        identical bytes to per-parameter :meth:`gather`.

        Owner-layout (broadcast) parameters fall back to per-parameter
        gathers.  Returns the number of parameters made AVAILABLE.
        """
        sharded, owned = self._split_layouts(params)
        for p in owned:
            self.gather(p)
        gathered = len(owned)
        by_dtype: dict[np.dtype, list[Parameter]] = {}
        for p in sharded:
            by_dtype.setdefault(np.dtype(p.zero_meta.np_dtype), []).append(p)
        for dtype, group in by_dtype.items():
            self._gather_group(dtype, group)
            gathered += len(group)
        return gathered

    def _gather_group(self, dtype: np.dtype, group: list[Parameter]) -> None:
        world = self.world_size
        metas = [p.zero_meta for p in group]
        block = sum(m.shard_numel for m in metas)
        out = self._staging(dtype, block)
        san = self._zerosan()
        if san is not None:
            # staging writes into the reused buffer: void shares from the
            # previous coalesced gather before they read torn data
            san.reclaim(out)
            for p in group:
                san.on_gather_begin(p)
        # zero-copy staging: each rank's shards are fetched straight into
        # their final position in the gather buffer (storage -> out, no
        # intermediate copy); the in-place allgather then detects the
        # pre-assembled slices and moves nothing
        for r in range(world):
            off = r * block
            for p, m in zip(group, metas):
                self.offload.fetch_into(
                    self._key(p, r, "param16"),
                    out[off : off + m.shard_numel],
                    rank=r,
                )
                off += m.shard_numel
        full = self.comm.allgather_into(
            [out[r * block : (r + 1) * block] for r in range(world)], out
        )[0]
        off = 0
        for p, m in zip(group, metas):
            sh = m.shard_numel
            flat = attributed_empty(
                m.padded_numel,
                dtype,
                tier="gpu",
                category="gather_buffer",
                owner=f"p{p.unique_id}",
            )
            for r in range(world):
                flat[r * sh : (r + 1) * sh] = full[r * block + off : r * block + off + sh]
            p.data = flat[: m.full_numel].reshape(m.full_shape)
            p.state = PartitionState.AVAILABLE
            if san is not None:
                san.on_gather_end(p)
            off += sh

    def coalesced_fetch_plan(
        self, params: Sequence[Parameter]
    ) -> list[tuple[str, int]]:
        """(key, rank) pairs in the order :meth:`gather_coalesced` fetches.

        The prefetcher issues lookahead reads along this plan so its
        in-flight fetches line up with the coalesced gather that will
        consume them.
        """
        sharded, owned = self._split_layouts(params)
        plan: list[tuple[str, int]] = [
            (self._key(p, p.zero_meta.owner_rank, "param16"), p.zero_meta.owner_rank)
            for p in owned
        ]
        by_dtype: dict[np.dtype, list[Parameter]] = {}
        for p in sharded:
            by_dtype.setdefault(np.dtype(p.zero_meta.np_dtype), []).append(p)
        for group in by_dtype.values():
            for r in range(self.world_size):
                plan.extend((self._key(p, r, "param16"), r) for p in group)
        return plan

    def release(self, param: Parameter) -> None:
        """Drop the full tensor after use; shards remain at their home tier.

        The inverse of :meth:`gather` — "after the execution of the
        operator, ZeRO-3 also removes the parameters" (Sec. 2).
        """
        if param.state is not PartitionState.AVAILABLE or param.zero_meta is None:
            return
        san = self._zerosan()
        if san is not None:
            san.on_release(param)
        self._account_release(param)
        param.data = self._released_data(param, param.zero_meta.np_dtype)
        param.state = PartitionState.PARTITIONED

    # --- shard access (optimizer path) -----------------------------------------
    def get_shard(self, param: Parameter, rank: int) -> np.ndarray:
        """This rank's fp16 shard (owner layout: the rank's slice of it)."""
        meta: ZeroParamMeta = param.zero_meta
        if meta.owner_rank is None:
            return self.offload.fetch(self._key(param, rank, "param16"), rank=rank)
        full = self.offload.fetch(
            self._key(param, meta.owner_rank, "param16"), rank=meta.owner_rank
        )
        lo = rank * meta.shard_numel
        return full[lo : lo + meta.shard_numel]

    def update_shard(self, param: Parameter, rank: int, new_shard: np.ndarray) -> None:
        """Write back an updated fp16 shard (post optimizer step)."""
        meta: ZeroParamMeta = param.zero_meta
        if new_shard.size != meta.shard_numel:
            raise ValueError(
                f"shard size {new_shard.size} != expected {meta.shard_numel}"
            )
        if meta.owner_rank is None:
            self.offload.stash(
                self._key(param, rank, "param16"),
                new_shard.astype(meta.np_dtype, copy=False),
                self.offload.config.param_device,
                rank=rank,
            )
        else:
            # write-through: mutate the owner's stored buffer in place
            # instead of fetching, patching and re-stashing the whole
            # parameter every optimizer step
            self.offload.update_slice(
                self._key(param, meta.owner_rank, "param16"),
                rank * meta.shard_numel,
                new_shard.astype(meta.np_dtype, copy=False),
                rank=meta.owner_rank,
            )

    def free(self, param: Parameter) -> None:
        """Drop every stored shard of ``param`` (used when a parameter is
        replaced, e.g. by memory-centric tiling)."""
        meta: ZeroParamMeta = param.zero_meta
        if meta is None:
            return
        if param.state is PartitionState.AVAILABLE:
            # a gathered copy is being dropped along with the shards
            # (memory-centric tiling replaces the parameter wholesale)
            self._account_release(param)
        ranks = (
            range(meta.world_size) if meta.owner_rank is None else [meta.owner_rank]
        )
        for r in ranks:
            self.offload.discard(self._key(param, r, "param16"))
        param.zero_meta = None

    # --- prefetch support ----------------------------------------------------------
    def prefetch_keys(self, param: Parameter) -> list[tuple[str, int]]:
        """(key, rank) pairs whose fetch reconstructs this parameter."""
        meta: ZeroParamMeta = param.zero_meta
        if meta is None:
            return []
        if meta.owner_rank is None:
            return [
                (self._key(param, r, "param16"), r) for r in range(meta.world_size)
            ]
        return [(self._key(param, meta.owner_rank, "param16"), meta.owner_rank)]
