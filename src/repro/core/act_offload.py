"""Activation checkpoint offload targets (Sec. 5.1.2 + Sec. 8.2 future work).

:class:`CPUActivationOffloader` copies checkpoints into CPU-tagged,
ledger-accounted buffers — the paper's shipped design.
:class:`NVMeActivationOffloader` spools them through the tensor store with
asynchronous writes — the improvement Sec. 8.2 names for the 20T case
("offloading activation checkpoints to NVMe in a future implementation"):
the write overlaps the remaining forward compute and the read is awaited at
the start of the block's backward.

``install_activation_offload`` wires an offloader into every
:class:`~repro.nn.checkpoint.CheckpointedBlock` of a model; the engine calls
it when ``OffloadConfig.activation_device`` is CPU or NVMe.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.core.config import OffloadDevice
from repro.hardware.memory import MemoryLedger
from repro.nn.checkpoint import ActivationOffloader, CheckpointedBlock
from repro.nn.module import Module
from repro.nvme.store import TensorStore


class CPUActivationOffloader(ActivationOffloader):
    """Checkpoints live in host memory between forward and backward."""

    # inherits save/load; exists for symmetry and explicit naming


class NVMeActivationOffloader(ActivationOffloader):
    """Checkpoints spool to the NVMe tensor store asynchronously."""

    _ids = itertools.count()

    def __init__(
        self, store: TensorStore, *, ledger: Optional[MemoryLedger] = None
    ) -> None:
        super().__init__(ledger)
        self.store = store
        self._uid = next(self._ids)
        self._seq = 0

    def save(self, array: np.ndarray) -> object:
        key = f"act.{self._uid}.{self._seq}"
        self._seq += 1
        self.bytes_offloaded += array.nbytes
        # async write: overlaps the rest of the forward pass; the handle is
        # retained so load() can synchronise before reading
        req = self.store.write_async(key, array)
        return (key, req)

    def load(self, handle: object) -> np.ndarray:
        key, req = handle  # type: ignore[misc]
        req.wait()
        out = self.store.read(key)
        self.bytes_restored += out.nbytes
        self.store.delete(key)  # checkpoints are single-use
        return out

    def discard(self, handle: object) -> None:
        """Drop an unrestored checkpoint: drain the write, delete the key."""
        key, req = handle  # type: ignore[misc]
        req.wait()  # the async write still targets the spool file
        self.store.delete(key)


def install_activation_offload(
    model: Module,
    device: OffloadDevice,
    *,
    store: Optional[TensorStore] = None,
    ledger: Optional[MemoryLedger] = None,
) -> list[ActivationOffloader]:
    """Attach an offloader per CheckpointedBlock; returns the offloaders.

    Raises when NVMe placement is requested without a store, or when the
    model has no checkpointed blocks to offload (a configuration mistake
    worth failing loudly on).
    """
    if device is OffloadDevice.NONE:
        return []
    blocks = [m for m in model.modules() if isinstance(m, CheckpointedBlock)]
    if not blocks:
        raise ValueError(
            "activation offload configured but the model has no"
            " CheckpointedBlock (enable activation_checkpointing)"
        )
    offloaders: list[ActivationOffloader] = []
    for block in blocks:
        if device is OffloadDevice.CPU:
            off = CPUActivationOffloader(ledger)
        elif device is OffloadDevice.NVME:
            if store is None:
                raise ValueError("NVMe activation offload requires a tensor store")
            off = NVMeActivationOffloader(store, ledger=ledger)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unsupported activation device {device}")
        block.offloader = off
        offloaders.append(off)
    return offloaders
