"""Training-state checkpointing for the ZeRO-Infinity engine.

Real large-model training cannot gather a consolidated checkpoint on one
process (the model may not fit anywhere); DeepSpeed therefore writes
*sharded* checkpoints — each rank persists its own parameter and optimizer
shards.  This module implements both formats over a directory:

* :func:`save_checkpoint` / :func:`load_checkpoint` — sharded: every
  (parameter, rank) fp16 shard and fp32 optimizer-state shard is written
  through the engine's async I/O path, plus a JSON manifest with layout
  metadata (world size, stage, step counters, loss-scale state).  Loading
  requires an engine with the same world size and parameter names.
* :func:`save_consolidated` — a gather-based full ``state_dict`` export for
  interchange at scales where it fits (the analogue of
  ``zero_to_fp32.py``).

Checkpoint layout::

    <dir>/manifest.json
    <dir>/param/<name>.r<rank>.npy          fp16 parameter shard
    <dir>/optim/<name>.r<rank>.<kind>.npy   fp32 master / exp_avg / exp_avg_sq
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from repro.core.engine import ZeroInfinityEngine
from repro.core.config import ZeroStage

MANIFEST = "manifest.json"
FORMAT_VERSION = 1


def _safe(name: str) -> str:
    return name.replace(os.sep, "__")


def _atomic_save(path: str, array: np.ndarray) -> None:
    """Write ``array`` to ``path`` via temp-then-rename.

    A writer killed mid-save must never leave a torn ``.npy`` behind: the
    rename is the commit point, so readers observe either the old complete
    file or the new complete file (same guarantee the spool gives via
    ``TensorStore`` atomic commits, see docs/resilience.md).
    """
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as f:
            np.save(f, array)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _atomic_json(path: str, obj: dict) -> None:
    """Commit a JSON document with the same temp-then-rename discipline.

    The manifest is the checkpoint's root pointer — written last, so a
    complete manifest implies every shard file it names is complete.
    """
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w") as f:
            json.dump(obj, f, indent=2, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _param_path(directory: str, name: str, rank: int) -> str:
    return os.path.join(directory, "param", f"{_safe(name)}.r{rank}.npy")


def _optim_path(directory: str, name: str, rank: int, kind: str) -> str:
    return os.path.join(directory, "optim", f"{_safe(name)}.r{rank}.{kind}.npy")


def save_checkpoint(engine: ZeroInfinityEngine, directory: str) -> dict:
    """Persist a sharded checkpoint; returns the manifest written."""
    os.makedirs(os.path.join(directory, "param"), exist_ok=True)
    os.makedirs(os.path.join(directory, "optim"), exist_ok=True)
    world = engine.config.world_size
    opt = engine.optimizer
    if not opt._initialized:
        opt.initialize_states()

    param_meta = {}
    for name, p in engine.model.named_parameters():
        param_meta[name] = {
            "shape": list(p.full_shape),
            "dtype": str(np.dtype(p.zero_meta.np_dtype if p.zero_meta else p.data.dtype)),
        }
        for rank in range(world):
            if engine.config.stage >= ZeroStage.PARAMETERS:
                shard = engine.partitioner.get_shard(p, rank)
            else:
                shard = opt._param_shard_fp32(p, rank).astype(
                    p.data.dtype
                )  # slice of the replicated tensor
            _atomic_save(_param_path(directory, name, rank), shard)
            ref = opt._refs.get((p.unique_id, rank))
            if ref is not None:
                for kind in opt.STATE_KINDS:
                    state = engine.offload.fetch(getattr(ref, kind), rank=rank)
                    _atomic_save(_optim_path(directory, name, rank, kind), state)

    manifest = {
        "format_version": FORMAT_VERSION,
        "world_size": world,
        "stage": int(engine.config.stage),
        "steps_taken": engine.steps_taken,
        "steps_skipped": engine.steps_skipped,
        "loss_scale": engine.scaler.loss_scale,
        "param_names": param_meta,
    }
    # optimizer step counts keyed by (name, rank) for portability
    name_by_id = {p.unique_id: n for n, p in engine.model.named_parameters()}
    manifest["optimizer_steps"] = {
        f"{name_by_id[pid]}|{rank}": ref.step
        for (pid, rank), ref in opt._refs.items()
    }
    _atomic_json(os.path.join(directory, MANIFEST), manifest)
    return manifest


def load_checkpoint(engine: ZeroInfinityEngine, directory: str) -> dict:
    """Restore a sharded checkpoint into a compatible engine.

    The engine must have the same world size and parameter names (shape
    compatibility is verified per shard).  Returns the manifest.
    """
    with open(os.path.join(directory, MANIFEST)) as f:
        manifest = json.load(f)
    if manifest["format_version"] != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {manifest['format_version']} not supported"
        )
    world = engine.config.world_size
    if manifest["world_size"] != world:
        raise ValueError(
            f"checkpoint written for world {manifest['world_size']},"
            f" engine has {world}"
        )
    names = {n for n, _ in engine.model.named_parameters()}
    ck_names = set(manifest["param_names"])
    if names != ck_names:
        missing = sorted(names ^ ck_names)[:5]
        raise ValueError(f"parameter name mismatch, e.g. {missing}")

    opt = engine.optimizer
    if not opt._initialized:
        opt.initialize_states()
    for name, p in engine.model.named_parameters():
        expected = tuple(manifest["param_names"][name]["shape"])
        if tuple(p.full_shape) != expected:
            raise ValueError(
                f"{name}: checkpoint shape {expected} != model {p.full_shape}"
            )
        for rank in range(world):
            shard = np.load(_param_path(directory, name, rank))
            if engine.config.stage >= ZeroStage.PARAMETERS:
                engine.partitioner.update_shard(p, rank, shard)
            else:
                flat = p.data.reshape(-1)
                sn = opt._shard_numel(p)
                lo = rank * sn
                hi = min(lo + sn, flat.size)
                if hi > lo:
                    flat[lo:hi] = shard[: hi - lo]
            ref = opt._refs[(p.unique_id, rank)]
            for kind in opt.STATE_KINDS:
                path = _optim_path(directory, name, rank, kind)
                state = np.load(path)
                engine.offload.stash(
                    getattr(ref, kind),
                    state,
                    engine.config.offload.optimizer_device,
                    rank=rank,
                )
            ref.step = manifest["optimizer_steps"].get(f"{name}|{rank}", 0)

    engine.steps_taken = manifest["steps_taken"]
    engine.steps_skipped = manifest["steps_skipped"]
    if hasattr(engine.scaler, "scale"):
        engine.scaler.scale = manifest["loss_scale"]
    return manifest


def reshard_checkpoint(
    src_directory: str, dst_directory: str, new_world_size: int
) -> dict:
    """Convert a sharded checkpoint to a different world size.

    The elastic-training feature (DeepSpeed's "universal checkpoint"): a
    run saved on N ranks resumes on M.  Each parameter's fp16 shards and
    fp32 optimizer-state shards are concatenated, stripped of the old
    padding, re-padded for the new world size and re-split.  Optimizer step
    counts carry over (they are per parameter, not per rank).
    """
    if new_world_size <= 0:
        raise ValueError("new_world_size must be positive")
    with open(os.path.join(src_directory, MANIFEST)) as f:
        manifest = json.load(f)
    old_world = manifest["world_size"]
    os.makedirs(os.path.join(dst_directory, "param"), exist_ok=True)
    os.makedirs(os.path.join(dst_directory, "optim"), exist_ok=True)

    from repro.tensor.flat import pad_to_multiple

    new_steps: dict[str, int] = {}
    for name, meta in manifest["param_names"].items():
        numel = 1
        for s in meta["shape"]:
            numel *= s
        new_padded = pad_to_multiple(max(numel, 1), new_world_size)
        new_shard = new_padded // new_world_size

        def resplit(load_path_fn, save_path_fn):
            full = np.concatenate(
                [load_path_fn(rank) for rank in range(old_world)]
            )[:numel]
            out = np.zeros(new_padded, dtype=full.dtype)
            out[:numel] = full
            for rank in range(new_world_size):
                save_path_fn(rank, out[rank * new_shard : (rank + 1) * new_shard])

        resplit(
            lambda r: np.load(_param_path(src_directory, name, r)),
            lambda r, shard: _atomic_save(
                _param_path(dst_directory, name, r), shard
            ),
        )
        for kind in ("master", "exp_avg", "exp_avg_sq"):
            resplit(
                lambda r, k=kind: np.load(_optim_path(src_directory, name, r, k)),
                lambda r, shard, k=kind: _atomic_save(
                    _optim_path(dst_directory, name, r, k), shard
                ),
            )
        # step counts are uniform across ranks for a given parameter
        new_steps.update(
            {
                f"{name}|{rank}": manifest["optimizer_steps"].get(f"{name}|0", 0)
                for rank in range(new_world_size)
            }
        )

    new_manifest = dict(manifest)
    new_manifest["world_size"] = new_world_size
    new_manifest["optimizer_steps"] = new_steps
    _atomic_json(os.path.join(dst_directory, MANIFEST), new_manifest)
    return new_manifest


def save_consolidated(
    engine: ZeroInfinityEngine, path: str, *, dtype: Optional[str] = None
) -> None:
    """Gather a full (unsharded) state dict and save it as one ``.npz``.

    The interchange/export path — only valid when the consolidated model
    fits in host memory, like DeepSpeed's zero_to_fp32 conversion.
    """
    state = engine.gather_state()
    if dtype is not None:
        state = {k: v.astype(dtype) for k, v in state.items()}
    np.savez(path, **{_safe(k): v for k, v in state.items()})


def load_consolidated(path: str) -> dict[str, np.ndarray]:
    """Read a consolidated ``.npz`` back into a name -> array dict."""
    with np.load(path) as data:
        return {k.replace("__", os.sep): data[k] for k in data.files}
