"""Maximum trainable model size per strategy (Fig. 1, Fig. 6a).

For each Table 2 strategy this module answers "does a model of P parameters
fit on this cluster?" from the Sec. 3 memory model, then binary-searches the
largest P.  The per-strategy placement arithmetic:

===============  ===========================================  ==================
strategy         GPU bytes/param                              slow-memory bound
===============  ===========================================  ==================
data parallel    20 (all three states replicated)             —
ZeRO-1           2 + 2 + 16/dp                                —
ZeRO-2           2 + (2 + 16)/dp                              —
ZeRO-Offload     2 (fp16 params replicated)                   18 P <= CPU
3D parallelism   20 / (mp * pp * dp) = 20 / N                 —
ZeRO-3           20 / dp                                      —
ZeRO-Inf (CPU)   ~0 (states partitioned + offloaded)          20 P <= CPU
ZeRO-Inf (NVMe)  ~0                                           20 P <= NVMe
===============  ===========================================  ==================

plus, for every strategy, per-GPU working memory: MSWM (Eq. 4; divided by
the tiling factor for ZeRO-Infinity, by mp for 3D parallelism) and AWM
(Eq. 5), and activation checkpoints (Eq. 3) on GPU — or on CPU for
ZeRO-Infinity, which offloads them (Sec. 5.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.memory_model import (
    activation_checkpoint_bytes,
    awm_bytes,
    layers_for_params,
    mswm_bytes,
)
from repro.core.config import Strategy
from repro.hardware.topology import ClusterTopology


def default_hidden_dim(params: int) -> int:
    """A paper-like hidden size for a given scale (Table 1 progression)."""
    K = 1024
    for bound, hd in [
        (2e9, 1536),
        (25e9, 4 * K),
        (150e9, 8 * K),
        (700e9, 18 * K),
        (2e12, 25 * K),
        (7e12, 48 * K),
        (15e12, 64 * K),
        (50e12, 88 * K),
        (float("inf"), 160 * K),
    ]:
        if params < bound:
            return hd
    raise AssertionError("unreachable")


def default_attn_heads(hidden_dim: int) -> int:
    """Heads scale with hidden size (Table 1 progression)."""
    return max(16, min(1024, hidden_dim // 128))


@dataclass(frozen=True)
class FitReport:
    """Whether a model fits, and what resource binds first."""

    fits: bool
    limiting_factor: str
    gpu_bytes_needed: int  # per GPU
    cpu_bytes_needed: int  # per cluster
    nvme_bytes_needed: int  # per cluster


@dataclass(frozen=True)
class MaxScaleResult:
    strategy: Strategy
    max_params: int
    hidden_dim: int
    num_layers: int
    limiting_factor: str


def model_fits(
    strategy: Strategy,
    cluster: ClusterTopology,
    params: int,
    *,
    seq: int = 1024,
    bsz_per_gpu: int = 1,
    mp_degree: int = 1,
    tile_factor: int = 1,
    hidden_dim: int | None = None,
    ci: int = 1,
) -> FitReport:
    """Check one (strategy, cluster, model size) combination."""
    if params <= 0:
        raise ValueError("params must be positive")
    hd = hidden_dim if hidden_dim is not None else default_hidden_dim(params)
    heads = default_attn_heads(hd)
    nl = layers_for_params(params, hd)
    n_gpus = cluster.num_gpus
    dp = max(n_gpus // mp_degree, 1)
    gpu_cap = cluster.node.gpu.memory.capacity_bytes
    cpu_cap = cluster.cpu_memory_bytes
    nvme_cap = cluster.nvme_bytes

    # --- model-state placement ------------------------------------------------
    cpu_needed = 0
    nvme_needed = 0
    if strategy is Strategy.DATA_PARALLEL:
        gpu_state = 20 * params
    elif strategy is Strategy.ZERO_2:
        gpu_state = 2 * params + (2 + 16) * params // dp
    elif strategy is Strategy.ZERO_OFFLOAD:
        gpu_state = 2 * params
        cpu_needed = 18 * params
    elif strategy is Strategy.THREED:
        gpu_state = 20 * params // n_gpus
    elif strategy is Strategy.ZERO_3:
        gpu_state = 20 * params // dp
    elif strategy is Strategy.ZERO_INF_CPU:
        gpu_state = 0
        cpu_needed = 20 * params
    elif strategy is Strategy.ZERO_INF_NVME:
        gpu_state = 0
        nvme_needed = 20 * params
    else:  # pragma: no cover - exhaustive over Strategy
        raise ValueError(f"unknown strategy {strategy}")

    # --- working memory on GPU ------------------------------------------------
    mswm = mswm_bytes(hd)
    if strategy is Strategy.THREED:
        mswm //= mp_degree  # tensor slicing splits the big linear
    elif strategy in (Strategy.ZERO_INF_CPU, Strategy.ZERO_INF_NVME):
        mswm //= tile_factor  # memory-centric tiling (Sec. 5.1.3)
    awm = awm_bytes(bsz=bsz_per_gpu, seq=seq, hidden_dim=hd, attn_heads=heads, ci=ci)

    # --- activation checkpoints -------------------------------------------------
    ckpt_per_node = activation_checkpoint_bytes(
        bsz=bsz_per_gpu * cluster.node.gpus_per_node,
        seq=seq,
        hidden_dim=hd,
        num_layers=nl,
        ci=ci,
    )
    if strategy in (Strategy.ZERO_INF_CPU, Strategy.ZERO_INF_NVME):
        cpu_needed += ckpt_per_node * cluster.num_nodes  # CPU offload (5.1.2)
        gpu_ckpt = 0
    else:
        gpu_ckpt = ckpt_per_node // cluster.node.gpus_per_node

    gpu_needed = gpu_state + mswm + awm + gpu_ckpt

    limits = []
    if gpu_needed > gpu_cap:
        limits.append("gpu-memory")
    if cpu_needed > cpu_cap:
        limits.append("cpu-memory")
    if nvme_needed > nvme_cap:
        limits.append("nvme-capacity")
    return FitReport(
        fits=not limits,
        limiting_factor=limits[0] if limits else "",
        gpu_bytes_needed=gpu_needed,
        cpu_bytes_needed=cpu_needed,
        nvme_bytes_needed=nvme_needed,
    )


def max_model_size(
    strategy: Strategy,
    cluster: ClusterTopology,
    *,
    seq: int = 1024,
    bsz_per_gpu: int = 1,
    mp_degree: int = 1,
    tile_factor: int = 1,
    ci: int = 1,
) -> MaxScaleResult:
    """Largest parameter count that fits, by exponential + binary search."""
    lo = 10**6  # a million parameters always fits on the smallest target
    report = model_fits(
        strategy,
        cluster,
        lo,
        seq=seq,
        bsz_per_gpu=bsz_per_gpu,
        mp_degree=mp_degree,
        tile_factor=tile_factor,
        ci=ci,
    )
    if not report.fits:
        return MaxScaleResult(strategy, 0, 0, 0, report.limiting_factor)
    hi = lo
    while True:
        hi *= 2
        report = model_fits(
            strategy,
            cluster,
            hi,
            seq=seq,
            bsz_per_gpu=bsz_per_gpu,
            mp_degree=mp_degree,
            tile_factor=tile_factor,
            ci=ci,
        )
        if not report.fits:
            break
        lo = hi
        if hi > 10**16:  # 10 quadrillion params: search guard
            break
    limiting = report.limiting_factor
    while hi - lo > max(lo // 1000, 1):
        mid = (lo + hi) // 2
        report = model_fits(
            strategy,
            cluster,
            mid,
            seq=seq,
            bsz_per_gpu=bsz_per_gpu,
            mp_degree=mp_degree,
            tile_factor=tile_factor,
            ci=ci,
        )
        if report.fits:
            lo = mid
        else:
            hi = mid
            limiting = report.limiting_factor
    hd = default_hidden_dim(lo)
    return MaxScaleResult(
        strategy=strategy,
        max_params=lo,
        hidden_dim=hd,
        num_layers=layers_for_params(lo, hd),
        limiting_factor=limiting,
    )
