"""Configuration recommendation: where should this model's states live?

Table 1 encodes the authors' placement decisions per scale (GPU to 10B on a
node, CPU params + NVMe optimizer at 50-100B, all-NVMe at 0.5T+).  This
module turns that implicit decision procedure into an explicit planner:

1. choose the *fastest tier that fits* for each model state, in order
   GPU -> CPU -> NVMe (capacity checks from the Sec. 3 memory model);
2. pick the smallest memory-centric tiling factor whose largest tile's
   MSWM fits GPU working memory;
3. from the Sec. 4 efficiency model, report the minimum batch per GPU at
   which the slow-memory bandwidth sustains the target efficiency;
4. estimate achievable TFLOPs/GPU with the step simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analytics.bandwidth_model import (
    DEFAULT_PEAK_TP,
    ait_optimizer_states,
    ait_param_grad,
    efficiency,
)
from repro.analytics.memory_model import (
    activation_checkpoint_bytes,
    layers_for_params,
    mswm_bytes,
)
from repro.core.config import OffloadConfig, OffloadDevice, ZeroConfig, ZeroStage
from repro.core.scale import default_attn_heads, default_hidden_dim
from repro.hardware.topology import ClusterTopology


@dataclass(frozen=True)
class RecommendedPlan:
    """The planner's output: placements plus the numbers behind them."""

    params: int
    hidden_dim: int
    num_layers: int
    param_device: OffloadDevice
    optimizer_device: OffloadDevice
    activation_device: OffloadDevice
    tile_factor: int
    min_batch_per_gpu: int
    expected_tflops_per_gpu: float
    notes: tuple[str, ...]

    def to_zero_config(self, world_size: int) -> ZeroConfig:
        """Materialise the plan as an engine configuration."""
        return ZeroConfig(
            world_size=world_size,
            stage=ZeroStage.PARAMETERS,
            offload=OffloadConfig(
                param_device=self.param_device,
                grad_device=self.param_device,
                optimizer_device=self.optimizer_device,
                activation_device=self.activation_device,
            ),
            tile_factor=self.tile_factor,
            # tiling targets the MSWM-dominating linears (the 4h x h MLP
            # weights); anything at least h^2 elements is tiled
            tile_linear_threshold_numel=(
                self.hidden_dim * self.hidden_dim
                if self.tile_factor > 1
                else None
            ),
        )


def _first_fitting_tier(
    needed: int, *, gpu_free: int, cpu_free: int, nvme_free: int
) -> Optional[OffloadDevice]:
    if needed <= gpu_free:
        return OffloadDevice.NONE
    if needed <= cpu_free:
        return OffloadDevice.CPU
    if needed <= nvme_free:
        return OffloadDevice.NVME
    return None


def recommend_config(
    cluster: ClusterTopology,
    params: int,
    *,
    seq: int = 1024,
    bsz_per_gpu: int = 2,
    hidden_dim: Optional[int] = None,
    target_efficiency: float = 0.5,
    gpu_reserve_fraction: float = 0.3,
    peak_tp: float = DEFAULT_PEAK_TP,
) -> RecommendedPlan:
    """Plan device placement and tiling for ``params`` on ``cluster``.

    Raises ``ValueError`` when no placement fits — with the limiting
    resource named, mirroring the scale solver's diagnostics.
    """
    if params <= 0:
        raise ValueError("params must be positive")
    hd = hidden_dim if hidden_dim is not None else default_hidden_dim(params)
    nl = layers_for_params(params, hd)
    heads = default_attn_heads(hd)
    notes: list[str] = []

    gpus = cluster.num_gpus
    # reserve a slice of GPU memory for working tensors and activations
    gpu_budget = int(
        cluster.gpu_memory_bytes * (1.0 - gpu_reserve_fraction)
    )
    cpu_budget = cluster.cpu_memory_bytes
    nvme_budget = cluster.nvme_bytes

    # --- activation checkpoints claim their tier first (Sec. 5.1.2) -------
    ckpt = activation_checkpoint_bytes(
        bsz=bsz_per_gpu * cluster.node.gpus_per_node,
        seq=seq,
        hidden_dim=hd,
        num_layers=nl,
    ) * cluster.num_nodes
    if ckpt <= gpu_budget // 4:
        act_device = OffloadDevice.NONE
        gpu_budget -= ckpt
    elif ckpt <= cpu_budget:
        act_device = OffloadDevice.CPU
        cpu_budget -= ckpt
        notes.append("activation checkpoints offloaded to CPU")
    elif ckpt <= nvme_budget:
        act_device = OffloadDevice.NVME
        nvme_budget -= ckpt
        notes.append("activation checkpoints offloaded to NVMe (Sec. 8.2)")
    else:
        raise ValueError("activation checkpoints exceed every tier: nvme-capacity")

    # --- fp16 parameters + gradients (4 B/param), then optimizer (16 B) ---
    pg_bytes = 4 * params
    param_device = _first_fitting_tier(
        pg_bytes, gpu_free=gpu_budget, cpu_free=cpu_budget, nvme_free=nvme_budget
    )
    if param_device is None:
        raise ValueError("parameters+gradients exceed every tier: nvme-capacity")
    if param_device is OffloadDevice.NONE:
        gpu_budget -= pg_bytes
    elif param_device is OffloadDevice.CPU:
        cpu_budget -= pg_bytes
        notes.append("fp16 parameters+gradients offloaded to CPU")
    else:
        nvme_budget -= pg_bytes
        notes.append("fp16 parameters+gradients offloaded to NVMe")

    opt_bytes = 16 * params
    optimizer_device = _first_fitting_tier(
        opt_bytes, gpu_free=gpu_budget, cpu_free=cpu_budget, nvme_free=nvme_budget
    )
    if optimizer_device is None:
        raise ValueError("optimizer states exceed every tier: nvme-capacity")
    if optimizer_device is OffloadDevice.CPU:
        notes.append("optimizer states offloaded to CPU")
    elif optimizer_device is OffloadDevice.NVME:
        notes.append("optimizer states offloaded to NVMe (chunked streaming)")

    # --- memory-centric tiling factor (per-dimension, Sec. 5.1.3) ---------
    per_gpu = cluster.node.gpu.memory.capacity_bytes
    working_budget = per_gpu // 4
    tile_factor = 1
    while mswm_bytes(hd) // (tile_factor**2) > working_budget:
        tile_factor *= 2
        if tile_factor > 256:
            raise ValueError("no tiling factor fits the working memory")
    if tile_factor > 1:
        notes.append(
            f"memory-centric tiling x{tile_factor} (MSWM"
            f" {mswm_bytes(hd) / 1e9:.1f} GB untiled)"
        )

    # --- minimum efficient batch (Sec. 4) ---------------------------------
    slowest_bw = {
        OffloadDevice.NONE: cluster.node.gpu.memory.read_bw,
        OffloadDevice.CPU: cluster.node.cpu_bw_per_gpu_parallel,
        OffloadDevice.NVME: cluster.node.nvme_bw_per_gpu_parallel,
    }
    pg_bw = slowest_bw[param_device]
    min_batch = 1
    while (
        efficiency(
            ait=ait_param_grad(seq=seq, bsz=min_batch), bw=pg_bw, peak_tp=peak_tp
        )
        < target_efficiency
        and min_batch < 4096
    ):
        min_batch *= 2
    # optimizer bandwidth is aggregate across ranks (Sec. 5.2.2); check it
    opt_bw_agg = slowest_bw[optimizer_device] * gpus
    opt_eff = efficiency(
        ait=ait_optimizer_states(seq=seq, bsz=max(bsz_per_gpu, min_batch)),
        bw=opt_bw_agg / gpus,
        peak_tp=peak_tp,
    )
    if opt_eff < target_efficiency:
        notes.append(
            "optimizer-state bandwidth is the efficiency bound; increase"
            " batch or gradient accumulation"
        )

    # --- expected throughput from the simulator ---------------------------
    from repro.sim.step_model import SimPolicy, SimWorkload, StepSimulator

    wl = SimWorkload(
        params=params,
        num_layers=nl,
        hidden_dim=hd,
        attn_heads=heads,
        batch_per_gpu=max(bsz_per_gpu, min_batch),
        seq=seq,
    )
    policy = SimPolicy(
        name="recommended",
        param_device=param_device,
        grad_device=param_device,
        optimizer_device=optimizer_device,
        act_offload=act_device is not OffloadDevice.NONE,
    )
    tflops = StepSimulator(cluster, wl, policy, peak_tp=peak_tp).simulate().tflops_per_gpu

    return RecommendedPlan(
        params=params,
        hidden_dim=hd,
        num_layers=nl,
        param_device=param_device,
        optimizer_device=optimizer_device,
        activation_device=act_device,
        tile_factor=tile_factor,
        min_batch_per_gpu=min_batch,
        expected_tflops_per_gpu=tflops,
        notes=tuple(notes),
    )
