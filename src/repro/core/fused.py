"""Fused flat-buffer ZeRO-1/2: the bucketed stage-1/2 implementation.

The ZeRO paper's stage 1/2 implementation (and DeepSpeed's) does not shard
each parameter individually: it flattens *all* gradients into one
contiguous buffer, reduce-scatters the whole buffer in a single (bucketed)
collective, updates each rank's flat slice with a fused Adam, and
allgathers the updated fp16 values back — two collectives per step
regardless of parameter count, instead of one per tensor.

:class:`FusedZeroTrainer` realises that design over the functional layer:
``world_size`` model replicas (parameters replicated, as in stages 1/2),
a single fp32 master/momentum/variance flat buffer partitioned by slice,
and comm-stats that make the collective-count win measurable against
:class:`~repro.baselines.ddp.DDPTrainer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.comm.group import ProcessGroup
from repro.nn.module import Module
from repro.optim.adam import adam_step
from repro.tensor.flat import pad_to_multiple


@dataclass
class FusedLayout:
    """Where each parameter lives inside the fused flat buffer."""

    names: list[str]
    shapes: list[tuple[int, ...]]
    offsets: list[int]
    total_numel: int
    padded_numel: int

    @staticmethod
    def build(named_params: Sequence[tuple[str, object]], world: int) -> "FusedLayout":
        names, shapes, offsets = [], [], []
        off = 0
        for name, p in named_params:
            names.append(name)
            shapes.append(tuple(p.data.shape))
            offsets.append(off)
            off += int(p.data.size)
        return FusedLayout(
            names=names,
            shapes=shapes,
            offsets=offsets,
            total_numel=off,
            padded_numel=pad_to_multiple(max(off, 1), world),
        )

    def slices(self):
        for name, shape, off in zip(self.names, self.shapes, self.offsets):
            n = int(np.prod(shape, dtype=np.int64)) if shape else 1
            yield name, shape, slice(off, off + n)


class FusedZeroTrainer:
    """Stage-1/2 training: replicated params, partitioned fused optimizer.

    ``bucket_numel`` splits the single reduce-scatter into fixed-size
    bucket collectives (DeepSpeed's ``reduce_bucket_size``) so reduction of
    early buckets could overlap late backward in a real runtime; the
    functional effect here is the collective count:
    ``ceil(padded/bucket)`` reduce-scatters + 1 allgather per step.
    """

    def __init__(
        self,
        model_factory: Callable[[], Module],
        world_size: int,
        *,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        bucket_numel: int = 1 << 20,
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if bucket_numel <= 0:
            raise ValueError("bucket_numel must be positive")
        self.world = world_size
        self.comm = ProcessGroup(world_size)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.bucket_numel = bucket_numel

        self.replicas = [model_factory() for _ in range(world_size)]
        ref = self.replicas[0]
        for replica in self.replicas[1:]:
            for p, r in zip(replica.parameters(), ref.parameters()):
                p.data = r.data.copy()
        self.layout = FusedLayout.build(list(ref.named_parameters()), world_size)
        if self.layout.padded_numel % world_size:
            raise AssertionError("padding invariant violated")

        # fp32 fused state, partitioned: rank r owns flat[r*shard:(r+1)*shard]
        self.shard_numel = self.layout.padded_numel // world_size
        master = np.zeros(self.layout.padded_numel, dtype=np.float32)
        params = dict(ref.named_parameters())
        for name, shape, sl in self.layout.slices():
            master[sl] = params[name].data.reshape(-1).astype(np.float32)
        self.master = master
        self.exp_avg = np.zeros_like(master)
        self.exp_avg_sq = np.zeros_like(master)
        self.step_count = 0

    # --- helpers --------------------------------------------------------------
    def _flatten_grads(self, replica: Module) -> np.ndarray:
        flat = np.zeros(self.layout.padded_numel, dtype=np.float32)
        params = dict(replica.named_parameters())
        for name, shape, sl in self.layout.slices():
            g = params[name].grad
            if g is None:
                raise RuntimeError(f"parameter {name} has no gradient")
            flat[sl] = g.reshape(-1).astype(np.float32)
        return flat

    def _scatter_params(self, updated_flat: np.ndarray) -> None:
        for replica in self.replicas:
            params = dict(replica.named_parameters())
            for name, shape, sl in self.layout.slices():
                p = params[name]
                p.data = (
                    updated_flat[sl].reshape(shape).astype(p.data.dtype)
                )
                p.grad = None

    # --- the step -------------------------------------------------------------
    def train_step(self, batches: Sequence[tuple[np.ndarray, ...]]) -> list[float]:
        if len(batches) != self.world:
            raise ValueError(f"got {len(batches)} batches for world {self.world}")
        losses = []
        for replica, batch in zip(self.replicas, batches):
            loss = replica(*batch)
            replica.backward(1.0)
            losses.append(float(loss))

        # one fused, bucketed reduce-scatter over ALL gradients.  Each
        # bucket is partitioned rank-wise within itself (the owner of a
        # bucket slice runs its fused Adam there), so ownership is per
        # bucket region rather than one global slice — exactly how
        # bucketed stage-1/2 reducers assign work.
        flats = [self._flatten_grads(r) for r in self.replicas]
        n = self.layout.padded_numel
        bucket = pad_to_multiple(min(self.bucket_numel, n), self.world)
        for lo in range(0, n, bucket):
            hi = min(lo + bucket, n)
            pieces = self.comm.reduce_scatter(
                [f[lo:hi] for f in flats], op="mean"
            )
            piece_len = (hi - lo) // self.world
            for rank, piece in enumerate(pieces):
                sl = slice(lo + rank * piece_len, lo + (rank + 1) * piece_len)
                adam_step(
                    self.master[sl],
                    piece,
                    self.exp_avg[sl],
                    self.exp_avg_sq[sl],
                    step=self.step_count + 1,
                    lr=self.lr,
                    beta1=self.beta1,
                    beta2=self.beta2,
                    eps=self.eps,
                    weight_decay=self.weight_decay,
                )
        self.step_count += 1

        # one fused allgather of the updated values back to every replica
        shards = [
            self.master[r * self.shard_numel : (r + 1) * self.shard_numel].astype(
                np.float32
            )
            for r in range(self.world)
        ]
        updated = self.comm.allgather(shards)[0]
        self._scatter_params(updated)
        return losses

    def state_dict(self, rank: int = 0) -> dict[str, np.ndarray]:
        return {
            name: p.data.copy()
            for name, p in self.replicas[rank].named_parameters()
        }

    @property
    def collective_calls_per_step(self) -> float:
        """Observed collectives per completed step (from comm stats)."""
        if self.step_count == 0:
            return 0.0
        return self.comm.stats.total_calls / self.step_count
