"""Memory-centric tiling (Sec. 5.1.3).

A large linear operator is represented "as a mathematically equivalent
sequence of smaller linear operators consisting of tiles of parameters from
the original operator", executed sequentially.  Combined with ZeRO-3's
fetch-and-release pattern, each tile's parameters are resident only during
its own compute, shrinking working memory proportionally to the tile count —
so arbitrarily large operators fit "without relying on model parallelism".

:class:`TiledLinear` splits the weight ``[out, in]`` into an
``out_tiles x in_tiles`` grid of sub-``Linear`` modules:

* output tiles partition the rows: their results concatenate;
* input tiles partition the columns: their results sum (the bias joins the
  last input tile so it is added exactly once).

Each tile is a real :class:`~repro.nn.layers.Linear` leaf module, so the
ZeRO coordinator's hooks fetch and release tile parameters one at a time —
exactly the interplay the paper describes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.utils.rng import seeded_rng


def split_sizes(total: int, parts: int) -> list[int]:
    """Near-even split of ``total`` into ``parts`` positive sizes.

    >>> split_sizes(10, 3)
    [4, 3, 3]
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < parts:
        raise ValueError(f"cannot split {total} into {parts} non-empty parts")
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


class TiledLinear(Module):
    """A ``Linear`` decomposed into an ``out_tiles x in_tiles`` grid."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        out_tiles: int = 1,
        in_tiles: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else seeded_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.out_tiles = out_tiles
        self.in_tiles = in_tiles
        self.has_bias = bias
        self.out_sizes = split_sizes(out_features, out_tiles)
        self.in_sizes = split_sizes(in_features, in_tiles)
        self._grid: list[list[str]] = []
        for oi, osz in enumerate(self.out_sizes):
            row = []
            for ii, isz in enumerate(self.in_sizes):
                # bias joins only the final input tile of each row
                tile_bias = bias and (ii == in_tiles - 1)
                name = f"tile_{oi}_{ii}"
                setattr(
                    self, name, Linear(isz, osz, bias=tile_bias, rng=rng, dtype=dtype)
                )
                row.append(name)
            self._grid.append(row)
        self._in_bounds = np.cumsum([0] + self.in_sizes)

    # --- construction from an existing Linear -------------------------------------
    @classmethod
    def from_linear(
        cls, linear: Linear, *, out_tiles: int = 1, in_tiles: int = 1
    ) -> "TiledLinear":
        """Tile an existing layer, copying its weights exactly."""
        tiled = cls(
            linear.in_features,
            linear.out_features,
            out_tiles=out_tiles,
            in_tiles=in_tiles,
            bias=linear.has_bias,
            dtype=linear.weight.data.dtype,
        )
        tiled.load_from_full(
            linear.weight.data,
            linear.bias.data if linear.has_bias else None,
        )
        return tiled

    def load_from_full(
        self, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> None:
        """Copy a full ``[out, in]`` weight (and bias) into the tiles."""
        if weight.shape != (self.out_features, self.in_features):
            raise ValueError(
                f"weight shape {weight.shape} != "
                f"({self.out_features}, {self.in_features})"
            )
        o_lo = 0
        for oi, osz in enumerate(self.out_sizes):
            i_lo = 0
            for ii, isz in enumerate(self.in_sizes):
                tile: Linear = self._modules[self._grid[oi][ii]]
                tile.weight.data[...] = weight[o_lo : o_lo + osz, i_lo : i_lo + isz]
                if tile.has_bias and bias is not None:
                    tile.bias.data[...] = bias[o_lo : o_lo + osz]
                i_lo += isz
            o_lo += osz

    def to_full_weight(self) -> tuple[np.ndarray, Optional[np.ndarray]]:
        """Reassemble the full weight/bias (for equivalence checks)."""
        weight = np.zeros(
            (self.out_features, self.in_features),
            dtype=self._modules[self._grid[0][0]].weight.data.dtype,
        )
        bias = np.zeros(self.out_features, dtype=weight.dtype) if self.has_bias else None
        o_lo = 0
        for oi, osz in enumerate(self.out_sizes):
            i_lo = 0
            for ii, isz in enumerate(self.in_sizes):
                tile: Linear = self._modules[self._grid[oi][ii]]
                weight[o_lo : o_lo + osz, i_lo : i_lo + isz] = tile.weight.data
                if tile.has_bias and bias is not None:
                    bias[o_lo : o_lo + osz] = tile.bias.data
                i_lo += isz
            o_lo += osz
        return weight, bias

    # --- compute ---------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        outputs = []
        for oi in range(self.out_tiles):
            acc = None
            for ii in range(self.in_tiles):
                tile = self._modules[self._grid[oi][ii]]
                lo, hi = self._in_bounds[ii], self._in_bounds[ii + 1]
                part = tile(x[..., lo:hi])
                acc = part if acc is None else acc + part
            outputs.append(acc)
        return np.concatenate(outputs, axis=-1)

    def _backward(self, grad_y: np.ndarray) -> np.ndarray:
        grad_x = np.zeros(
            grad_y.shape[:-1] + (self.in_features,), dtype=grad_y.dtype
        )
        o_lo = 0
        for oi, osz in enumerate(self.out_sizes):
            g_out = grad_y[..., o_lo : o_lo + osz]
            # reverse tile order to mirror forward execution order exactly
            for ii in reversed(range(self.in_tiles)):
                tile = self._modules[self._grid[oi][ii]]
                lo, hi = self._in_bounds[ii], self._in_bounds[ii + 1]
                grad_x[..., lo:hi] += tile.backward(g_out)
            o_lo += osz
        return grad_x

    @property
    def max_tile_param_numel(self) -> int:
        """Largest per-tile parameter count — the MSWM after tiling."""
        best = 0
        for row in self._grid:
            for name in row:
                tile = self._modules[name]
                n = tile.weight.numel + (tile.bias.numel if tile.has_bias else 0)
                best = max(best, n)
        return best

    def extra_repr(self) -> str:
        return (
            f"in={self.in_features}, out={self.out_features},"
            f" tiles={self.out_tiles}x{self.in_tiles}, bias={self.has_bias}"
        )
