"""``ZeroInfinityEngine``: the public training facade.

Wires the subsystems together the way DeepSpeed's ``deepspeed.initialize``
does: communication group, offload engine, partitioner, prefetcher,
coordinator hooks, external-parameter machinery, partitioned optimizer and
loss scaling — then exposes ``train_step`` over per-rank microbatches.

The engine simulates ``world_size`` data-parallel ranks inside one process:
each rank runs its forward+backward in lockstep sequence against the single
shared (partitioned) model, collectives execute functionally across the
per-rank buffers, and the optimizer updates every rank's shard.  Numerics
are therefore *identical* to a real ZeRO-Infinity deployment modulo
reduction ordering, which the equivalence tests pin down against the
data-parallel baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.check.runtime import CheckContext, context_from_config, get_checker
from repro.comm.backend import CommBackend, CommPeerAbort
from repro.comm.group import ProcessGroup
from repro.core.config import OffloadDevice, ZeroConfig, ZeroStage
from repro.core.coordinator import ParameterCoordinator
from repro.core.external import (
    install_activation_introspection,
    install_parameter_interception,
)
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.core.prefetch import DynamicPrefetcher
from repro.core.tiling import TiledLinear
from repro.core.zero_optimizer import ZeroPartitionedAdam
from repro.faults.errors import FaultUnrecoverable
from repro.faults.runtime import get_faults
from repro.hardware.memory import AllocationError, MemoryLedger
from repro.nn.init_context import PartitionedInitContext
from repro.obs.flightrec import get_flightrec
from repro.obs.live import get_live
from repro.obs.memscope import get_memscope, mem_sample
from repro.obs.metrics import get_registry
from repro.obs.perfscope import (
    PerfSummary,
    build_step_ledgers,
    summarize_ledgers,
)
from repro.obs.tracer import get_tracer, trace_instant, trace_span
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.parameter import PartitionState
from repro.optim.loss_scaler import DynamicLossScaler, StaticLossScaler


@dataclass
class StepResult:
    """Outcome of one engine step."""

    losses: list[float]
    skipped: bool
    loss_scale: float

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.losses))


@dataclass
class EngineReport:
    """Data-movement and memory summary for diagnostics and benches."""

    comm_bytes_by_op: dict[str, int]
    host_link_bytes: dict[int, int]
    nvme_read_bytes: int
    nvme_write_bytes: int
    prefetch_hits: int
    prefetch_misses: int
    gathers: int
    releases: int
    pinned_peak_bytes: int
    gpu_peak_bytes: int = 0
    cpu_peak_bytes: int = 0
    activation_bytes_offloaded: int = 0
    activation_bytes_restored: int = 0
    prefetch_mispredicts: int = 0
    prefetch_issued: int = 0
    # Snapshot of the global metrics registry (repro.obs) at report time:
    # {metric name -> {"type": ..., "value"/"count"/...}}.  Process-global,
    # so values aggregate across every engine in the process.
    telemetry: dict[str, dict] = None  # type: ignore[assignment]
    # Collective-call counts per op plus the bucketed-reduce counters —
    # the comm-budget numbers the regression tests assert on.
    comm_calls_by_op: dict[str, int] = None  # type: ignore[assignment]
    bucket_flushes: int = 0
    grads_bucketed: int = 0
    # Peak resident bytes per tier ("gpu"/"cpu"/"nvme"/"pinned"): from the
    # live memscope when one is enabled, otherwise from ledger/pool/store
    # counters where configured.
    tier_peak_bytes: dict[str, int] = None  # type: ignore[assignment]
    # Resilience accounting (docs/resilience.md): how often each recovery
    # tier fired.  All zero on a healthy run.
    step_retries: int = 0  # engine-level step replays
    io_read_retries: int = 0  # aio per-block read retries
    io_write_retries: int = 0  # aio per-block write retries
    checksum_refetches: int = 0  # CRC mismatches healed by re-read
    checksum_failures: int = 0  # CRC mismatches that exhausted re-reads
    pinned_fallbacks: int = 0  # prefetches staged unpinned under pressure
    prefetch_fallbacks: int = 0  # failed prefetch reads redone sync
    aborted_commits: int = 0  # atomic spool commits rolled back
    # Injection counts per fault kind when a fault plane is installed
    # (empty otherwise) — lets chaos tests assert the schedule actually ran.
    faults_injected: dict[str, int] = None  # type: ignore[assignment]
    # Time-ledger summary (repro.obs.perfscope) when the global tracer was
    # enabled during the run: per-phase microseconds, stall attribution and
    # overlap over every traced engine:step.  Empty/zero when untraced.
    perf_steps_traced: int = 0
    perf_phase_us: dict[str, float] = None  # type: ignore[assignment]
    perf_stall_us_by_cause: dict[str, float] = None  # type: ignore[assignment]
    perf_overlap_fraction: float = 0.0
    perf_stall_fraction: float = 0.0
    perf_force_closed_spans: int = 0

    @property
    def total_collective_calls(self) -> int:
        return sum((self.comm_calls_by_op or {}).values())


def tile_oversized_linears(
    model: Module,
    *,
    threshold_numel: int,
    tile_factor: int,
    partitioner: Optional[ParameterPartitioner] = None,
) -> int:
    """Replace every ``Linear`` above ``threshold_numel`` weight elements
    with an output-tiled :class:`TiledLinear` (memory-centric tiling).

    Already-partitioned layers are gathered, tiled, their old shards
    discarded, and the tile parameters re-partitioned — so tiling composes
    with partition-on-init.  Returns the number of layers replaced.
    """
    if tile_factor < 1:
        raise ValueError("tile_factor must be >= 1")
    replaced = 0
    for _, module in model.named_modules():
        for name, child in list(module._modules.items()):
            if (
                not isinstance(child, Linear)
                or isinstance(child, TiledLinear)
                or child.weight.full_numel <= threshold_numel
            ):
                continue
            was_partitioned = child.weight.state is PartitionState.PARTITIONED
            if was_partitioned:
                if partitioner is None:
                    raise ValueError(
                        "tiling a partitioned layer requires the partitioner"
                    )
                for p in child.direct_parameters():
                    partitioner.gather(p)
            tiled = TiledLinear.from_linear(child, out_tiles=tile_factor)
            if was_partitioned:
                for p in child.direct_parameters():
                    partitioner.free(p)
                for p in tiled.parameters():
                    partitioner.partition(p)
            module._modules[name] = tiled
            replaced += 1
    return replaced


class ZeroInfinityEngine:
    """Train a model with ZeRO-{1,2,3} partitioning and infinity offload."""

    def __init__(
        self,
        config: ZeroConfig,
        *,
        model: Optional[Module] = None,
        model_factory: Optional[Callable[[], Module]] = None,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: Optional[float] = None,
        ledger: Optional[MemoryLedger] = None,
        intercept_parameter_access: bool = True,
        introspect_activations: bool = False,
        comm_backend: Optional[CommBackend] = None,
    ) -> None:
        if (model is None) == (model_factory is None):
            raise ValueError("provide exactly one of model / model_factory")
        config.validate()
        self.config = config
        # A config-enabled checker gets a private context threaded through
        # every subsystem; otherwise subsystems fall back to the global one
        # (REPRO_CHECK / use_checker), which may be None — the no-op path.
        self.check_context: Optional[CheckContext] = (
            context_from_config(config.check) or get_checker()
        )
        self.comm = ProcessGroup(
            config.world_size, check=self.check_context, backend=comm_backend
        )
        self.ledger = ledger
        self.offload = InfinityOffloadEngine(
            config.offload, ledger=ledger, check=self.check_context
        )
        self.partitioner = ParameterPartitioner(
            config.world_size,
            offload=self.offload,
            comm=self.comm,
            bandwidth_centric=config.bandwidth_centric,
            check=self.check_context,
        )

        # --- model construction / partitioning -------------------------------
        def partition_unless_persistent(param):
            """Small tensors stay replicated (persistence threshold)."""
            if param.full_numel > config.param_persistence_threshold_numel:
                self.partitioner.partition(param)

        self._partition_fn = partition_unless_persistent
        self.init_context: Optional[PartitionedInitContext] = None
        if model_factory is not None:
            if config.stage >= ZeroStage.PARAMETERS:
                # Sec. 7.2: partition each parameter as it is constructed.
                self.init_context = PartitionedInitContext(partition_unless_persistent)
                with self.init_context:
                    model = model_factory()
            else:
                model = model_factory()
        assert model is not None
        self.model = model
        self.model.name_parameters()

        if config.tile_linear_threshold_numel is not None and config.tile_factor > 1:
            tile_oversized_linears(
                self.model,
                threshold_numel=config.tile_linear_threshold_numel,
                tile_factor=config.tile_factor,
                partitioner=self.partitioner,
            )
            self.model.name_parameters()

        if config.stage >= ZeroStage.PARAMETERS:
            for p in self.model.parameters():
                if p.state is PartitionState.AVAILABLE and p.zero_meta is None:
                    partition_unless_persistent(p)

        # --- overlap machinery ---------------------------------------------------
        self.prefetcher: Optional[DynamicPrefetcher] = None
        if (
            config.stage >= ZeroStage.PARAMETERS
            and config.prefetch_depth > 0
            and config.overlap_comm
        ):
            self.prefetcher = DynamicPrefetcher(
                self.offload, self.partitioner, depth=config.prefetch_depth
            )

        # --- coordinator + ease-of-use machinery --------------------------------
        self.coordinator = ParameterCoordinator(
            self.model,
            config,
            partitioner=self.partitioner,
            offload=self.offload,
            comm=self.comm,
            prefetcher=self.prefetcher,
        )
        if intercept_parameter_access and config.stage >= ZeroStage.PARAMETERS:
            install_parameter_interception(self.model, self.coordinator)
        if introspect_activations:
            install_activation_introspection(self.model, self.coordinator)

        # --- activation checkpoint offload (Sec. 5.1.2; NVMe per Sec. 8.2) --
        self.activation_offloaders = []
        if config.offload.activation_device is not OffloadDevice.NONE:
            from repro.core.act_offload import install_activation_offload

            self.activation_offloaders = install_activation_offload(
                self.model,
                config.offload.activation_device,
                store=self.offload.store,
                ledger=ledger,
            )

        # --- exception-unwind cleanup (routed through abort_step) ------------
        # A step that dies after a CheckpointedBlock's forward leaves its
        # saved checkpoint un-restored; discarding it during abort keeps
        # ledger/memscope watermarks honest across aborted steps.
        from repro.nn.checkpoint import CheckpointedBlock

        self._ckpt_blocks = [
            m for m in self.model.modules() if isinstance(m, CheckpointedBlock)
        ]
        if self._ckpt_blocks:
            self.coordinator.on_abort(self._discard_pending_checkpoints)

        # memscope owner aliases: attribution rows render parameter names
        # instead of opaque p{uid} ids
        scope = get_memscope()
        if scope.enabled:
            for name, p in self.model.named_parameters():
                scope.alias(f"p{p.unique_id}", name)

        # --- optimizer & loss scaling ----------------------------------------------
        self.optimizer = ZeroPartitionedAdam(
            self.model.parameters(),
            config,
            partitioner=self.partitioner,
            offload=self.offload,
            comm=self.comm,
            lr=lr,
            beta1=beta1,
            beta2=beta2,
            eps=eps,
            weight_decay=weight_decay,
            grad_clip=grad_clip,
        )
        if config.loss_scale is None:
            self.scaler = DynamicLossScaler()
        else:
            self.scaler = StaticLossScaler(config.loss_scale)
        self.steps_taken = 0
        self.steps_skipped = 0
        self.step_retries_used = 0

    # --- training ------------------------------------------------------------------
    def train_step(self, batches: Sequence[tuple[np.ndarray, ...]]) -> StepResult:
        """One data-parallel step over per-rank batches.

        ``len(batches)`` must equal the configured world size.  Each batch
        is the argument tuple of the model's forward — ``(ids, targets)``
        for language modeling, ``(ids, targets, mask)`` for masked LM, or
        whatever the model defines.  Gradients are reduced with the
        configured op and the partitioned optimizer updates every shard.
        """
        return self.train_step_accumulated([batches])

    def train_step_accumulated(
        self,
        rounds: Sequence[Sequence[tuple[np.ndarray, ...]]],
    ) -> StepResult:
        """One optimizer step over multiple gradient-accumulation rounds.

        Each round is a per-rank batch list; reduced gradients sum across
        rounds and the update divides by the round count, so the step is
        numerically the mean over every microbatch — identical to a single
        round with the concatenated batch (verified in tests).
        """
        if not rounds:
            raise ValueError("need at least one accumulation round")
        world = self.config.world_size
        for r in rounds:
            if len(r) != world:
                raise ValueError(f"each round needs {world} per-rank batches")
        with trace_span(
            "engine:step", cat="engine",
            step=self.steps_taken, rounds=len(rounds), world=world,
        ):
            # Step replay: the last recovery tier (docs/resilience.md).  A
            # forward/backward that died of a recoverable I/O or memory
            # fault has already been unwound by abort_step, so re-running
            # the same microbatches is bit-identical to a clean first try.
            # FaultUnrecoverable is deliberately not retried: it marks
            # state (a part-updated optimizer shard, an unhealable record)
            # that replay cannot reconstruct.
            #
            # Under a process-parallel backend the replay is a *collective*
            # decision: the faulting rank flags the abort in shared memory
            # and breaks the rendezvous barrier, peers surface the break as
            # CommPeerAbort (an OSError, so it rides the same replay tier),
            # and every rank passes through recover_after_abort before the
            # bit-identical replay.  Terminal errors flag terminal so peers
            # fail fast instead of waiting out their barrier timeout.
            attempt = 0
            backend = self.comm.backend
            distributed = not self.comm.all_local
            while True:
                try:
                    return self._train_step_traced(rounds)
                except (FaultUnrecoverable, AllocationError) as err:
                    # a modeled capacity cap is a configuration error, not
                    # a transient device fault: replaying cannot help
                    if distributed:
                        backend.signal_abort(terminal=True)
                    self._notify_terminal(err)
                    raise
                except (OSError, MemoryError) as err:
                    if attempt >= self.config.step_retries:
                        if distributed:
                            backend.signal_abort(terminal=True)
                        self._notify_terminal(err)
                        raise
                    if distributed:
                        # a locally-raised fault still has peers parked in
                        # a rendezvous; a CommPeerAbort means a peer already
                        # broke the barrier for us
                        if not isinstance(err, CommPeerAbort):
                            backend.signal_abort(terminal=False)
                        backend.recover_after_abort()
                    attempt += 1
                    self.step_retries_used += 1
                    get_registry().counter("faults.step_retries").inc()
                    trace_instant(
                        "engine:step_retry", cat="engine",
                        attempt=attempt, error=type(err).__name__,
                    )
                    fr = get_flightrec()
                    if fr is not None:
                        fr.record(
                            "retry",
                            "step_replay",
                            volatile=True,
                            attempt=attempt,
                            error=type(err).__name__,
                        )
                except BaseException as err:
                    if distributed:
                        backend.signal_abort(terminal=True)
                    self._notify_terminal(err)
                    raise

    def _train_step_traced(
        self,
        rounds: Sequence[Sequence[tuple[np.ndarray, ...]]],
    ) -> StepResult:
        scale = self.scaler.loss_scale
        losses: list[float] = []
        world = self.config.world_size
        # Process-parallel mode: this process computes only its own rank's
        # forward/backward; peers run theirs concurrently.  begin_rank still
        # fires for every rank (the fault plane's site schedule and the
        # coordinator's rank bookkeeping must advance identically in every
        # process), but the compute is skipped for non-local ranks and its
        # gather-path accounting is echoed instead (see ProcessGroup docs).
        distributed = not self.comm.all_local
        live = get_live()
        fr = get_flightrec()
        mem_sample("step_begin")
        if live is not None:
            live.emit(step=self.steps_taken, phase="step_begin")
        try:
            self.coordinator.begin_accumulation()
            for ri, batches in enumerate(rounds):
                journal = None
                for rank, batch in enumerate(batches):
                    self.coordinator.begin_rank(rank)
                    if distributed and not self.comm.backend.is_local(rank):
                        continue
                    # after the locality gate: each process heartbeats (and
                    # flight-records) only the ranks it actually computes
                    if live is not None:
                        live.heartbeat(rank, self.steps_taken)
                    if fr is not None:
                        # (the index conflates FlightRecorder.record with the
                        # schedule recorder's collective hook by simple name;
                        # this one is a local ring append, no rendezvous)
                        fr.record(  # lint: allow-rank-divergent-collective
                            "phase", "forward",
                            rank=rank, step=self.steps_taken, round=ri,
                        )
                    if distributed:
                        self.comm.begin_turn_capture()
                    if self.prefetcher is not None:
                        self.prefetcher.begin_iteration()
                    with trace_span("engine:forward", cat="engine", rank=rank):
                        loss = self.model(*batch)
                    losses.append(float(loss))
                    if fr is not None:
                        fr.record(  # lint: allow-rank-divergent-collective
                            "phase", "backward",
                            rank=rank, step=self.steps_taken, round=ri,
                        )
                    with trace_span("engine:backward", cat="engine", rank=rank):
                        # Protocol-correct rank divergence: non-local turns are
                        # skipped above, but their collective accounting is
                        # replayed to peers via echo_turns below, so every
                        # process's fingerprint stream stays aligned.
                        self.model.backward(scale)  # lint: allow-rank-divergent-collective
                        self.coordinator.end_rank_backward()  # lint: allow-rank-divergent-collective
                    if self.prefetcher is not None:
                        self.prefetcher.end_iteration()
                    if distributed:
                        journal = self.comm.end_turn_capture()
                self.coordinator.assert_no_pending()
                if distributed and journal is not None:
                    self.comm.echo_turns(journal, world - 1)
            self.coordinator.end_accumulation()
            self.coordinator.flush_grad_offload()
            if distributed:
                # Collect every rank's per-round losses so the StepResult is
                # identical to the loop oracle's (rank-major within rounds),
                # then rendezvous: the digest carried by step_sync catches
                # any rank whose step issued a diverged collective sequence.
                per_rank = self.comm.exchange(
                    np.asarray(losses, dtype=np.float64)
                )
                losses = [
                    float(per_rank[r][i])
                    for i in range(len(rounds))
                    for r in range(world)
                ]
                self.comm.backend.step_sync()
            if fr is not None:
                # canonical comm marker: same position in every backend's
                # schedule.  The digest itself is volatile — the loop
                # oracle never folds fingerprints (group._fingerprint
                # skips all-local backends), so it cannot appear in the
                # byte-compared tail.
                fr.record("comm", "step_sync", step=self.steps_taken)
                if distributed:
                    fr.record(
                        "digest", "fingerprint", volatile=True,
                        step=self.steps_taken,
                        digest=self.comm.backend.fingerprint_digest,
                    )
        except Exception:
            # Unwind cleanly: release gathered params, drop banked grads and
            # bucket contents, drain async writes — so the engine (and any
            # sanitizer shadow state) is step-clean for the caller's retry.
            self._abort_step_cleanup()
            raise

        # grads carry scale * num_rounds; dividing restores the microbatch mean
        grad_scale = scale * len(rounds)
        try:
            overflowed = self.optimizer.grads_overflowed() if scale != 1.0 else False
        except Exception:
            # A failed grad-shard fetch here precedes any state mutation:
            # after cleanup the step is still replayable.
            self._abort_step_cleanup()
            raise
        if overflowed:
            if self.config.delayed_update:
                # the previous step's deferred update is already owed and
                # its gradients predate the overflow; apply it (without
                # harvesting this step's garbage) before skipping
                try:
                    with trace_span(
                        "engine:optimizer", cat="engine", scale=grad_scale
                    ):
                        self.coordinator.sequence_delayed_update(
                            self.optimizer,
                            grad_scale=grad_scale,
                            defer_current=False,
                        )
                except Exception:
                    self._abort_step_cleanup()
                    raise
            self.steps_skipped += 1
            self._drop_grads()
            self.scaler.update(True)
            self._on_step_boundary()
            mem_sample("overflow_skip")
            if fr is not None:
                fr.record("phase", "overflow_skip", step=self.steps_taken)
            if live is not None:
                live.emit(step=self.steps_taken, phase="overflow_skip")
            return StepResult(losses, skipped=True, loss_scale=scale)

        try:
            with trace_span("engine:optimizer", cat="engine", scale=grad_scale):
                if self.config.delayed_update:
                    self.coordinator.sequence_delayed_update(
                        self.optimizer, grad_scale=grad_scale
                    )
                else:
                    self.optimizer.step(grad_scale=grad_scale)
        except Exception:
            # The optimizer step is transactional (zero_optimizer shadow-
            # buffers every write and rolls back on fault), so after the
            # unwind a recoverable I/O/memory fault replays bit-identically
            # through the same retry tier as forward/backward faults.
            # FaultUnrecoverable (a fault inside the commit window) and
            # AllocationError stay terminal via the caller's dispatch.
            self._abort_step_cleanup()
            raise
        mem_sample("optimizer_step")
        if fr is not None:
            fr.record("phase", "optimizer", step=self.steps_taken)
        if live is not None:
            live.emit(step=self.steps_taken, phase="optimizer_step")
        self.scaler.update(False)
        self._drop_grads()
        self.steps_taken += 1
        self._on_step_boundary()
        mem_sample("step_end")
        if fr is not None:
            fr.record("phase", "step_end", step=self.steps_taken)
        if live is not None:
            live.emit(step=self.steps_taken, phase="step_end")
        return StepResult(losses, skipped=False, loss_scale=scale)

    def _abort_step_cleanup(self) -> None:
        """Unwind an aborted step so a replay starts from a clean slate."""
        self.coordinator.abort_step()
        ctx = self.check_context
        if ctx is not None:
            # record-only sweep: a raised stuck-gather would mask the
            # propagating root cause
            ctx.on_step_abort(self.coordinator._params_by_id.keys())
        # stale grads from a partial backward must not leak into the replay
        self._drop_grads()
        # abort callbacks may have opened (and leaked) spans of their own;
        # sweep again so the trace leaves the unwind with no dangling spans
        get_tracer().force_close_open(reason="step_abort")
        # flush telemetry sinks: a worker SIGKILLed right after this abort
        # must not leave a truncated JSONL shard behind (idempotent)
        live = get_live()
        if live is not None:
            live.flush()

    def _notify_terminal(self, err: BaseException) -> None:
        """Terminal-failure hook: flush the live plane, dump the postmortem."""
        live = get_live()
        if live is not None:
            live.on_terminal(f"{type(err).__name__}: {err}")

    def _discard_pending_checkpoints(self) -> None:
        for block in self._ckpt_blocks:
            block.discard_checkpoint()

    def _on_step_boundary(self) -> None:
        """Step-boundary checker sweep (gather leaks, sequence cross-check)."""
        ctx = self.check_context
        if ctx is not None:
            ctx.on_step_boundary(self.coordinator._params_by_id.keys())

    def _drop_grads(self) -> None:
        for p in self.model.parameters():
            p.grad = None

    # --- evaluation / state access ---------------------------------------------
    def evaluate(self, *batch: np.ndarray) -> float:
        """Loss of one batch without touching gradients or optimizer."""
        was_training = self.model.training
        self.model.eval()
        try:
            rank = self.coordinator.current_rank
            self.coordinator.begin_rank(0)
            if self.prefetcher is not None:
                self.prefetcher.begin_iteration()
            loss = float(self.model(*batch))
            if self.prefetcher is not None:
                self.prefetcher.end_iteration()
            self.coordinator.begin_rank(rank)
            # evaluation leaves caches behind; free them
            for m in self.model.modules():
                object.__setattr__(m, "_cache", None)
            return loss
        finally:
            self.model.train(was_training)

    def flush_delayed_update(self) -> bool:
        """Apply the deferred optimizer update still owed (delayed mode).

        Call before evaluating or gathering state: with
        ``config.delayed_update`` on, the last ``train_step``'s update is
        still pending.  The apply is transactional, so a recoverable I/O
        fault rolls back and retries through the engine's step-replay
        budget, exactly like an in-step optimizer fault.  Returns True
        when a pending update was applied.
        """
        if not self.config.delayed_update:
            return False
        attempt = 0
        while True:
            try:
                with trace_span("engine:optimizer_flush", cat="engine"):
                    return self.optimizer.flush_delayed()
            except (FaultUnrecoverable, AllocationError) as err:
                self._notify_terminal(err)
                raise
            except (OSError, MemoryError) as err:
                if attempt >= self.config.step_retries:
                    self._notify_terminal(err)
                    raise
                attempt += 1
                self.step_retries_used += 1
                get_registry().counter("faults.step_retries").inc()
                trace_instant(
                    "engine:step_retry", cat="engine",
                    attempt=attempt, error=type(err).__name__,
                )

    def gather_state(self) -> dict[str, np.ndarray]:
        """Full (unpartitioned) copy of every parameter, by name."""
        state: dict[str, np.ndarray] = {}
        for name, p in self.model.named_parameters():
            if p.state is PartitionState.PARTITIONED:
                self.partitioner.gather(p)
                state[name] = p.data.copy()
                self.partitioner.release(p)
            else:
                state[name] = p.data.copy()
        return state

    # --- reporting ----------------------------------------------------------------
    def summary(self) -> str:
        """One-paragraph description of the engine configuration."""
        cfg = self.config
        off = cfg.offload
        n_params = self.model.num_parameters()
        n_tensors = len(list(self.model.named_parameters()))
        persistent = sum(
            1 for p in self.model.parameters() if p.zero_meta is None
        )
        lines = [
            f"ZeroInfinityEngine: stage {int(cfg.stage)} over"
            f" {cfg.world_size} rank(s)",
            f"  model: {n_params:,} parameters in {n_tensors} tensors"
            + (f" ({persistent} persistent)" if persistent else ""),
            f"  placement: params={off.param_device.value}"
            f" grads={off.grad_device.value}"
            f" optimizer={off.optimizer_device.value}"
            f" activations={off.activation_device.value}",
            f"  retrieval: "
            + ("bandwidth-centric allgather" if cfg.bandwidth_centric else "owner broadcast")
            + (" (coalesced)" if cfg.coalesce_allgather else " (per-param)")
            + f", prefetch depth {cfg.prefetch_depth}"
            + ("" if cfg.overlap_comm else " (overlap off)"),
            f"  grad reduce: "
            + (
                f"bucketed (capacity {cfg.reduce_bucket_numel:,} numel)"
                if self.coordinator.bucket_store is not None
                else "per-parameter"
            ),
            f"  loss scaling: "
            + (
                f"static x{cfg.loss_scale:g}"
                if cfg.loss_scale is not None
                else f"dynamic (current x{self.scaler.loss_scale:g})"
            ),
            f"  steps: {self.steps_taken} taken, {self.steps_skipped} skipped",
        ]
        if self.step_retries_used or get_faults() is not None:
            lines.append(
                f"  resilience: {self.step_retries_used} step replay(s),"
                f" {self.config.step_retries} allowed per step"
            )
        if self.prefetcher is not None:
            s = self.prefetcher.stats()
            lines.append(
                f"  prefetch: {s['hits']} hits, {s['misses']} misses,"
                f" {s['mispredicts']} mis-predicts"
                f" ({s['issued']} issued at depth {s['depth']})"
            )
        perf = self.perf_summary()
        if perf is not None and perf.steps:
            fr = perf.phase_fractions()
            lines.append(
                f"  time: {perf.steps} step(s) traced —"
                f" compute {fr.get('compute', 0.0):.0%},"
                f" comm {fr.get('comm', 0.0):.0%},"
                f" nvme {fr.get('nvme_io', 0.0):.0%},"
                f" stall {perf.stall_fraction():.0%},"
                f" overlap {perf.overlap_fraction():.0%}"
            )
        return "\n".join(lines)

    def memory_breakdown(self) -> dict[str, dict[str, int]]:
        """Resident model-state bytes per tier per kind (observability)."""
        return self.offload.bytes_by_kind()

    def report(self) -> EngineReport:
        store = self.offload.store
        plane = get_faults()
        return EngineReport(
            comm_bytes_by_op=dict(self.comm.stats.bytes_by_op),
            host_link_bytes=dict(self.offload.counters.host_link_bytes),
            nvme_read_bytes=self.offload.counters.nvme_read_bytes,
            nvme_write_bytes=self.offload.counters.nvme_write_bytes,
            prefetch_hits=self.offload.counters.prefetch_hits,
            prefetch_misses=self.offload.counters.prefetch_misses,
            gathers=self.coordinator.stats.gathers,
            releases=self.coordinator.stats.releases,
            pinned_peak_bytes=self.offload.pool.stats.peak_bytes,
            gpu_peak_bytes=self.ledger.peak_by_kind("gpu") if self.ledger else 0,
            cpu_peak_bytes=self.ledger.peak_by_kind("cpu") if self.ledger else 0,
            activation_bytes_offloaded=sum(
                o.bytes_offloaded for o in self.activation_offloaders
            ),
            activation_bytes_restored=sum(
                o.bytes_restored for o in self.activation_offloaders
            ),
            prefetch_mispredicts=(
                self.prefetcher.mispredicts if self.prefetcher else 0
            ),
            prefetch_issued=self.prefetcher.issued if self.prefetcher else 0,
            telemetry=get_registry().snapshot(),
            comm_calls_by_op=dict(self.comm.stats.calls_by_op),
            bucket_flushes=(
                self.coordinator.bucket_store.stats.collectives
                if self.coordinator.bucket_store
                else 0
            ),
            grads_bucketed=(
                self.coordinator.bucket_store.stats.grads_bucketed
                if self.coordinator.bucket_store
                else 0
            ),
            tier_peak_bytes=self._tier_peak_bytes(),
            step_retries=self.step_retries_used,
            io_read_retries=(
                store.engine.stats.read_retries if store is not None else 0
            ),
            io_write_retries=(
                store.engine.stats.write_retries if store is not None else 0
            ),
            checksum_refetches=(
                store.checksum_refetches if store is not None else 0
            ),
            checksum_failures=(
                store.checksum_failures if store is not None else 0
            ),
            pinned_fallbacks=self.offload.counters.pinned_fallbacks,
            prefetch_fallbacks=self.offload.counters.prefetch_fallbacks,
            aborted_commits=(
                store.engine.stats.failed_commits if store is not None else 0
            ),
            faults_injected=(
                plane.injected_by_kind() if plane is not None else {}
            ),
            **self._perf_fields(),
        )

    def _perf_fields(self) -> dict:
        """Time-ledger EngineReport fields from the live tracer (if any)."""
        perf = self.perf_summary()
        if perf is None or not perf.steps:
            return {"perf_phase_us": {}, "perf_stall_us_by_cause": {}}
        return {
            "perf_steps_traced": perf.steps,
            "perf_phase_us": dict(perf.phase_us),
            "perf_stall_us_by_cause": dict(perf.stall_us_by_cause),
            "perf_overlap_fraction": perf.overlap_fraction(),
            "perf_stall_fraction": perf.stall_fraction(),
            "perf_force_closed_spans": perf.force_closed_spans,
        }

    def perf_summary(self) -> Optional[PerfSummary]:
        """Aggregate time ledger over the tracer's steps; None if untraced."""
        tracer = get_tracer()
        if not tracer.enabled:
            return None
        ledgers = build_step_ledgers(tracer)
        if not ledgers:
            return None
        return summarize_ledgers(ledgers, force_closed=tracer.force_closed)

    def _tier_peak_bytes(self) -> dict[str, int]:
        """Peak bytes per tier: memscope when live, else ledger/pool/store."""
        scope = get_memscope()
        if scope.enabled:
            peaks = {t: scope.peak_bytes(t) for t in scope.tiers()}
        else:
            peaks = {}
            if self.ledger is not None:
                peaks["gpu"] = self.ledger.peak_by_kind("gpu")
                peaks["cpu"] = self.ledger.peak_by_kind("cpu")
            if self.offload.store is not None:
                peaks["nvme"] = self.offload.store.total_bytes
        peaks.setdefault("pinned", self.offload.pool.stats.peak_bytes)
        return peaks

    # --- lifecycle -----------------------------------------------------------------
    def close(self) -> None:
        self.coordinator.remove_hooks()
        self.offload.close()

    def __enter__(self) -> "ZeroInfinityEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
