"""Overlap-centric design: the dynamic prefetcher (Sec. 6.2).

"The dynamic prefetcher traces the forward and backward computation on the
fly, constructing an internal map of the operator sequence for each
iteration.  During each iteration, the prefetcher keeps track of where it is
in the operator sequence and prefetches the parameter[s] required by the
future operators."

:class:`OperatorTrace` is that internal map: a recorded sequence of
``(module, phase)`` events.  :class:`DynamicPrefetcher` consumes it: on each
executed event it advances its position and issues asynchronous fetches
(NVMe reads into pinned staging buffers) for the parameters of the next
``depth`` operators.  When the observed event diverges from the recorded
sequence — a dynamic control-flow change — the trace is invalidated and
re-recorded, "allowing for appropriate prefetching even when the forward and
backward propagation changes across iterations".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nn.module import Module
from repro.nn.parameter import PartitionState
from repro.obs.metrics import get_registry
from repro.obs.tracer import trace_counter, trace_instant, trace_span


@dataclass(frozen=True)
class TraceEvent:
    """One operator execution: a leaf module in a given phase."""

    module_id: int
    phase: str  # "fwd" | "bwd"


@dataclass
class OperatorTrace:
    """The recorded operator sequence of one training iteration."""

    events: list[TraceEvent] = field(default_factory=list)
    modules: dict[int, Module] = field(default_factory=dict)
    complete: bool = False

    def record(self, module: Module, phase: str) -> None:
        if self.complete:
            raise RuntimeError("cannot record into a completed trace")
        self.events.append(TraceEvent(id(module), phase))
        self.modules[id(module)] = module

    def finish(self) -> None:
        self.complete = True

    def __len__(self) -> int:
        return len(self.events)

    def module_at(self, index: int) -> Module:
        return self.modules[self.events[index].module_id]


class DynamicPrefetcher:
    """Issues lookahead fetches along the traced operator sequence.

    Parameters
    ----------
    offload:
        The :class:`~repro.core.offload.InfinityOffloadEngine` to start
        asynchronous reads on.
    partitioner:
        Supplies ``prefetch_keys(param)`` — the (key, rank) pairs whose
        fetch reconstructs a parameter.
    depth:
        How many future operators to prefetch for; 0 disables prefetching
        (the Fig. 6d ablation).
    """

    def __init__(self, offload, partitioner, *, depth: int = 2) -> None:
        if depth < 0:
            raise ValueError("depth must be non-negative")
        self.offload = offload
        self.partitioner = partitioner
        self.depth = depth
        self.trace: Optional[OperatorTrace] = None
        self._observed: OperatorTrace = OperatorTrace()
        self._position = 0
        self.invalidations = 0
        self.issued = 0

    # --- overlap-quality counters ----------------------------------------------
    # Hits and misses are observed where the fetch happens (the offload
    # engine: a fetch served by an in-flight prefetch is a hit, a blocking
    # NVMe read is a miss); mis-predicts are trace invalidations — the
    # operator sequence diverged from what lookahead was issued against.
    @property
    def hits(self) -> int:
        return self.offload.counters.prefetch_hits

    @property
    def misses(self) -> int:
        return self.offload.counters.prefetch_misses

    @property
    def mispredicts(self) -> int:
        return self.invalidations

    def stats(self) -> dict[str, int]:
        """Overlap-quality counters for summaries and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "mispredicts": self.mispredicts,
            "issued": self.issued,
            "depth": self.depth,
        }

    # --- iteration lifecycle -----------------------------------------------------
    def begin_iteration(self) -> None:
        """Reset the position and start observing this iteration's events."""
        self._position = 0
        self._observed = OperatorTrace()

    def end_iteration(self) -> None:
        """Adopt this iteration's observed sequence when no trace is valid.

        Also catches the silent-shrink case: an iteration that executed a
        strict prefix of the trace means the graph changed, so re-record.
        """
        if self.trace is not None and self._position != len(self.trace.events):
            self.invalidations += 1
            get_registry().counter("prefetch.mispredicts").inc()
            trace_instant(
                "prefetch:invalidate", cat="prefetch", reason="short_iteration"
            )
            self.trace = None
        if self.trace is None:
            self._observed.finish()
            self.trace = self._observed
        self._observed = OperatorTrace()

    # --- per-operator hook -----------------------------------------------------
    def on_execute(self, module: Module, phase: str) -> None:
        """Called right before a leaf module executes ``phase``."""
        if not self._observed.complete:
            self._observed.record(module, phase)
        trace = self.trace
        if trace is None:
            return
        # Verify the trace still predicts execution (dynamic graph check).
        if (
            self._position >= len(trace.events)
            or trace.events[self._position].module_id != id(module)
            or trace.events[self._position].phase != phase
        ):
            # Observed execution diverged: drop the trace.  The full
            # observed sequence (including events before the divergence)
            # becomes the new trace at end_iteration.
            self.invalidations += 1
            get_registry().counter("prefetch.mispredicts").inc()
            trace_instant(
                "prefetch:invalidate", cat="prefetch", reason="divergence"
            )
            self.trace = None
            return
        self._position += 1
        # lookahead only ever starts NVMe reads; with every tier resident
        # the plan-building would be pure hot-path overhead, so skip it
        if self.depth and self.offload.can_prefetch:
            self._issue_lookahead(trace)

    def _issue_lookahead(self, trace: OperatorTrace) -> None:
        hi = min(self._position + self.depth, len(trace.events))
        started = 0
        with trace_span(
            "prefetch:lookahead", cat="prefetch", position=self._position
        ):
            for i in range(self._position, hi):
                future = trace.module_at(i)
                params = [
                    p
                    for p in future.direct_parameters()
                    if p.state is PartitionState.PARTITIONED
                ]
                if not params:
                    continue
                # fetch plan matches gather_coalesced's consumption order,
                # so in-flight reads line up with the coalesced gather
                for key, rank in self.partitioner.coalesced_fetch_plan(params):
                    if self.offload.prefetch(key, rank=rank):
                        started += 1
        if started:
            self.issued += started
            get_registry().counter("prefetch.issued").inc(started)
            trace_counter(
                "prefetch.lookahead", cat="prefetch",
                issued=started, total=self.issued,
            )
