"""Partitioned mixed-precision Adam: the ZeRO optimizer step.

Each data-parallel rank updates only the optimizer state for the shards it
owns (Sec. 2): rank ``r`` holds fp32 master/momentum/variance for slice
``r`` of every parameter, consumes the gradient shard the coordinator
reduce-scattered to it, and writes the updated fp16 shard back through the
partitioner.

State placement follows ``OffloadConfig.optimizer_device``:

* GPU / CPU — states live in the offload engine's in-memory tiers;
* NVMe — states live in the tensor store and the update *streams*: chunks of
  (master, momentum, variance, gradient) are read, updated and written back
  with double-buffered read-ahead, bounding staging memory at two chunks —
  the Sec. 5.2.2 pattern ("bring the data from NVMe to CPU memory ... in
  chunks that can fit in the CPU memory ... one chunk at a time", with
  "NVMe to CPU reads [overlapping] CPU to NVMe writes").

The step is a *transaction*.  Every durable effect is staged first — NVMe
writes land in ``.pipe`` shadow records, in-memory installs and parameter
write-backs are deferred as commit closures — and only after every fallible
read/write has drained does the commit phase promote shadows over the live
records (``os.replace``) and run the installs.  A recoverable I/O fault
anywhere before the commit point rolls the step back to its pre-step state
(shadows deleted, ``step`` counters restored, primaries untouched), so the
engine's step-replay tier can re-run the optimizer phase bit-identically
instead of escalating to :class:`~repro.faults.errors.FaultUnrecoverable`.

``ZeroConfig.delayed_update`` selects ZeRO-Offload's delayed parameter
update (DPU): step ``t``'s gradients are harvested into memory and applied
one step late via :meth:`ZeroPartitionedAdam.delayed_step`, so the deferred
update overlaps step ``t+1``'s forward/backward instead of serialising
behind its own step.  ``scale_delayed_lr`` multiplies the learning rate of
delayed updates as the staleness correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.comm.group import ProcessGroup
from repro.core.config import OffloadDevice, ZeroConfig, ZeroStage
from repro.core.coordinator import grad_shard_key
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.faults.errors import FaultUnrecoverable
from repro.nn.parameter import Parameter
from repro.nvme.store import shadow_key
from repro.obs.metrics import get_registry
from repro.obs.perfscope import stall_span
from repro.optim.adam import adam_step
from repro.tensor.flat import pad_to_multiple


@dataclass
class _ShardRef:
    """Keys of one (param, rank) optimizer-state shard."""

    master: str
    exp_avg: str
    exp_avg_sq: str
    grad: str
    step: int = 0


class _StepTxn:
    """Bookkeeping for one transactional optimizer step.

    ``writes`` holds in-flight shadow writes (fallible; drained before the
    commit point), ``shadows`` the primary keys whose shadow records exist
    (deleted on rollback), and ``commits`` the phase-B actions.  Every
    commit action is rename- or memory-only, so once the drain succeeds the
    step cannot fail on a recoverable I/O fault.

    ``pipelined`` mirrors ``OffloadConfig.optimizer_pipeline``: when False
    the step runs the serial reference schedule — every staged write is
    awaited inline at its issue site instead of accumulating into the
    commit-barrier drain — which is the bit-exactness oracle for the
    pipelined path.
    """

    __slots__ = ("writes", "shadows", "commits", "pipelined")

    def __init__(self, pipelined: bool) -> None:
        self.writes: list = []
        self.shadows: list[str] = []
        self.commits: list[Callable[[], None]] = []
        self.pipelined = pipelined

    def stage_write(self, req, *, owner: str) -> None:
        """Track one shadow write: deferred (pipelined) or awaited inline."""
        if self.pipelined:
            self.writes.append(req)
            return
        with stall_span(
            "optimizer_io_tail",
            owner=owner,
            kind="write",
            req=getattr(req, "token", None),
        ):
            req.wait()

    def drain_writes(self) -> None:
        """Commit barrier: every shadow write must land before promotion."""
        if not self.writes:
            return
        with stall_span(
            "optimizer_io_tail",
            owner="commit_barrier",
            kind="write_tail",
            writes=len(self.writes),
            req=getattr(self.writes[-1], "token", None),
        ):
            for req in self.writes:
                req.wait()
        self.writes.clear()

    def rollback(self, offload: InfinityOffloadEngine) -> None:
        """Throw the step away, leaving every primary record untouched.

        In-flight writes are drained tolerantly first — their buffers must
        not be reused while I/O is pending, and the step is already being
        aborted for the root-cause fault, so secondary failures are counted
        rather than raised.
        """
        for req in self.writes:
            try:
                req.wait()
            except (OSError, MemoryError):
                get_registry().counter("faults.aborted_writes").inc()
        self.writes.clear()
        for key in self.shadows:
            offload.discard_staged(key)
        self.shadows.clear()
        self.commits.clear()

    def commit(self) -> None:
        """Phase B: promote every shadow and run the in-memory installs.

        The only fallible I/O left on this path is the owner-layout NVMe
        write-through of :meth:`ParameterPartitioner.update_shard`; a fault
        inside the commit window is not replayable (some shards may already
        be promoted), so it escalates honestly instead of pretending the
        step can be retried bit-identically.
        """
        try:
            for fn in self.commits:
                fn()
        except (OSError, MemoryError) as err:
            get_registry().counter("faults.step_unrecoverable").inc()
            raise FaultUnrecoverable(
                f"optimizer commit died mid-promotion: {err}",
                site="optimizer.commit",
                kind=type(err).__name__,
            ) from err
        self.commits.clear()
        self.shadows.clear()


class ZeroPartitionedAdam:
    """Adam over partitioned (and possibly offloaded) optimizer state."""

    STATE_KINDS = ("master", "exp_avg", "exp_avg_sq")

    def __init__(
        self,
        params: Sequence[Parameter],
        config: ZeroConfig,
        *,
        partitioner: ParameterPartitioner,
        offload: InfinityOffloadEngine,
        comm: ProcessGroup,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: Optional[float] = None,
    ) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.config = config
        self.partitioner = partitioner
        self.offload = offload
        self.comm = comm
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._refs: dict[tuple[int, int], _ShardRef] = {}
        self._initialized = False
        # Delayed parameter update: harvested gradient shards owed one
        # optimizer step, keyed (param.unique_id, rank), plus the loss
        # scale they were produced under.
        self._pending_grads: Optional[dict[tuple[int, int], np.ndarray]] = None
        self._pending_scale: float = 1.0

    # --- layout helpers -----------------------------------------------------------
    @property
    def world(self) -> int:
        return self.config.world_size

    def _shard_numel(self, param: Parameter) -> int:
        return pad_to_multiple(max(param.full_numel, 1), self.world) // self.world

    def _param_shard_fp32(self, param: Parameter, rank: int) -> np.ndarray:
        """Current fp16 shard of the parameter, upcast to fp32.

        Branches on whether the parameter is actually partitioned rather
        than on the stage, so persistent (replicated) parameters under
        stage 3 take the slicing path.
        """
        if param.zero_meta is not None:
            shard = self.partitioner.get_shard(param, rank)
        else:
            flat = param.data.reshape(-1)
            sn = self._shard_numel(param)
            shard = np.zeros(sn, dtype=flat.dtype)
            lo = rank * sn
            hi = min(lo + sn, flat.size)
            if hi > lo:
                shard[: hi - lo] = flat[lo:hi]
        return shard.astype(np.float32)

    def _grad_shard_fp32(self, param: Parameter, rank: int) -> np.ndarray:
        """The gradient shard rank ``r`` owns, as fp32."""
        if self.config.stage >= ZeroStage.GRADIENTS:
            g = self.offload.fetch(grad_shard_key(param, rank), rank=rank)
        else:
            if param.grad is None:
                raise RuntimeError(
                    f"parameter {param.name or param.unique_id} has no gradient"
                )
            flat = param.grad.reshape(-1)
            sn = self._shard_numel(param)
            g = np.zeros(sn, dtype=flat.dtype)
            lo = rank * sn
            hi = min(lo + sn, flat.size)
            if hi > lo:
                g[: hi - lo] = flat[lo:hi]
        return g.astype(np.float32)

    def _stage_param_writeback(
        self, param: Parameter, rank: int, master: np.ndarray, txn: _StepTxn
    ) -> None:
        """Cast the updated master shard to fp16 and stage its install.

        Bandwidth-centric NVMe shards stream through a shadow record like
        the optimizer state; everything else is a pure memory install that
        rides the commit phase.
        """
        fp16 = master.astype(
            param.zero_meta.np_dtype if param.zero_meta else param.data.dtype
        )
        meta = param.zero_meta
        if (
            meta is not None
            and meta.owner_rank is None
            and self.config.offload.param_device is OffloadDevice.NVME
        ):
            key = f"p{param.unique_id}.r{rank}.param16"
            req = self.offload.stage_nvme(key, fp16, rank=rank)
            txn.shadows.append(key)
            txn.stage_write(req, owner=key)
            txn.commits.append(lambda k=key: self.offload.promote_staged(k))
            return
        txn.commits.append(
            lambda p=param, r=rank, a=fp16: self._install_param_shard(p, r, a)
        )

    def _install_param_shard(
        self, param: Parameter, rank: int, fp16: np.ndarray
    ) -> None:
        """Commit-phase install of one updated fp16 parameter shard."""
        if param.zero_meta is not None:
            self.partitioner.update_shard(param, rank, fp16)
        else:
            flat = param.data.reshape(-1)
            sn = self._shard_numel(param)
            lo = rank * sn
            hi = min(lo + sn, flat.size)
            if hi > lo:
                flat[lo:hi] = fp16[: hi - lo]
            # In a real cluster the updated shards are allgathered back into
            # the replicated parameter; account for that traffic.
            if rank == self.world - 1:
                self.comm.stats.record("allgather", param.nbytes)

    def _install_states(
        self,
        ref: _ShardRef,
        master: np.ndarray,
        exp_avg: np.ndarray,
        exp_avg_sq: np.ndarray,
        rank: int,
    ) -> None:
        """Commit-phase install of one shard's updated in-memory state."""
        device = self.config.offload.optimizer_device
        self.offload.stash(ref.master, master, device, rank=rank)
        self.offload.stash(ref.exp_avg, exp_avg, device, rank=rank)
        self.offload.stash(ref.exp_avg_sq, exp_avg_sq, device, rank=rank)

    # --- state lifecycle ------------------------------------------------------------
    def initialize_states(self) -> None:
        """Create fp32 master/momentum/variance shards from current params."""
        device = self.config.offload.optimizer_device
        for param in self.params:
            for rank in range(self.world):
                ref = _ShardRef(
                    master=f"p{param.unique_id}.r{rank}.master",
                    exp_avg=f"p{param.unique_id}.r{rank}.exp_avg",
                    exp_avg_sq=f"p{param.unique_id}.r{rank}.exp_avg_sq",
                    grad=grad_shard_key(param, rank),
                )
                master = self._param_shard_fp32(param, rank)
                zeros = np.zeros_like(master)
                self.offload.stash(ref.master, master, device, rank=rank)
                self.offload.stash(ref.exp_avg, zeros, device, rank=rank)
                self.offload.stash(ref.exp_avg_sq, zeros, device, rank=rank)
                self._refs[(param.unique_id, rank)] = ref
        self._initialized = True

    @property
    def state_bytes(self) -> int:
        """Total fp32 optimizer-state bytes across all ranks (3 buffers)."""
        return sum(
            3 * 4 * self._shard_numel(p) * self.world for p in self.params
        )

    # --- overflow check (dynamic loss scaling) ----------------------------------
    def grads_overflowed(self) -> bool:
        for param in self.params:
            for rank in range(self.world):
                g = self._grad_shard_fp32(param, rank)
                if not np.all(np.isfinite(g)):
                    return True
        return False

    def global_grad_norm(self, *, grad_scale: float = 1.0) -> float:
        """L2 norm over every gradient shard (== the full-gradient norm).

        Shards are disjoint and exhaustive (padding contributes zeros), so
        summing per-shard squared norms reproduces the unpartitioned norm —
        in a real deployment this is one scalar allreduce.
        """
        total = 0.0
        for param in self.params:
            for rank in range(self.world):
                g = self._grad_shard_fp32(param, rank)
                total += float(np.square(g).sum())
        return float(np.sqrt(total)) / grad_scale

    def _clipped_scale(
        self,
        grad_scale: float,
        grads: Optional[dict[tuple[int, int], np.ndarray]] = None,
    ) -> float:
        """Fold gradient clipping into ``grad_scale`` (uniform multipliers).

        When ``grads`` is given (a harvested delayed-update set) the norm is
        computed over those in-memory shards instead of re-fetching.
        """
        if self.grad_clip is None:
            return grad_scale
        if grads is None:
            norm = self.global_grad_norm(grad_scale=grad_scale)
        else:
            total = sum(float(np.square(g).sum()) for g in grads.values())
            norm = float(np.sqrt(total)) / grad_scale
        if norm > self.grad_clip:
            grad_scale = grad_scale * norm / self.grad_clip
        return grad_scale

    # --- the step -----------------------------------------------------------------
    def step(self, *, grad_scale: float = 1.0) -> None:
        """One partitioned Adam step over every (param, rank) shard.

        When ``grad_clip`` is set, gradients are rescaled so the *global*
        norm does not exceed it; the clip coefficient folds into
        ``grad_scale`` since both are uniform multipliers.
        """
        if not self._initialized:
            self.initialize_states()
        grad_scale = self._clipped_scale(grad_scale)
        self._transactional_step(grad_scale, grads=None, lr=self.lr)

    def delayed_step(
        self, *, grad_scale: float = 1.0, defer_current: bool = True
    ) -> None:
        """One delayed-update step (ZeRO-Offload's DPU schedule).

        Harvests this step's gradient shards into memory, applies the
        *previous* step's deferred update with ``lr * scale_delayed_lr``,
        then installs the harvest as the new pending update.  The install
        is pure memory movement and only happens after the fallible apply
        either committed or rolled back, so a fault anywhere in the
        sequence leaves both the primaries and the pending set consistent
        and the step replayable.

        ``defer_current=False`` (the overflow-skip path) applies the
        pending update without harvesting: the current step's gradients
        are garbage, but the previous step's update is already owed.
        """
        if not self._initialized:
            self.initialize_states()
        incoming: Optional[dict[tuple[int, int], np.ndarray]] = None
        if defer_current:
            incoming = {
                (p.unique_id, r): self._grad_shard_fp32(p, r)
                for p in self.params
                for r in range(self.world)
            }
        if self._pending_grads is not None:
            scale = self._clipped_scale(self._pending_scale, self._pending_grads)
            self._transactional_step(
                scale,
                grads=self._pending_grads,
                lr=self.lr * self.config.scale_delayed_lr,
            )
            self._pending_grads = None
        if defer_current:
            self._pending_grads = incoming
            self._pending_scale = grad_scale

    def flush_delayed(self) -> bool:
        """Apply the deferred update still owed (end of training / eval).

        Returns True when a pending update was applied.
        """
        if self._pending_grads is None:
            return False
        scale = self._clipped_scale(self._pending_scale, self._pending_grads)
        self._transactional_step(
            scale,
            grads=self._pending_grads,
            lr=self.lr * self.config.scale_delayed_lr,
        )
        self._pending_grads = None
        return True

    def _transactional_step(
        self,
        grad_scale: float,
        *,
        grads: Optional[dict[tuple[int, int], np.ndarray]],
        lr: float,
    ) -> None:
        """Shadow-write every update, then commit with infallible installs.

        Phase A (fallible): per-shard Adam updates run with every NVMe
        write targeting a ``.pipe`` shadow record and every in-memory
        install deferred; the phase ends with the commit-barrier drain of
        outstanding shadow writes.  A recoverable fault rolls the step back
        — shadows deleted, ``step`` counters restored — and re-raises for
        the engine's replay tier.

        Phase B (infallible): shadows are promoted over the primaries via
        ``os.replace`` and the deferred memory installs run; no fault-plane
        hook fires on this path.
        """
        device = self.config.offload.optimizer_device
        chunk = self.config.offload.optimizer_chunk_numel
        txn = _StepTxn(self.config.offload.optimizer_pipeline)
        step_snapshot = {key: ref.step for key, ref in self._refs.items()}
        try:
            for param in self.params:
                for rank in range(self.world):
                    ref = self._refs[(param.unique_id, rank)]
                    ref.step += 1
                    grad = (
                        grads[(param.unique_id, rank)]
                        if grads is not None
                        else None
                    )
                    if (
                        device is OffloadDevice.NVME
                        and self._shard_numel(param) > chunk
                    ):
                        self._chunked_nvme_step(
                            param, rank, ref, grad_scale, grad, lr, txn
                        )
                    else:
                        self._resident_step(
                            param, rank, ref, grad_scale, grad, lr, txn
                        )
            txn.drain_writes()
        except (OSError, MemoryError):
            for key, step in step_snapshot.items():
                self._refs[key].step = step
            txn.rollback(self.offload)
            raise
        txn.commit()

    def _resident_step(
        self,
        param: Parameter,
        rank: int,
        ref: _ShardRef,
        grad_scale: float,
        grad: Optional[np.ndarray],
        lr: float,
        txn: _StepTxn,
    ) -> None:
        device = self.config.offload.optimizer_device
        master = self.offload.fetch(ref.master, rank=rank)
        exp_avg = self.offload.fetch(ref.exp_avg, rank=rank)
        exp_avg_sq = self.offload.fetch(ref.exp_avg_sq, rank=rank)
        if grad is None:
            grad = self._grad_shard_fp32(param, rank)
        else:
            # the harvested pending set must survive a rollback + replay
            grad = grad.copy()
        if grad_scale != 1.0:
            grad /= grad_scale
        adam_step(
            master,
            grad,
            exp_avg,
            exp_avg_sq,
            step=ref.step,
            lr=lr,
            beta1=self.beta1,
            beta2=self.beta2,
            eps=self.eps,
            weight_decay=self.weight_decay,
        )
        if device is OffloadDevice.NVME:
            updated = {"master": master, "exp_avg": exp_avg, "exp_avg_sq": exp_avg_sq}
            for kind in self.STATE_KINDS:
                key = getattr(ref, kind)
                req = self.offload.stage_nvme(key, updated[kind], rank=rank)
                txn.shadows.append(key)
                txn.stage_write(req, owner=key)
                txn.commits.append(lambda k=key: self.offload.promote_staged(k))
        else:
            txn.commits.append(
                lambda r=ref, m=master, a=exp_avg, v=exp_avg_sq, rk=rank: (
                    self._install_states(r, m, a, v, rk)
                )
            )
        self._stage_param_writeback(param, rank, master, txn)

    def _chunked_nvme_step(
        self,
        param: Parameter,
        rank: int,
        ref: _ShardRef,
        grad_scale: float,
        grad: Optional[np.ndarray],
        lr: float,
        txn: _StepTxn,
    ) -> None:
        """Stream the shard through bounded buffers with read-ahead.

        Reads of chunk ``i+1`` are issued before the update of chunk ``i``
        runs, so NVMe reads overlap CPU compute; updated chunks stream into
        the shard's shadow records, overlapping the read/compute of later
        chunks, and the shadows are promoted at commit.  With
        ``optimizer_pipeline`` off the same chunks run the serial reference
        schedule: no read-ahead, every write awaited inline.
        """
        store = self.offload.store
        assert store is not None
        sn = self._shard_numel(param)
        chunk = self.config.offload.optimizer_chunk_numel
        spans = [(o, min(chunk, sn - o)) for o in range(0, sn, chunk)]
        if grad is None:
            grad_full = self._grad_shard_fp32(param, rank)
        else:
            # the harvested pending set must survive a rollback + replay
            grad_full = grad.copy()
        if grad_scale != 1.0:
            grad_full /= grad_scale
        updated_fp16 = np.empty(sn, dtype=param.zero_meta.np_dtype if param.zero_meta else np.float16)

        # open shadow records beside the primaries: the streamed writes
        # land there, so a mid-shard fault leaves the live state untouched
        for kind in self.STATE_KINDS:
            key = getattr(ref, kind)
            shape, dtype, _ = store.meta(key)
            store.create(shadow_key(key), shape, dtype)
            txn.shadows.append(key)
            txn.commits.append(lambda k=key: self.offload.promote_staged(k))

        pending_reads: list = []  # submission-ordered, not yet awaited

        def start_reads(off: int, n: int):
            bufs = {}
            reqs = []
            for kind in self.STATE_KINDS:
                key = getattr(ref, kind)
                out, req = store.read_range(key, off, n)
                bufs[kind] = out
                reqs.append(req)
            pending_reads.extend(reqs)
            return bufs, reqs

        cur = start_reads(*spans[0]) if txn.pipelined else None
        try:
            for i, (off, n) in enumerate(spans):
                if txn.pipelined:
                    nxt = (
                        start_reads(*spans[i + 1])
                        if i + 1 < len(spans)
                        else None
                    )
                    bufs, reqs = cur
                else:
                    # serial oracle: issue and drain each chunk's reads inline
                    nxt = None
                    bufs, reqs = start_reads(off, n)
                # the update cannot start until this chunk's state reads
                # land; with read-ahead working this wait is ~0, so its
                # duration IS the unhidden optimizer I/O tail for the chunk
                with stall_span(
                    "optimizer_io_tail",
                    owner=f"p{param.unique_id}.r{rank}.chunk{i}",
                    kind="read",
                    req=getattr(reqs[-1], "token", None),
                ):
                    for req in reqs:
                        req.wait()
                # waits run in submission order, so these are the oldest
                del pending_reads[: len(reqs)]
                adam_step(
                    bufs["master"],
                    grad_full[off : off + n],
                    bufs["exp_avg"],
                    bufs["exp_avg_sq"],
                    step=ref.step,
                    lr=lr,
                    beta1=self.beta1,
                    beta2=self.beta2,
                    eps=self.eps,
                    weight_decay=self.weight_decay,
                )
                for kind in self.STATE_KINDS:
                    wreq = store.write_range(
                        shadow_key(getattr(ref, kind)), off, bufs[kind]
                    )
                    txn.stage_write(
                        wreq, owner=f"p{param.unique_id}.r{rank}.chunk{i}"
                    )
                updated_fp16[off : off + n] = bufs["master"].astype(
                    updated_fp16.dtype
                )
                self.offload.counters.nvme_read_bytes += sum(
                    b.nbytes for b in bufs.values()
                )
                self.offload.counters.nvme_write_bytes += sum(
                    b.nbytes for b in bufs.values()
                )
                if nxt is not None:
                    cur = nxt
        except (OSError, MemoryError):
            # read-ahead requests still in flight write only into their own
            # staging buffers, but they must land before those buffers are
            # released to the step rollback; the step is already dead, so
            # secondary failures are counted, not raised
            for req in pending_reads:
                try:
                    req.wait()
                except (OSError, MemoryError):
                    get_registry().counter("faults.aborted_reads").inc()
            raise
        self._stage_param_writeback(param, rank, updated_fp16.astype(np.float32), txn)
