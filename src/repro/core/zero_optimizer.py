"""Partitioned mixed-precision Adam: the ZeRO optimizer step.

Each data-parallel rank updates only the optimizer state for the shards it
owns (Sec. 2): rank ``r`` holds fp32 master/momentum/variance for slice
``r`` of every parameter, consumes the gradient shard the coordinator
reduce-scattered to it, and writes the updated fp16 shard back through the
partitioner.

State placement follows ``OffloadConfig.optimizer_device``:

* GPU / CPU — states live in the offload engine's in-memory tiers;
* NVMe — states live in the tensor store and the update *streams*: chunks of
  (master, momentum, variance, gradient) are read, updated and written back
  with double-buffered read-ahead, bounding staging memory at two chunks —
  the Sec. 5.2.2 pattern ("bring the data from NVMe to CPU memory ... in
  chunks that can fit in the CPU memory ... one chunk at a time", with
  "NVMe to CPU reads [overlapping] CPU to NVMe writes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.comm.group import ProcessGroup
from repro.core.config import OffloadDevice, ZeroConfig, ZeroStage
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.nn.parameter import Parameter
from repro.obs.perfscope import stall_span
from repro.optim.adam import adam_step
from repro.tensor.flat import pad_to_multiple


@dataclass
class _ShardRef:
    """Keys of one (param, rank) optimizer-state shard."""

    master: str
    exp_avg: str
    exp_avg_sq: str
    grad: str
    step: int = 0


class ZeroPartitionedAdam:
    """Adam over partitioned (and possibly offloaded) optimizer state."""

    STATE_KINDS = ("master", "exp_avg", "exp_avg_sq")

    def __init__(
        self,
        params: Sequence[Parameter],
        config: ZeroConfig,
        *,
        partitioner: ParameterPartitioner,
        offload: InfinityOffloadEngine,
        comm: ProcessGroup,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: Optional[float] = None,
    ) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")
        self.config = config
        self.partitioner = partitioner
        self.offload = offload
        self.comm = comm
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._refs: dict[tuple[int, int], _ShardRef] = {}
        self._initialized = False

    # --- layout helpers -----------------------------------------------------------
    @property
    def world(self) -> int:
        return self.config.world_size

    def _shard_numel(self, param: Parameter) -> int:
        return pad_to_multiple(max(param.full_numel, 1), self.world) // self.world

    def _param_shard_fp32(self, param: Parameter, rank: int) -> np.ndarray:
        """Current fp16 shard of the parameter, upcast to fp32.

        Branches on whether the parameter is actually partitioned rather
        than on the stage, so persistent (replicated) parameters under
        stage 3 take the slicing path.
        """
        if param.zero_meta is not None:
            shard = self.partitioner.get_shard(param, rank)
        else:
            flat = param.data.reshape(-1)
            sn = self._shard_numel(param)
            shard = np.zeros(sn, dtype=flat.dtype)
            lo = rank * sn
            hi = min(lo + sn, flat.size)
            if hi > lo:
                shard[: hi - lo] = flat[lo:hi]
        return shard.astype(np.float32)

    def _grad_shard_fp32(self, param: Parameter, rank: int) -> np.ndarray:
        """The gradient shard rank ``r`` owns, as fp32."""
        if self.config.stage >= ZeroStage.GRADIENTS:
            g = self.offload.fetch(f"p{param.unique_id}.r{rank}.grad16", rank=rank)
        else:
            if param.grad is None:
                raise RuntimeError(
                    f"parameter {param.name or param.unique_id} has no gradient"
                )
            flat = param.grad.reshape(-1)
            sn = self._shard_numel(param)
            g = np.zeros(sn, dtype=flat.dtype)
            lo = rank * sn
            hi = min(lo + sn, flat.size)
            if hi > lo:
                g[: hi - lo] = flat[lo:hi]
        return g.astype(np.float32)

    def _writeback_param_shard(
        self, param: Parameter, rank: int, master: np.ndarray
    ) -> None:
        """Cast the updated master shard to fp16 and install it."""
        fp16 = master.astype(param.zero_meta.np_dtype if param.zero_meta else param.data.dtype)
        if param.zero_meta is not None:
            self.partitioner.update_shard(param, rank, fp16)
        else:
            flat = param.data.reshape(-1)
            sn = self._shard_numel(param)
            lo = rank * sn
            hi = min(lo + sn, flat.size)
            if hi > lo:
                flat[lo:hi] = fp16[: hi - lo]
            # In a real cluster the updated shards are allgathered back into
            # the replicated parameter; account for that traffic.
            if rank == self.world - 1:
                self.comm.stats.record("allgather", param.nbytes)

    # --- state lifecycle ------------------------------------------------------------
    def initialize_states(self) -> None:
        """Create fp32 master/momentum/variance shards from current params."""
        device = self.config.offload.optimizer_device
        for param in self.params:
            for rank in range(self.world):
                ref = _ShardRef(
                    master=f"p{param.unique_id}.r{rank}.master",
                    exp_avg=f"p{param.unique_id}.r{rank}.exp_avg",
                    exp_avg_sq=f"p{param.unique_id}.r{rank}.exp_avg_sq",
                    grad=f"p{param.unique_id}.r{rank}.grad16",
                )
                master = self._param_shard_fp32(param, rank)
                zeros = np.zeros_like(master)
                self.offload.stash(ref.master, master, device, rank=rank)
                self.offload.stash(ref.exp_avg, zeros, device, rank=rank)
                self.offload.stash(ref.exp_avg_sq, zeros, device, rank=rank)
                self._refs[(param.unique_id, rank)] = ref
        self._initialized = True

    @property
    def state_bytes(self) -> int:
        """Total fp32 optimizer-state bytes across all ranks (3 buffers)."""
        return sum(
            3 * 4 * self._shard_numel(p) * self.world for p in self.params
        )

    # --- overflow check (dynamic loss scaling) ----------------------------------
    def grads_overflowed(self) -> bool:
        for param in self.params:
            for rank in range(self.world):
                g = self._grad_shard_fp32(param, rank)
                if not np.all(np.isfinite(g)):
                    return True
        return False

    def global_grad_norm(self, *, grad_scale: float = 1.0) -> float:
        """L2 norm over every gradient shard (== the full-gradient norm).

        Shards are disjoint and exhaustive (padding contributes zeros), so
        summing per-shard squared norms reproduces the unpartitioned norm —
        in a real deployment this is one scalar allreduce.
        """
        total = 0.0
        for param in self.params:
            for rank in range(self.world):
                g = self._grad_shard_fp32(param, rank)
                total += float(np.square(g).sum())
        return float(np.sqrt(total)) / grad_scale

    # --- the step -----------------------------------------------------------------
    def step(self, *, grad_scale: float = 1.0) -> None:
        """One partitioned Adam step over every (param, rank) shard.

        When ``grad_clip`` is set, gradients are rescaled so the *global*
        norm does not exceed it; the clip coefficient folds into
        ``grad_scale`` since both are uniform multipliers.
        """
        if not self._initialized:
            self.initialize_states()
        if self.grad_clip is not None:
            norm = self.global_grad_norm(grad_scale=grad_scale)
            if norm > self.grad_clip:
                grad_scale = grad_scale * norm / self.grad_clip
        device = self.config.offload.optimizer_device
        chunk = self.config.offload.optimizer_chunk_numel
        for param in self.params:
            for rank in range(self.world):
                ref = self._refs[(param.unique_id, rank)]
                ref.step += 1
                if (
                    device is OffloadDevice.NVME
                    and self._shard_numel(param) > chunk
                ):
                    self._chunked_nvme_step(param, rank, ref, grad_scale)
                else:
                    self._resident_step(param, rank, ref, grad_scale)

    def _resident_step(
        self, param: Parameter, rank: int, ref: _ShardRef, grad_scale: float
    ) -> None:
        device = self.config.offload.optimizer_device
        master = self.offload.fetch(ref.master, rank=rank)
        exp_avg = self.offload.fetch(ref.exp_avg, rank=rank)
        exp_avg_sq = self.offload.fetch(ref.exp_avg_sq, rank=rank)
        grad = self._grad_shard_fp32(param, rank)
        if grad_scale != 1.0:
            grad /= grad_scale
        adam_step(
            master,
            grad,
            exp_avg,
            exp_avg_sq,
            step=ref.step,
            lr=self.lr,
            beta1=self.beta1,
            beta2=self.beta2,
            eps=self.eps,
            weight_decay=self.weight_decay,
        )
        self.offload.stash(ref.master, master, device, rank=rank)
        self.offload.stash(ref.exp_avg, exp_avg, device, rank=rank)
        self.offload.stash(ref.exp_avg_sq, exp_avg_sq, device, rank=rank)
        self._writeback_param_shard(param, rank, master)

    def _chunked_nvme_step(
        self, param: Parameter, rank: int, ref: _ShardRef, grad_scale: float
    ) -> None:
        """Stream the shard through bounded buffers with read-ahead.

        Reads of chunk ``i+1`` are issued before the update of chunk ``i``
        runs, so NVMe reads overlap CPU compute; state write-backs of chunk
        ``i`` overlap the read/compute of chunk ``i+1``.
        """
        store = self.offload.store
        assert store is not None
        sn = self._shard_numel(param)
        chunk = self.config.offload.optimizer_chunk_numel
        spans = [(o, min(chunk, sn - o)) for o in range(0, sn, chunk)]
        grad_full = self._grad_shard_fp32(param, rank)
        if grad_scale != 1.0:
            grad_full /= grad_scale
        updated_fp16 = np.empty(sn, dtype=param.zero_meta.np_dtype if param.zero_meta else np.float16)

        def start_reads(off: int, n: int):
            bufs = {}
            reqs = []
            for kind in self.STATE_KINDS:
                key = getattr(ref, kind)
                out, req = store.read_range(key, off, n)
                bufs[kind] = out
                reqs.append(req)
            return bufs, reqs

        pending_writes: list = []
        cur = start_reads(*spans[0])
        for i, (off, n) in enumerate(spans):
            nxt = start_reads(*spans[i + 1]) if i + 1 < len(spans) else None
            bufs, reqs = cur
            # the update cannot start until this chunk's state reads land;
            # with read-ahead working this wait is ~0, so its duration IS
            # the unhidden optimizer I/O tail for the chunk
            with stall_span(
                "optimizer_io_tail",
                owner=f"p{param.unique_id}.r{rank}.chunk{i}",
                kind="read",
                req=getattr(reqs[-1], "token", None),
            ):
                for req in reqs:
                    req.wait()
            adam_step(
                bufs["master"],
                grad_full[off : off + n],
                bufs["exp_avg"],
                bufs["exp_avg_sq"],
                step=ref.step,
                lr=self.lr,
                beta1=self.beta1,
                beta2=self.beta2,
                eps=self.eps,
                weight_decay=self.weight_decay,
            )
            for kind in self.STATE_KINDS:
                pending_writes.append(
                    store.write_range(getattr(ref, kind), off, bufs[kind])
                )
            updated_fp16[off : off + n] = bufs["master"].astype(updated_fp16.dtype)
            self.offload.counters.nvme_read_bytes += sum(
                b.nbytes for b in bufs.values()
            )
            self.offload.counters.nvme_write_bytes += sum(
                b.nbytes for b in bufs.values()
            )
            if nxt is not None:
                cur = nxt
        if pending_writes:
            with stall_span(
                "optimizer_io_tail",
                owner=f"p{param.unique_id}.r{rank}",
                kind="write_tail",
                req=getattr(pending_writes[-1], "token", None),
            ):
                for req in pending_writes:
                    req.wait()
        self._writeback_param_shard(param, rank, updated_fp16.astype(np.float32))
