"""Automated data movement via module hooks (Sec. 7.1).

The coordinator "recursively injects hooks into the submodules of a model":

* **forward-pre**: make the submodule's parameters resident (allgather),
  blocking until available — after notifying the prefetcher so lookahead
  fetches for future submodules are already in flight;
* **forward-post**: re-partition (release) the parameters;
* **backward-pre**: gather again for the backward computation;
* **backward-post**: release, and harvest the produced gradients.

Gradient harvesting runs per rank: each simulated rank's backward leaves
full gradients on the module's parameters; the coordinator banks them and,
once every rank has contributed, reduce-scatters across ranks and hands each
rank's shard to the offload engine (ZeRO-2+; ZeRO-0/1 allreduce instead and
keep full gradients).  Parameters shared across modules (external/tied
parameters) accumulate gradients from several submodules, so their harvest
is deferred to the end-of-backward sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.comm.group import ProcessGroup
from repro.core.bucket import GradientBucketStore
from repro.core.config import OffloadDevice, ZeroConfig, ZeroStage
from repro.core.offload import InfinityOffloadEngine
from repro.core.partition import ParameterPartitioner
from repro.core.prefetch import DynamicPrefetcher
from repro.faults.runtime import get_faults
from repro.nn.module import Module
from repro.nn.parameter import Parameter, PartitionState
from repro.obs.memscope import get_memscope
from repro.obs.metrics import get_registry
from repro.obs.perfscope import stall_span
from repro.obs.tracer import get_tracer, trace_span
from repro.tensor.flat import pad_to_multiple


def grad_shard_key(param: Parameter, rank: int) -> str:
    """Offload key of the reduced fp16 gradient shard rank ``r`` owns.

    The coordinator writes these (reduce-scatter output) and the optimizer
    consumes them; both sides share this helper so the contract lives in
    one place.
    """
    return f"p{param.unique_id}.r{rank}.grad16"


@dataclass
class CoordinatorStats:
    gathers: int = 0
    releases: int = 0
    grad_reductions: int = 0


class ParameterCoordinator:
    """Installs and services the four hook points on every leaf module."""

    def __init__(
        self,
        model: Module,
        config: ZeroConfig,
        *,
        partitioner: ParameterPartitioner,
        offload: InfinityOffloadEngine,
        comm: ProcessGroup,
        prefetcher: Optional[DynamicPrefetcher] = None,
    ) -> None:
        self.model = model
        self.config = config
        self.partitioner = partitioner
        self.offload = offload
        self.comm = comm
        self.prefetcher = prefetcher
        self.stats = CoordinatorStats()
        from repro.core.external import ExternalParameterRegistry

        self.external_registry = ExternalParameterRegistry()
        self.current_rank = 0
        self._removers: list[Callable[[], None]] = []
        # extra unwind work owned by other layers (e.g. the engine's
        # activation-checkpoint discard) runs as part of abort_step so a
        # single routing point covers every exception path
        self._abort_callbacks: list[Callable[[], None]] = []
        # param id -> list of per-rank full gradients awaiting reduction
        self._pending_grads: dict[int, list[Optional[np.ndarray]]] = {}
        self._params_by_id: dict[int, Parameter] = {}
        self._shared_param_ids: set[int] = set()
        self._grad_handles: list = []  # in-flight async grad offload writes
        # gradient accumulation (Sec. 8 workloads use multi-microbatch
        # steps): when accumulating, reduced gradients add onto the previous
        # rounds' instead of replacing them
        self.accumulating = False
        self._full_grad_accum: dict[int, np.ndarray] = {}
        # grad-shard keys written during the current accumulation window;
        # guards against merging with stale shards from a previous step
        self._accum_seen: set[str] = set()
        # bucketed reduce path (ZeRO-2+): harvested gradients coalesce into
        # fixed-capacity buckets, one reduce-scatter per flush instead of
        # one per parameter; 0 keeps the per-parameter collectives
        self.bucket_store: Optional[GradientBucketStore] = None
        if (
            config.reduce_bucket_numel > 0
            and config.stage >= ZeroStage.GRADIENTS
        ):
            self.bucket_store = GradientBucketStore(
                config.world_size,
                config.reduce_bucket_numel,
                comm,
                on_shard=self._stash_reduced_shard,
                reduce_op=config.reduce_op,
            )
        self._install()

    # --- installation ----------------------------------------------------------
    def _install(self) -> None:
        owners: dict[int, int] = {}
        for module in self.model.modules():
            direct = module.direct_parameters()
            if not direct:
                continue
            for p in direct:
                owners[p.unique_id] = owners.get(p.unique_id, 0) + 1
                self._params_by_id[p.unique_id] = p
            self._removers.append(
                module.register_forward_pre_hook(self._pre_forward)
            )
            self._removers.append(module.register_forward_hook(self._post_forward))
            self._removers.append(
                module.register_backward_pre_hook(self._pre_backward)
            )
            self._removers.append(module.register_backward_hook(self._post_backward))
        self._shared_param_ids = {pid for pid, n in owners.items() if n > 1}

    def remove_hooks(self) -> None:
        for remove in self._removers:
            remove()
        self._removers.clear()

    # --- gather/release helpers ------------------------------------------------
    def _module_gather_params(self, module: Module) -> list[Parameter]:
        """The module's direct parameters plus its registered externals."""
        params = list(module.direct_parameters())
        seen = {id(p) for p in params}
        for p in self.external_registry.params_for(module):
            if id(p) not in seen:
                params.append(p)
                seen.add(id(p))
        return params

    def _gather_module(self, module: Module) -> None:
        if self.config.coalesce_allgather:
            params = [
                p
                for p in self._module_gather_params(module)
                if p.state is PartitionState.PARTITIONED
            ]
            if not params:
                return
            with trace_span(
                "engine:allgather_coalesced", cat="engine",
                params=len(params),
                numel=sum(p.full_numel for p in params),
            ):
                self.stats.gathers += self.partitioner.gather_coalesced(params)
            return
        for p in module.direct_parameters():
            if p.state is PartitionState.PARTITIONED:
                with trace_span(
                    "engine:allgather", cat="engine",
                    param=p.name or p.unique_id, numel=p.full_numel,
                ):
                    self.partitioner.gather(p)
                self.stats.gathers += 1

    def _release_module(self, module: Module) -> None:
        for p in module.direct_parameters():
            if p.zero_meta is not None and p.state is PartitionState.AVAILABLE:
                with trace_span(
                    "engine:release", cat="engine",
                    param=p.name or p.unique_id, numel=p.full_numel,
                ):
                    self.partitioner.release(p)
                self.stats.releases += 1

    # --- hooks ----------------------------------------------------------------
    def _pre_forward(self, module: Module, args) -> None:
        if self.prefetcher is not None:
            self.prefetcher.on_execute(module, "fwd")
        self._gather_module(module)
        scope = get_memscope()  # watermark right after the gather: the
        if scope.enabled:  # per-module residency high point (Eq. 4 MSWM)
            scope.sample(f"fwd:{type(module).__name__}")

    def _post_forward(self, module: Module, args, output):
        self._release_module(module)
        return None

    def _pre_backward(self, module: Module, grad_output) -> None:
        if self.prefetcher is not None:
            self.prefetcher.on_execute(module, "bwd")
        self._gather_module(module)
        scope = get_memscope()
        if scope.enabled:
            scope.sample(f"bwd:{type(module).__name__}")

    def _post_backward(self, module: Module, grad_input) -> None:
        self._release_module(module)
        for p in module.direct_parameters():
            if p.unique_id in self._shared_param_ids:
                continue  # grads still accumulating from other owners
            self._harvest(p)

    # --- gradient harvesting ------------------------------------------------------
    def _harvest(self, param: Parameter) -> None:
        """Bank this rank's gradient; reduce when every rank contributed."""
        if param.grad is None:
            return
        if not self.comm.all_local:
            # Process-parallel mode: peers computed their ranks' gradients
            # in their own processes.  All-gather the full per-rank
            # gradients across processes, then run the reduction replicated
            # — every process executes the identical reduce over identical
            # inputs, so the result (and its CommStats) is bit-identical
            # to the loop oracle's in-process banking.
            grad = param.grad
            param.grad = None
            grads = [
                g.reshape(grad.shape) for g in self.comm.exchange(grad)
            ]
            self._reduce_and_stash(param, grads)
            return
        pending = self._pending_grads.setdefault(
            param.unique_id, [None] * self.config.world_size
        )
        pending[self.current_rank] = param.grad
        param.grad = None
        if all(g is not None for g in pending):
            self._reduce_and_stash(param, pending)  # type: ignore[arg-type]
            del self._pending_grads[param.unique_id]

    def end_rank_backward(self) -> None:
        """Sweep shared (external/tied) parameters after a rank's backward."""
        for pid in self._shared_param_ids:
            self._harvest(self._params_by_id[pid])

    def _reduce_and_stash(self, param: Parameter, grads: list[np.ndarray]) -> None:
        """Reduce per-rank gradients and place the result per config."""
        with trace_span(
            "engine:grad_reduce", cat="engine",
            param=param.name or param.unique_id, numel=param.full_numel,
        ):
            self._reduce_and_stash_inner(param, grads)

    def _reduce_and_stash_inner(
        self, param: Parameter, grads: list[np.ndarray]
    ) -> None:
        self.stats.grad_reductions += 1
        world = self.config.world_size
        if self.config.stage >= ZeroStage.GRADIENTS:
            if self.bucket_store is not None:
                # bank into the flat bucket; the reduce-scatter happens once
                # per bucket flush (capacity or step boundary), which calls
                # back into _stash_reduced_shard per (param, rank)
                self.bucket_store.add(param, grads)
                return
            padded = pad_to_multiple(max(param.full_numel, 1), world)
            flats = []
            for g in grads:
                f = np.zeros(padded, dtype=g.dtype)  # lint: allow-rawalloc
                f[: param.full_numel] = g.reshape(-1)
                flats.append(f)
            shards = self.comm.reduce_scatter(flats, op=self.config.reduce_op)
            for rank, shard in enumerate(shards):
                self._stash_reduced_shard(param, rank, shard)
        else:
            reduced = self.comm.allreduce(grads, op=self.config.reduce_op)
            # Full gradient kept per rank (classic DP / ZeRO-1); all ranks
            # hold identical copies so one buffer suffices in simulation.
            if self.accumulating:
                # park the running sum OUTSIDE param.grad so the next
                # round's backward starts from zero (accumulate_grad adds)
                prev = self._full_grad_accum.get(param.unique_id)
                total = reduced[0] + prev if prev is not None else reduced[0]
                self._full_grad_accum[param.unique_id] = total
                param.grad = None
            else:
                param.grad = reduced[0]

    def _stash_reduced_shard(
        self, param: Parameter, rank: int, shard: np.ndarray
    ) -> None:
        """Place one reduced gradient shard (accumulating across rounds)."""
        key = grad_shard_key(param, rank)
        if self.accumulating:
            if key in self._accum_seen:
                # the prior round's async write must land first
                self.flush_grad_offload()
                shard = shard + self.offload.fetch(key, rank=rank)
            self._accum_seen.add(key)
        sync = not self.config.overlap_comm
        if (
            self.config.offload.grad_device is OffloadDevice.NVME
            and not sync
            and not shard.flags.owndata
        ):
            # async NVMe writes read from the caller's memory after return;
            # a view of the reusable bucket buffer must be copied out first
            shard = shard.copy()
        handle = self.offload.stash(
            key,
            shard,
            self.config.offload.grad_device,
            rank=rank,
            sync=sync,
        )
        if handle is not None:
            self._grad_handles.append(handle)

    def flush_reduce_buckets(self) -> None:
        """Reduce-scatter any partially filled gradient buckets."""
        if self.bucket_store is not None:
            self.bucket_store.flush()

    def flush_grad_offload(self) -> None:
        """Wait for in-flight asynchronous gradient writes (step boundary)."""
        if not self._grad_handles:
            return
        with trace_span(
            "engine:grad_flush", cat="engine", handles=len(self._grad_handles)
        ):
            # grad shards are optimizer inputs: unhidden write latency here
            # delays the optimizer step, so the wait is an I/O-tail stall
            with stall_span(
                "optimizer_io_tail",
                owner="grad_flush",
                kind="grad_write",
                handles=len(self._grad_handles),
                req=getattr(self._grad_handles[-1], "token", None),
            ):
                for handle in self._grad_handles:
                    handle.wait()
            self._grad_handles.clear()

    def sequence_delayed_update(
        self, optimizer, *, grad_scale: float, defer_current: bool = True
    ) -> None:
        """Sequence one delayed-update (DPU) optimizer turn.

        The in-flight gradient writes must land before the optimizer
        harvests this step's shards; the harvested set then becomes the
        update applied at the *next* step boundary, which is what lets the
        deferred apply overlap the following forward/backward.
        """
        self.flush_grad_offload()
        optimizer.delayed_step(grad_scale=grad_scale, defer_current=defer_current)

    # --- accumulation lifecycle --------------------------------------------------
    def begin_accumulation(self) -> None:
        """Start a multi-microbatch step: reduced grads add across rounds."""
        self.accumulating = True
        self._full_grad_accum.clear()
        self._accum_seen.clear()

    def end_accumulation(self) -> None:
        """Finish the step: install accumulated full gradients (stage < 2)."""
        # drain buckets while still accumulating so flushed shards merge
        # with prior rounds' stashes
        self.flush_reduce_buckets()
        self.accumulating = False
        for pid, grad in self._full_grad_accum.items():
            self._params_by_id[pid].grad = grad
        self._full_grad_accum.clear()

    # --- rank/iteration lifecycle ------------------------------------------------
    def begin_rank(self, rank: int) -> None:
        if not 0 <= rank < self.config.world_size:
            raise ValueError(f"rank {rank} out of range")
        fp = get_faults()
        if fp is not None:
            # straggler injection point: a ``straggler`` rule with rank=N
            # stalls that simulated rank's turn on the virtual clock
            fp.on_event("rank.begin", rank=rank)
        self.current_rank = rank

    def assert_no_pending(self) -> None:
        """Invariant check: no half-reduced gradients across step boundaries."""
        stuck = [
            self._params_by_id[pid].name or pid
            for pid, grads in self._pending_grads.items()
            if any(g is not None for g in grads)
        ]
        if stuck:
            raise RuntimeError(
                f"gradients pending for {stuck}: some rank never ran backward"
            )

    def abort_step(self) -> None:
        """Unwind mid-step state after an exception interrupted fwd/bwd.

        An exception raised inside a module leaves parameters gathered
        (their post-hooks never ran), gradients half-banked, and async
        offload writes in flight.  This restores every invariant
        :meth:`assert_no_pending` and the step boundary rely on, so the
        next ``train_step`` starts clean instead of leaking gather buffers
        or merging stale gradients:

        * every gathered (AVAILABLE) partitioned parameter is released;
        * banked per-rank gradients and accumulation carry-overs are
          dropped (the step produced no update, so they are garbage);
        * partially filled reduce buckets are reset without reducing;
        * in-flight gradient offload writes are drained (their target
          buffers must not be reused while I/O is pending);
        * registered abort callbacks run (activation-checkpoint discard,
          so saved-but-never-restored checkpoints cannot inflate the
          ledger watermark across aborted steps).
        """
        for p in self._params_by_id.values():
            if p.zero_meta is not None and p.state is PartitionState.AVAILABLE:
                self.partitioner.release(p)
            p.grad = None
        self._pending_grads.clear()
        if self.bucket_store is not None:
            self.bucket_store.reset()
        # Tolerant drain: the handles must complete (their target buffers
        # are about to be reused) but a failed write is moot mid-abort —
        # the step is being thrown away, so count it and keep unwinding
        # instead of masking the root cause with a secondary raise.
        for handle in self._grad_handles:
            try:
                handle.wait()
            except OSError:
                get_registry().counter("faults.aborted_writes").inc()
        self._grad_handles.clear()
        self.accumulating = False
        self._full_grad_accum.clear()
        self._accum_seen.clear()
        for cb in self._abort_callbacks:
            cb()
        # spans opened on worker threads (aio submit/pwrite) may still be
        # live when the step unwinds; commit them as aborted so the trace
        # stays well-formed and the leak is visible instead of silent
        get_tracer().force_close_open(reason="abort_step")
        scope = get_memscope()
        if scope.enabled:
            scope.sample("abort_step")
        # flush live-telemetry sinks on every abort path (idempotent): a
        # rank killed right after the unwind must not leave torn shards
        from repro.obs.live import get_live

        live = get_live()
        if live is not None:
            live.flush()

    def on_abort(self, callback: Callable[[], None]) -> None:
        """Register extra cleanup to run at the end of :meth:`abort_step`."""
        self._abort_callbacks.append(callback)
