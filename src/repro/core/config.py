"""Configuration for ZeRO stages, offload placement, and strategies.

:class:`Strategy` enumerates the rows of the paper's Table 2 — the device
placement and partitioning options compared in Fig. 6a — and
``STRATEGY_PRESETS`` maps each to a concrete :class:`ZeroConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, IntEnum
from typing import Optional

from repro.check.config import CheckConfig
from repro.utils.units import GB


class ZeroStage(IntEnum):
    """Which model states are partitioned (Sec. 2, 'ZeRO' background)."""

    NONE = 0  # classic data parallelism: everything replicated
    OPTIMIZER = 1  # ZeRO-1: optimizer states partitioned
    GRADIENTS = 2  # ZeRO-2: + gradients partitioned
    PARAMETERS = 3  # ZeRO-3: + parameters partitioned


class OffloadDevice(str, Enum):
    """Where a partitioned model state lives between uses."""

    NONE = "gpu"  # stays in GPU memory
    CPU = "cpu"
    NVME = "nvme"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True)
class OffloadConfig:
    """Placement of the three model states plus staging-buffer budgets."""

    param_device: OffloadDevice = OffloadDevice.NONE
    grad_device: OffloadDevice = OffloadDevice.NONE
    optimizer_device: OffloadDevice = OffloadDevice.NONE
    activation_device: OffloadDevice = OffloadDevice.NONE  # checkpoint offload
    pinned_budget_bytes: int = 2 * GB  # pinned staging pool (Sec. 6.3)
    nvme_dir: Optional[str] = None  # spool directory; temp dir when None
    optimizer_chunk_numel: int = 1 << 20  # NVMe optimizer streaming chunk
    # Double-buffered optimizer streaming: while chunk k updates, chunk
    # k+1's state is in flight from NVMe and finished chunks' write-backs
    # drain in the background.  False selects the fully serial reference
    # schedule (read, wait, update, write, wait — one chunk at a time),
    # which is the bit-exactness oracle for the pipelined path and the
    # contrast workload behind ``BENCH_optpipe.json``.
    optimizer_pipeline: bool = True
    # Resilience (repro.faults, docs/resilience.md): bounded per-block retry
    # of failed preads/pwrites, CRC verification of every spool fetch, and
    # write-temp-then-rename spool commits.  Retry backoff advances the
    # deterministic virtual clock, never the wall clock.
    io_retries: int = 2
    io_backoff_us: int = 200
    verify_checksums: bool = True
    atomic_spool_commits: bool = True

    @property
    def any_nvme(self) -> bool:
        return OffloadDevice.NVME in (
            self.param_device,
            self.grad_device,
            self.optimizer_device,
            self.activation_device,
        )


@dataclass(frozen=True)
class ZeroConfig:
    """Full engine configuration."""

    world_size: int = 1
    stage: ZeroStage = ZeroStage.PARAMETERS
    offload: OffloadConfig = field(default_factory=OffloadConfig)
    # Bandwidth-centric partitioning (Sec. 6.1): True = every parameter is
    # sharded over all ranks and retrieved by allgather; False = each
    # parameter has a single owner rank that broadcasts it (ZeRO/
    # ZeRO-Offload style), which serialises slow-memory reads on one link.
    bandwidth_centric: bool = True
    # Overlap-centric design (Sec. 6.2).
    prefetch_depth: int = 2  # 0 disables prefetching
    overlap_comm: bool = True
    # Gradient reduction: "mean" matches DDP gradient averaging.
    reduce_op: str = "mean"
    # Gradient bucketing (ZeRO's reduce_bucket_size): harvested gradients
    # accumulate into fixed-capacity flat buckets that reduce-scatter as one
    # collective when full (and at step boundaries), so the collective count
    # is O(numel / bucket) instead of O(#params).  0 falls back to one
    # padded reduce-scatter per parameter.
    reduce_bucket_numel: int = 500_000
    # Module-granularity coalesced allgather (Sec. 5.1: fetch "a layer's
    # worth" of shards in one collective): gather every parameter of a
    # module from a single allgather of the per-rank shard concatenations.
    # False issues one allgather per parameter.
    coalesce_allgather: bool = True
    grad_accum_dtype: str = "fp32"
    # Mixed precision.
    master_dtype: str = "fp32"
    loss_scale: Optional[float] = None  # None => dynamic scaling
    # Memory-centric tiling default applied by the engine to oversized linears.
    tile_linear_threshold_numel: Optional[int] = None
    tile_factor: int = 1
    # Parameter persistence: tensors at or below this element count stay
    # replicated instead of partitioned (DeepSpeed's
    # stage3_param_persistence_threshold) — small biases and norms are not
    # worth an allgather each use.  0 partitions everything.
    param_persistence_threshold_numel: int = 0
    # Delayed parameter update (ZeRO-Offload's DPU): apply the optimizer
    # update for step t's gradients one step late, so the deferred update
    # overlaps step t+1's forward/backward instead of serialising behind
    # its own step.  Training sees each parameter update with one step of
    # staleness; ``scale_delayed_lr`` multiplies the learning rate of
    # delayed updates as the staleness correction.
    delayed_update: bool = False
    scale_delayed_lr: float = 1.0
    # Step-level recovery (docs/resilience.md): how many times the engine
    # replays a step whose forward/backward died of a recoverable I/O or
    # memory fault before giving up.  0 disables replay.
    step_retries: int = 1
    # Correctness checking (repro.check): which sanitizer passes the engine
    # runs.  All off by default; see docs/checking.md.
    check: CheckConfig = field(default_factory=CheckConfig)

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ValueError("world_size must be positive")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative")
        if self.reduce_op not in ("mean", "sum"):
            raise ValueError("reduce_op must be 'mean' or 'sum'")
        if self.reduce_bucket_numel < 0:
            raise ValueError("reduce_bucket_numel must be >= 0 (0 disables)")
        if self.stage < ZeroStage.PARAMETERS:
            if self.offload.param_device is not OffloadDevice.NONE:
                raise ValueError(
                    "parameter offload requires ZeRO stage 3 (parameters"
                    " must be partitioned before they can be offloaded)"
                )
        if self.tile_factor < 1:
            raise ValueError("tile_factor must be >= 1")
        if self.param_persistence_threshold_numel < 0:
            raise ValueError("param_persistence_threshold_numel must be >= 0")
        if self.step_retries < 0:
            raise ValueError("step_retries must be >= 0 (0 disables replay)")

    def validate(self) -> "ZeroConfig":
        """Reject contradictory option combinations with actionable messages.

        ``__post_init__`` checks individual fields; this checks the
        *cross-field* combinations that would otherwise silently disable a
        feature or misbehave at runtime.  The engine calls it once at
        construction; configs built by hand can call it directly.
        """
        if self.loss_scale is not None and self.loss_scale <= 0:
            raise ValueError(
                f"loss_scale={self.loss_scale} disables every gradient:"
                " use a positive static scale, or None for dynamic scaling"
            )
        if self.tile_factor > 1 and self.tile_linear_threshold_numel is None:
            raise ValueError(
                f"tile_factor={self.tile_factor} does nothing without"
                " tile_linear_threshold_numel: set the threshold that"
                " selects which linears to tile, or leave tile_factor=1"
            )
        if self.prefetch_depth > 0 and not self.overlap_comm:
            raise ValueError(
                f"prefetch_depth={self.prefetch_depth} with"
                " overlap_comm=False is contradictory — prefetching exists"
                " to overlap communication; set prefetch_depth=0 or"
                " re-enable overlap_comm"
            )
        for name in ("grad_accum_dtype", "master_dtype"):
            value = getattr(self, name)
            if value not in ("fp16", "fp32"):
                raise ValueError(
                    f"{name}={value!r} is not a supported precision;"
                    " use 'fp16' or 'fp32'"
                )
        if self.master_dtype == "fp16" and self.loss_scale is None:
            raise ValueError(
                "master_dtype='fp16' with dynamic loss scaling compounds"
                " two precision hazards: keep fp32 master weights, or pin"
                " a static loss_scale"
            )
        off = self.offload
        if off.pinned_budget_bytes <= 0:
            raise ValueError(
                "offload.pinned_budget_bytes must be positive — the pinned"
                " staging pool cannot be empty when any state is offloaded"
            )
        if off.optimizer_chunk_numel <= 0:
            raise ValueError(
                "offload.optimizer_chunk_numel must be positive: it is the"
                " NVMe streaming granularity of the optimizer step"
            )
        if off.io_retries < 0:
            raise ValueError("offload.io_retries must be >= 0 (0 disables)")
        if off.io_backoff_us < 0:
            raise ValueError("offload.io_backoff_us must be >= 0")
        if self.scale_delayed_lr <= 0:
            raise ValueError(
                f"scale_delayed_lr={self.scale_delayed_lr} disables (or"
                " inverts) every delayed update; use a positive multiplier"
            )
        if self.scale_delayed_lr != 1.0 and not self.delayed_update:
            raise ValueError(
                f"scale_delayed_lr={self.scale_delayed_lr} without"
                " delayed_update is contradictory — the correction only"
                " applies to delayed updates; enable delayed_update or"
                " leave the multiplier at 1.0"
            )
        return self


class Strategy(str, Enum):
    """Table 2 rows: named placement + partitioning strategies."""

    DATA_PARALLEL = "data-parallel"
    ZERO_2 = "zero-2"
    ZERO_OFFLOAD = "zero-offload"
    THREED = "3d-parallelism"
    ZERO_3 = "zero-3"
    ZERO_INF_CPU = "zero-inf-cpu"
    ZERO_INF_NVME = "zero-inf-nvme"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


def _preset(stage: ZeroStage, offload: OffloadConfig, **kw) -> ZeroConfig:
    return ZeroConfig(stage=stage, offload=offload, **kw)


#: Concrete engine configs per Table 2 strategy (3D parallelism is a
#: baseline cost model, not an engine config — see repro.baselines.threed).
STRATEGY_PRESETS: dict[Strategy, ZeroConfig] = {
    Strategy.DATA_PARALLEL: _preset(
        ZeroStage.NONE, OffloadConfig(), bandwidth_centric=False
    ),
    Strategy.ZERO_2: _preset(ZeroStage.GRADIENTS, OffloadConfig()),
    Strategy.ZERO_OFFLOAD: _preset(
        ZeroStage.GRADIENTS,
        OffloadConfig(
            grad_device=OffloadDevice.CPU, optimizer_device=OffloadDevice.CPU
        ),
        bandwidth_centric=False,
    ),
    Strategy.ZERO_3: _preset(ZeroStage.PARAMETERS, OffloadConfig()),
    Strategy.ZERO_INF_CPU: _preset(
        ZeroStage.PARAMETERS,
        OffloadConfig(
            param_device=OffloadDevice.CPU,
            grad_device=OffloadDevice.CPU,
            optimizer_device=OffloadDevice.CPU,
        ),
    ),
    Strategy.ZERO_INF_NVME: _preset(
        ZeroStage.PARAMETERS,
        OffloadConfig(
            param_device=OffloadDevice.NVME,
            grad_device=OffloadDevice.NVME,
            optimizer_device=OffloadDevice.NVME,
        ),
    ),
}


def config_for_strategy(
    strategy: Strategy, *, world_size: int, **overrides
) -> ZeroConfig:
    """A :class:`ZeroConfig` for a Table 2 strategy at a given world size."""
    if strategy is Strategy.THREED:
        raise ValueError(
            "3D parallelism is modeled by repro.baselines.threed, not by the"
            " ZeRO engine"
        )
    base = STRATEGY_PRESETS[strategy]
    return replace(base, world_size=world_size, **overrides)
