"""ZeRO-Infinity: the paper's primary contribution.

The engine composes five technologies (Sec. 1 contributions list):

1. **Infinity offload engine** (:mod:`repro.core.offload`) — model states
   partitioned across ranks and placed on GPU, CPU, or NVMe;
2. **Memory-centric tiling** (:mod:`repro.core.tiling`) — large linear
   operators split into sequentially executed tiles so no model parallelism
   is needed to fit them;
3. **Bandwidth-centric partitioning** (:mod:`repro.core.partition`) —
   parameters sharded across *all* ranks and retrieved with allgather so
   every PCIe/NVMe link pulls its 1/dp share in parallel;
4. **Overlap-centric design** (:mod:`repro.core.prefetch`) — a dynamic
   prefetcher over the traced operator sequence that overlaps NVMe→CPU,
   CPU→GPU and GPU-GPU transfer legs with compute;
5. **Ease-inspired implementation** (:mod:`repro.core.coordinator`,
   :mod:`repro.core.external`, plus :mod:`repro.nn.init_context`) — hooks
   injected into the module tree automate all data movement; external
   parameters are auto-registered; models partition at construction.

:class:`~repro.core.engine.ZeroInfinityEngine` is the public facade.
"""

from repro.core.config import (
    OffloadDevice,
    OffloadConfig,
    ZeroConfig,
    ZeroStage,
    Strategy,
    STRATEGY_PRESETS,
)
from repro.core.bucket import BucketStats, GradientBucketStore
from repro.core.partition import ZeroParamMeta, ParameterPartitioner
from repro.core.offload import InfinityOffloadEngine
from repro.core.coordinator import ParameterCoordinator
from repro.core.prefetch import DynamicPrefetcher, OperatorTrace
from repro.core.tiling import TiledLinear
from repro.core.external import (
    InterceptingParameterDict,
    register_external_parameter,
)
from repro.core.engine import ZeroInfinityEngine
from repro.core.scale import max_model_size, MaxScaleResult
from repro.core.autotune import RecommendedPlan, recommend_config
from repro.core.fused import FusedZeroTrainer
from repro.core.checkpoint_io import (
    load_checkpoint,
    save_checkpoint,
    save_consolidated,
)

__all__ = [
    "OffloadDevice",
    "OffloadConfig",
    "ZeroConfig",
    "ZeroStage",
    "Strategy",
    "STRATEGY_PRESETS",
    "ZeroParamMeta",
    "ParameterPartitioner",
    "BucketStats",
    "GradientBucketStore",
    "InfinityOffloadEngine",
    "ParameterCoordinator",
    "DynamicPrefetcher",
    "OperatorTrace",
    "TiledLinear",
    "InterceptingParameterDict",
    "register_external_parameter",
    "ZeroInfinityEngine",
    "max_model_size",
    "MaxScaleResult",
    "RecommendedPlan",
    "recommend_config",
    "FusedZeroTrainer",
    "load_checkpoint",
    "save_checkpoint",
    "save_consolidated",
]
