"""Fixed-capacity gradient buckets for the ZeRO-3 reduce path.

ZeRO (Rajbhandari et al., 2020) and ZeRO-Offload flatten gradients into
fixed-size buckets (``reduce_bucket_size``) so the number of reduce
collectives per step is ``O(total_numel / bucket)`` instead of
``O(#parameters)``.  :class:`GradientBucketStore` brings that design to the
ZeRO-3 hot path: harvested per-rank full gradients are copied into
preallocated per-rank flat buffers as they arrive; when the bucket cannot
take the next gradient (or at a step boundary) the whole bucket is
reduce-scattered as **one** collective and each parameter's per-rank shard
is handed back to the caller.

Layout note: entries are kept in arrival order, each padded to a multiple
of the world size, so parameter ``p``'s rank-``r`` shard is
``reduced[off_p + r*shard_p : off_p + (r+1)*shard_p]``.  A real deployment
lays the bucket out rank-interleaved (every rank's reduce-scatter slice is
exactly its per-parameter shards — DeepSpeed's partitioned bucket layout);
elementwise reduction is layout-invariant, so the functional simulation
keeps arrival order and slices per entry.  Collective count, payload bytes
and reduced values are identical either way — which is what the
bit-equivalence tests pin down against the per-parameter path.

Buffers are reused across flushes (the zero-copy discipline): shard views
handed to ``on_shard`` alias the reusable output buffer and are read-only;
consumers that retain them past the callback must copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.check.static.record import get_static_recorder
from repro.comm import readonly_slice
from repro.comm.group import ProcessGroup
from repro.nn.parameter import Parameter
from repro.obs.memscope import attributed_empty, attributed_zeros, mem_sample
from repro.obs.metrics import get_registry
from repro.obs.perfscope import stall_span
from repro.obs.tracer import trace_counter, trace_span
from repro.tensor.flat import pad_to_multiple

#: occupancy-percent histogram bounds (5% steps)
_OCCUPANCY_BOUNDS = tuple(range(5, 105, 5))


@dataclass
class BucketStats:
    """Observable behaviour of the store (also mirrored into repro.obs)."""

    grads_bucketed: int = 0
    flushes: int = 0
    oversized_flushes: int = 0
    flushed_numel: int = 0

    @property
    def collectives(self) -> int:
        return self.flushes + self.oversized_flushes


@dataclass
class _Entry:
    param: Parameter
    offset: int
    numel: int
    padded: int


class _Bucket:
    """One dtype's preallocated per-rank accumulation buffers."""

    __slots__ = ("dtype", "inputs", "output", "entries", "fill")

    def __init__(self, dtype: np.dtype, world: int, capacity: int) -> None:
        self.dtype = dtype
        owner = f"bucket.{dtype}"
        self.inputs = [
            attributed_zeros(
                capacity, dtype, tier="gpu", category="bucket", owner=owner
            )
            for _ in range(world)
        ]
        self.output = attributed_empty(
            capacity, dtype, tier="gpu", category="bucket", owner=owner
        )
        self.entries: list[_Entry] = []
        self.fill = 0


class GradientBucketStore:
    """Accumulates harvested gradients and reduce-scatters them bucketed.

    Parameters
    ----------
    world_size:
        Data-parallel degree; every :meth:`add` supplies one full gradient
        per rank.
    capacity_numel:
        Bucket capacity in elements (``ZeroConfig.reduce_bucket_numel``),
        rounded up to a multiple of the world size.  Gradients larger than
        the capacity reduce in a dedicated one-off collective.
    comm:
        The :class:`~repro.comm.group.ProcessGroup` to reduce through.
    on_shard:
        ``on_shard(param, rank, shard)`` called for every (parameter, rank)
        pair of a flushed bucket, in arrival order.  ``shard`` is a
        read-only view of the reusable output buffer — copy to retain.
    reduce_op:
        ``"mean"`` or ``"sum"`` (``ZeroConfig.reduce_op``).
    """

    def __init__(
        self,
        world_size: int,
        capacity_numel: int,
        comm: ProcessGroup,
        *,
        on_shard: Callable[[Parameter, int, np.ndarray], None],
        reduce_op: str = "mean",
    ) -> None:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        if capacity_numel <= 0:
            raise ValueError("capacity_numel must be positive")
        self.world = world_size
        self.capacity = pad_to_multiple(max(capacity_numel, world_size), world_size)
        self.comm = comm
        self.on_shard = on_shard
        self.reduce_op = reduce_op
        self.stats = BucketStats()
        self._buckets: dict[np.dtype, _Bucket] = {}

    # --- filling ---------------------------------------------------------------
    def add(self, param: Parameter, grads: Sequence[np.ndarray]) -> None:
        """Bank one parameter's per-rank full gradients into its bucket.

        Flushes the bucket first if the gradient would not fit; oversized
        gradients (padded numel > capacity) reduce immediately in their own
        collective, preserving one-collective-per-flush accounting.
        """
        if len(grads) != self.world:
            raise ValueError(
                f"need {self.world} per-rank gradients, got {len(grads)}"
            )
        numel = int(grads[0].size)
        padded = pad_to_multiple(max(numel, 1), self.world)
        dtype = np.dtype(grads[0].dtype)
        self.stats.grads_bucketed += 1
        get_registry().counter("bucket.grads").inc()
        if padded > self.capacity:
            self._reduce_oversized(param, grads, numel, padded, dtype)
            return
        bucket = self._buckets.get(dtype)
        if bucket is None:
            bucket = self._buckets[dtype] = _Bucket(dtype, self.world, self.capacity)
        if bucket.fill + padded > self.capacity:
            # capacity-forced inline flush: the backward pass waits on the
            # collective right now instead of at the step boundary
            with stall_span(
                "bucket_flush_wait", owner=f"bucket.{dtype}", fill=bucket.fill
            ):
                self._flush_bucket(bucket)
        off = bucket.fill
        for r, g in enumerate(grads):
            buf = bucket.inputs[r]
            buf[off : off + numel] = g.reshape(-1)
            if padded > numel:
                buf[off + numel : off + padded] = 0
        bucket.entries.append(_Entry(param, off, numel, padded))
        bucket.fill += padded
        trace_counter("bucket.fill_numel", cat="comm", fill=bucket.fill)

    # --- flushing --------------------------------------------------------------
    def flush(self) -> None:
        """Reduce every partially filled bucket (step boundary)."""
        for bucket in self._buckets.values():
            self._flush_bucket(bucket)

    def _flush_bucket(self, bucket: _Bucket) -> None:
        if not bucket.entries:
            return
        n = bucket.fill
        rec = get_static_recorder()
        if rec is not None:
            # schedule extraction: the flush body is the bucket critical
            # section; the static verifier proves no rendezvous inside it
            rec.on_lock_acquire("bucket")
        try:
            with trace_span(
                "bucket:flush", cat="comm", numel=n, entries=len(bucket.entries)
            ):
                self.comm.reduce_scatter_into(
                    [buf[:n] for buf in bucket.inputs],
                    bucket.output[:n],
                    op=self.reduce_op,
                )
                self._emit_shards(bucket.output[:n], bucket.entries)
        finally:
            if rec is not None:
                rec.on_lock_release("bucket")
        self.stats.flushes += 1
        self.stats.flushed_numel += n
        registry = get_registry()
        registry.counter("bucket.flushes").inc()
        registry.histogram("bucket.occupancy_pct", _OCCUPANCY_BOUNDS).observe(
            100.0 * n / self.capacity
        )
        bucket.entries.clear()
        bucket.fill = 0
        trace_counter("bucket.fill_numel", cat="comm", fill=0)
        mem_sample("bucket_flush")

    def _reduce_oversized(
        self,
        param: Parameter,
        grads: Sequence[np.ndarray],
        numel: int,
        padded: int,
        dtype: np.dtype,
    ) -> None:
        inputs = []
        for g in grads:
            buf = np.zeros(padded, dtype=dtype)  # lint: allow-rawalloc
            buf[:numel] = g.reshape(-1)
            inputs.append(buf)
        out = np.empty(padded, dtype=dtype)  # lint: allow-rawalloc
        with trace_span("bucket:flush_oversized", cat="comm", numel=padded):
            self.comm.reduce_scatter_into(inputs, out, op=self.reduce_op)
            self._emit_shards(out, [_Entry(param, 0, numel, padded)])
        self.stats.oversized_flushes += 1
        self.stats.flushed_numel += padded
        get_registry().counter("bucket.oversized_flushes").inc()

    def _emit_shards(self, reduced: np.ndarray, entries: list[_Entry]) -> None:
        for e in entries:
            shard = e.padded // self.world
            for r in range(self.world):
                lo = e.offset + r * shard
                self.on_shard(e.param, r, readonly_slice(reduced, lo, shard))

    def reset(self) -> None:
        """Drop banked gradients without reducing them (aborted step)."""
        for bucket in self._buckets.values():
            bucket.entries.clear()
            bucket.fill = 0

    # --- introspection -----------------------------------------------------------
    @property
    def pending_grads(self) -> int:
        """Parameters banked but not yet reduced (should be 0 between steps)."""
        return sum(len(b.entries) for b in self._buckets.values())

    @property
    def buffer_bytes(self) -> int:
        """Total preallocated bucket-buffer footprint."""
        return sum(
            sum(buf.nbytes for buf in b.inputs) + b.output.nbytes
            for b in self._buckets.values()
        )
