"""Tensor substrate: typed, device-tagged numpy arrays and flat buffers.

This package substitutes the parts of ``torch`` that ZeRO-Infinity's data
plane relies on: half/full precision dtypes, device placement tags
(GPU / CPU / NVMe), contiguous flat buffers, and the partitioning arithmetic
that splits a flat buffer evenly across data-parallel ranks.
"""

from repro.tensor.device import Device, DeviceKind, CPU, GPU0, gpu, nvme
from repro.tensor.dtypes import DType, FP16, FP32, FP64, dtype_of
from repro.tensor.tensor import DeviceTensor
from repro.tensor.flat import (
    FlatView,
    flatten_arrays,
    pad_to_multiple,
    partition_bounds,
    partition_padded_size,
    unflatten_array,
)

__all__ = [
    "Device",
    "DeviceKind",
    "CPU",
    "GPU0",
    "gpu",
    "nvme",
    "DType",
    "FP16",
    "FP32",
    "FP64",
    "dtype_of",
    "DeviceTensor",
    "FlatView",
    "flatten_arrays",
    "pad_to_multiple",
    "partition_bounds",
    "partition_padded_size",
    "unflatten_array",
]
