"""Flat-buffer arithmetic used by every ZeRO partitioner.

ZeRO-3 / ZeRO-Infinity flatten each parameter into a 1-D buffer padded to a
multiple of the data-parallel degree, then give rank ``r`` the contiguous
slice ``[r*shard, (r+1)*shard)``.  These helpers implement that arithmetic in
one audited place:

* :func:`partition_bounds` — per-rank slice boundaries (with padding);
* :func:`flatten_arrays` / :func:`unflatten_array` — round-trip a set of
  tensors through one contiguous buffer;
* :class:`FlatView` — named views into a flat buffer, used for fused
  optimizer state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def pad_to_multiple(n: int, multiple: int) -> int:
    """Smallest ``m >= n`` with ``m % multiple == 0``.

    >>> pad_to_multiple(10, 4)
    12
    >>> pad_to_multiple(8, 4)
    8
    """
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return ((n + multiple - 1) // multiple) * multiple


def partition_padded_size(numel: int, world_size: int) -> int:
    """Padded total element count so every rank owns an equal shard."""
    return pad_to_multiple(numel, world_size)


def partition_bounds(numel: int, world_size: int, rank: int) -> tuple[int, int]:
    """Half-open slice ``[lo, hi)`` of the *padded* buffer owned by ``rank``.

    Bounds are clipped to ``numel`` so the caller can slice the unpadded
    buffer directly; trailing ranks may own an empty or short shard.

    >>> partition_bounds(10, 4, 3)
    (9, 10)
    """
    if not 0 <= rank < world_size:
        raise ValueError(f"rank {rank} out of range for world size {world_size}")
    shard = partition_padded_size(numel, world_size) // world_size
    lo = min(rank * shard, numel)
    hi = min(lo + shard, numel)
    return lo, hi


def shard_size(numel: int, world_size: int) -> int:
    """Elements per rank in the padded partitioning."""
    return partition_padded_size(numel, world_size) // world_size


def flatten_arrays(
    arrays: Sequence[np.ndarray], *, pad_multiple: int = 1, dtype=None
) -> np.ndarray:
    """Concatenate arrays into one contiguous 1-D buffer, zero-padded.

    The ordering is the caller's; :func:`unflatten_array` reverses it given
    the original shapes.
    """
    if dtype is None:
        if not arrays:
            raise ValueError("cannot infer dtype from empty array list")
        dtype = arrays[0].dtype
    total = sum(int(a.size) for a in arrays)
    padded = pad_to_multiple(total, pad_multiple) if total else pad_multiple
    flat = np.zeros(padded, dtype=dtype)
    offset = 0
    for a in arrays:
        n = int(a.size)
        flat[offset : offset + n] = a.reshape(-1)
        offset += n
    return flat


def unflatten_array(
    flat: np.ndarray, shapes: Sequence[tuple[int, ...]]
) -> list[np.ndarray]:
    """Views into ``flat`` with the given shapes, in order.

    Returned arrays share memory with ``flat`` — mutating them mutates the
    flat buffer, which is exactly what the fused optimizer relies on.
    """
    out = []
    offset = 0
    for shape in shapes:
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if offset + n > flat.size:
            raise ValueError(
                f"shapes require {offset + n} elements, flat buffer has {flat.size}"
            )
        out.append(flat[offset : offset + n].reshape(shape))
        offset += n
    return out


@dataclass
class FlatView:
    """Named, shaped views over one flat buffer.

    >>> fv = FlatView.build([("w", (2, 3)), ("b", (3,))], dtype=np.float32)
    >>> fv["w"].shape
    (2, 3)
    """

    buffer: np.ndarray
    views: dict[str, np.ndarray]

    @staticmethod
    def build(
        specs: Sequence[tuple[str, tuple[int, ...]]],
        *,
        dtype=np.float32,
        pad_multiple: int = 1,
    ) -> "FlatView":
        total = sum(int(np.prod(s, dtype=np.int64)) if s else 1 for _, s in specs)
        padded = pad_to_multiple(max(total, 1), pad_multiple)
        buffer = np.zeros(padded, dtype=dtype)
        views: dict[str, np.ndarray] = {}
        offset = 0
        for name, shape in specs:
            if name in views:
                raise ValueError(f"duplicate view name {name!r}")
            n = int(np.prod(shape, dtype=np.int64)) if shape else 1
            views[name] = buffer[offset : offset + n].reshape(shape)
            offset += n
        return FlatView(buffer, views)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.views[name]

    def __contains__(self, name: str) -> bool:
        return name in self.views

    @property
    def numel(self) -> int:
        return int(self.buffer.size)
